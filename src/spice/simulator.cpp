#include "spice/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace stsense::spice {

double TransientResult::average_source_power_w(NodeId node,
                                               double duration_s) const {
    if (node.index >= source_energy_j.size()) {
        throw std::invalid_argument("average_source_power_w: bad node");
    }
    if (duration_s <= 0.0) {
        throw std::invalid_argument("average_source_power_w: bad duration");
    }
    return source_energy_j[node.index] / duration_s;
}

const Trace& TransientResult::trace(const std::string& node_name) const {
    for (const auto& t : traces) {
        if (t.name == node_name) return t;
    }
    throw std::invalid_argument("TransientResult: no trace for node '" + node_name + "'");
}

Simulator::Simulator(const Circuit& circuit, SimOptions options)
    : circuit_(circuit), options_(options) {
    if (options_.temp_k <= 0.0) throw std::invalid_argument("Simulator: temp_k must be > 0");
    if (options_.gmin < 0.0) throw std::invalid_argument("Simulator: gmin must be >= 0");

    unknown_index_.assign(circuit_.node_count(), -1);
    for (std::size_t i = 0; i < circuit_.node_count(); ++i) {
        NodeId n{static_cast<std::uint32_t>(i)};
        if (!circuit_.is_driven(n)) {
            unknown_index_[i] = static_cast<int>(n_unknowns_++);
        }
    }
}

void Simulator::set_driven(std::vector<double>& volts, double t) const {
    for (std::size_t i = 0; i < circuit_.node_count(); ++i) {
        NodeId n{static_cast<std::uint32_t>(i)};
        if (circuit_.is_driven(n)) volts[i] = circuit_.source_of(n).value(t);
    }
}

void Simulator::assemble(const std::vector<double>& volts, double h,
                         const std::vector<CapState>* caps, Integrator integ,
                         Matrix& jac, std::vector<double>& residual) const {
    jac.clear();
    std::fill(residual.begin(), residual.end(), 0.0);

    auto idx = [&](NodeId n) { return unknown_index_[n.index]; };

    // current `i` flows a -> b with conductances (di/dva, di/dvb).
    auto stamp_branch = [&](NodeId a, NodeId b, double i, double di_dva,
                            double di_dvb) {
        const int ia = idx(a);
        const int ib = idx(b);
        if (ia >= 0) {
            residual[static_cast<std::size_t>(ia)] += i;
            jac.at(static_cast<std::size_t>(ia), static_cast<std::size_t>(ia)) += di_dva;
            if (ib >= 0) jac.at(static_cast<std::size_t>(ia), static_cast<std::size_t>(ib)) += di_dvb;
        }
        if (ib >= 0) {
            residual[static_cast<std::size_t>(ib)] -= i;
            jac.at(static_cast<std::size_t>(ib), static_cast<std::size_t>(ib)) -= di_dvb;
            if (ia >= 0) jac.at(static_cast<std::size_t>(ib), static_cast<std::size_t>(ia)) -= di_dva;
        }
    };

    for (const auto& r : circuit_.resistors()) {
        const double g = 1.0 / r.ohms;
        const double i = g * (volts[r.a.index] - volts[r.b.index]);
        stamp_branch(r.a, r.b, i, g, -g);
    }

    if (caps != nullptr) {
        const bool trap = integ == Integrator::Trapezoidal;
        const auto& cs = *caps;
        for (std::size_t k = 0; k < circuit_.capacitors().size(); ++k) {
            const auto& c = circuit_.capacitors()[k];
            const double geq = (trap ? 2.0 : 1.0) * c.farads / h;
            const double vab = volts[c.a.index] - volts[c.b.index];
            const double hist = geq * cs[k].v_old + (trap ? cs[k].i_old : 0.0);
            const double i = geq * vab - hist;
            stamp_branch(c.a, c.b, i, geq, -geq);
        }
    }

    for (const auto& m : circuit_.mosfets()) {
        const double vd = volts[m.drain.index];
        const double vg = volts[m.gate.index];
        const double vs = volts[m.source.index];
        if (m.params.type == phys::MosType::Nmos) {
            const phys::MosEval e =
                phys::evaluate(m.params, m.geometry, vg - vs, vd - vs, options_.temp_k);
            // Current e.id flows drain -> source.
            // di/dvd = gds, di/dvg = gm, di/dvs = -(gm + gds).
            const int id_ = idx(m.drain);
            const int is_ = idx(m.source);
            const int ig_ = idx(m.gate);
            if (id_ >= 0) {
                residual[static_cast<std::size_t>(id_)] += e.id;
                jac.at(static_cast<std::size_t>(id_), static_cast<std::size_t>(id_)) += e.gds;
                if (ig_ >= 0) jac.at(static_cast<std::size_t>(id_), static_cast<std::size_t>(ig_)) += e.gm;
                if (is_ >= 0) jac.at(static_cast<std::size_t>(id_), static_cast<std::size_t>(is_)) -= e.gm + e.gds;
            }
            if (is_ >= 0) {
                residual[static_cast<std::size_t>(is_)] -= e.id;
                jac.at(static_cast<std::size_t>(is_), static_cast<std::size_t>(is_)) += e.gm + e.gds;
                if (ig_ >= 0) jac.at(static_cast<std::size_t>(is_), static_cast<std::size_t>(ig_)) -= e.gm;
                if (id_ >= 0) jac.at(static_cast<std::size_t>(is_), static_cast<std::size_t>(id_)) -= e.gds;
            }
        } else {
            // PMOS: magnitudes vsg = vs - vg, vsd = vs - vd; current flows
            // source -> drain while conducting.
            const phys::MosEval e =
                phys::evaluate(m.params, m.geometry, vs - vg, vs - vd, options_.temp_k);
            // i (source->drain): di/dvs = gm + gds, di/dvg = -gm, di/dvd = -gds.
            const int id_ = idx(m.drain);
            const int is_ = idx(m.source);
            const int ig_ = idx(m.gate);
            if (is_ >= 0) {
                residual[static_cast<std::size_t>(is_)] += e.id;
                jac.at(static_cast<std::size_t>(is_), static_cast<std::size_t>(is_)) += e.gm + e.gds;
                if (ig_ >= 0) jac.at(static_cast<std::size_t>(is_), static_cast<std::size_t>(ig_)) -= e.gm;
                if (id_ >= 0) jac.at(static_cast<std::size_t>(is_), static_cast<std::size_t>(id_)) -= e.gds;
            }
            if (id_ >= 0) {
                residual[static_cast<std::size_t>(id_)] -= e.id;
                jac.at(static_cast<std::size_t>(id_), static_cast<std::size_t>(id_)) += e.gds;
                if (ig_ >= 0) jac.at(static_cast<std::size_t>(id_), static_cast<std::size_t>(ig_)) += e.gm;
                if (is_ >= 0) jac.at(static_cast<std::size_t>(id_), static_cast<std::size_t>(is_)) -= e.gm + e.gds;
            }
        }
    }

    // gmin shunts keep otherwise floating nodes well-conditioned.
    for (std::size_t i = 0; i < circuit_.node_count(); ++i) {
        const int u = unknown_index_[i];
        if (u < 0) continue;
        residual[static_cast<std::size_t>(u)] += options_.gmin * volts[i];
        jac.at(static_cast<std::size_t>(u), static_cast<std::size_t>(u)) += options_.gmin;
    }
}

bool Simulator::solve_newton(std::vector<double>& volts, double h,
                             const std::vector<CapState>* caps, Integrator integ,
                             long& iters) const {
    Matrix jac(n_unknowns_, n_unknowns_);
    std::vector<double> residual(n_unknowns_);
    std::vector<double> delta;

    for (int it = 0; it < options_.max_newton_iters; ++it) {
        ++iters;
        assemble(volts, h, caps, integ, jac, residual);
        // Solve J * delta = -F.
        for (double& r : residual) r = -r;
        if (!lu_solve(jac, residual, delta)) return false;

        double max_dv = 0.0;
        for (std::size_t i = 0; i < circuit_.node_count(); ++i) {
            const int u = unknown_index_[i];
            if (u < 0) continue;
            double dv = delta[static_cast<std::size_t>(u)];
            dv = std::clamp(dv, -options_.v_step_limit, options_.v_step_limit);
            volts[i] += dv;
            max_dv = std::max(max_dv, std::abs(dv));
        }
        if (max_dv < options_.abstol_v) return true;
    }
    return false;
}

std::vector<double> Simulator::dc_operating_point() {
    std::vector<double> volts(circuit_.node_count(), 0.0);
    set_driven(volts, 0.0);
    long iters = 0;
    if (solve_newton(volts, 0.0, nullptr, options_.integrator, iters)) return volts;

    // Retry from a mid-rail guess: helps bistable/metastable circuits.
    double vmax = 0.0;
    for (std::size_t i = 0; i < circuit_.node_count(); ++i) {
        NodeId n{static_cast<std::uint32_t>(i)};
        if (circuit_.is_driven(n)) vmax = std::max(vmax, circuit_.source_of(n).value(0.0));
    }
    for (std::size_t i = 0; i < circuit_.node_count(); ++i) {
        if (unknown_index_[i] >= 0) volts[i] = 0.5 * vmax;
    }
    if (solve_newton(volts, 0.0, nullptr, options_.integrator, iters)) return volts;
    throw ConvergenceError("dc_operating_point: Newton failed to converge");
}

void Simulator::update_cap_state(const std::vector<double>& volts, double h,
                                 Integrator integ,
                                 std::vector<CapState>& caps) const {
    const bool trap = integ == Integrator::Trapezoidal;
    for (std::size_t k = 0; k < circuit_.capacitors().size(); ++k) {
        const auto& c = circuit_.capacitors()[k];
        const double geq = (trap ? 2.0 : 1.0) * c.farads / h;
        const double vab = volts[c.a.index] - volts[c.b.index];
        const double hist = geq * caps[k].v_old + (trap ? caps[k].i_old : 0.0);
        const double i_new = geq * vab - hist;
        caps[k].v_old = vab;
        caps[k].i_old = i_new;
    }
}

void Simulator::advance(std::vector<double>& volts, std::vector<CapState>& caps,
                        double t, double h, int depth, Integrator integ,
                        TransientResult& result) const {
    if (depth > options_.max_step_halvings) {
        throw ConvergenceError("transient: Newton failed at t = " + std::to_string(t));
    }
    std::vector<double> trial = volts;
    std::vector<CapState> trial_caps = caps;
    set_driven(trial, t + h);
    if (solve_newton(trial, h, &trial_caps, integ, result.total_newton_iters)) {
        if (!result.source_energy_j.empty()) {
            // Supply metering: energy = v * i_delivered * h per source,
            // with the end-of-step current (rectangle rule).
            for (std::size_t i = 0; i < circuit_.node_count(); ++i) {
                const NodeId n{static_cast<std::uint32_t>(i)};
                if (!circuit_.is_driven(n)) continue;
                const double cur =
                    injected_current(n, trial, h, &trial_caps, integ);
                result.source_energy_j[i] += trial[i] * cur * h;
            }
        }
        update_cap_state(trial, h, integ, trial_caps);
        volts = std::move(trial);
        caps = std::move(trial_caps);
        ++result.steps_taken;
        return;
    }
    // Halve the step: two sub-steps.
    advance(volts, caps, t, 0.5 * h, depth + 1, integ, result);
    advance(volts, caps, t + 0.5 * h, 0.5 * h, depth + 1, integ, result);
}

double Simulator::injected_current(NodeId node, const std::vector<double>& volts,
                                   double h, const std::vector<CapState>* caps,
                                   Integrator integ) const {
    double out = 0.0;

    for (const auto& r : circuit_.resistors()) {
        const double g = 1.0 / r.ohms;
        const double i = g * (volts[r.a.index] - volts[r.b.index]);
        if (r.a == node) out += i;
        if (r.b == node) out -= i;
    }
    if (caps != nullptr && h > 0.0) {
        const bool trap = integ == Integrator::Trapezoidal;
        for (std::size_t k = 0; k < circuit_.capacitors().size(); ++k) {
            const auto& c = circuit_.capacitors()[k];
            const double geq = (trap ? 2.0 : 1.0) * c.farads / h;
            const double vab = volts[c.a.index] - volts[c.b.index];
            const double hist = geq * (*caps)[k].v_old + (trap ? (*caps)[k].i_old : 0.0);
            const double i = geq * vab - hist;
            if (c.a == node) out += i;
            if (c.b == node) out -= i;
        }
    }
    for (const auto& m : circuit_.mosfets()) {
        const double vd = volts[m.drain.index];
        const double vg = volts[m.gate.index];
        const double vs = volts[m.source.index];
        if (m.params.type == phys::MosType::Nmos) {
            const phys::MosEval e =
                phys::evaluate(m.params, m.geometry, vg - vs, vd - vs, options_.temp_k);
            if (m.drain == node) out += e.id;   // Current leaves drain node.
            if (m.source == node) out -= e.id;  // And enters the source node.
        } else {
            const phys::MosEval e =
                phys::evaluate(m.params, m.geometry, vs - vg, vs - vd, options_.temp_k);
            if (m.source == node) out += e.id;  // PMOS: leaves the source node.
            if (m.drain == node) out -= e.id;
        }
    }
    out += options_.gmin * volts[node.index];
    return out;
}

TransientResult Simulator::transient(const TransientSpec& spec) {
    if (spec.t_stop <= 0.0 || spec.dt <= 0.0) {
        throw std::invalid_argument("transient: t_stop and dt must be > 0");
    }
    if (spec.record_stride < 1) {
        throw std::invalid_argument("transient: record_stride must be >= 1");
    }

    std::vector<double> volts(circuit_.node_count(), 0.0);
    if (spec.start_from_dc) {
        volts = dc_operating_point();
    } else {
        set_driven(volts, 0.0);
    }
    for (const auto& [node, v] : spec.initial_conditions) {
        if (node.index >= circuit_.node_count()) {
            throw std::invalid_argument("transient: initial-condition node out of range");
        }
        if (circuit_.is_driven(node)) {
            throw std::invalid_argument("transient: cannot set IC on driven node");
        }
        volts[node.index] = v;
    }

    std::vector<NodeId> probes = spec.probes;
    if (probes.empty()) {
        for (std::size_t i = 0; i < circuit_.node_count(); ++i) {
            probes.push_back(NodeId{static_cast<std::uint32_t>(i)});
        }
    }

    TransientResult result;
    if (spec.measure_power) {
        result.source_energy_j.assign(circuit_.node_count(), 0.0);
    }
    result.traces.resize(probes.size());
    for (std::size_t p = 0; p < probes.size(); ++p) {
        result.traces[p].name = circuit_.node_name(probes[p]);
    }
    auto record = [&](double t) {
        for (std::size_t p = 0; p < probes.size(); ++p) {
            result.traces[p].time.push_back(t);
            result.traces[p].value.push_back(volts[probes[p].index]);
        }
    };

    std::vector<CapState> caps(circuit_.capacitors().size());
    for (std::size_t k = 0; k < caps.size(); ++k) {
        const auto& c = circuit_.capacitors()[k];
        caps[k].v_old = volts[c.a.index] - volts[c.b.index];
        caps[k].i_old = 0.0;
    }

    record(0.0);
    const long n_steps = static_cast<long>(std::ceil(spec.t_stop / spec.dt - 1e-9));
    for (long s = 0; s < n_steps; ++s) {
        const double t = static_cast<double>(s) * spec.dt;
        const double h = std::min(spec.dt, spec.t_stop - t);
        // The first step always uses backward Euler: the capacitor
        // history current at t = 0 is unknown (initial conditions are
        // generally not an equilibrium), and trapezoidal would carry
        // that wrong history forward as sustained ringing.
        const Integrator integ =
            s == 0 ? Integrator::BackwardEuler : options_.integrator;
        advance(volts, caps, t, h, 0, integ, result);
        if ((s + 1) % spec.record_stride == 0 || s + 1 == n_steps) record(t + h);
    }
    return result;
}

} // namespace stsense::spice
