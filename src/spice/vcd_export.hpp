// Exports transient traces as VCD real variables so ring waveforms open
// in standard viewers next to the digital activity.
#pragma once

#include "spice/waveform.hpp"

#include <span>
#include <string>

namespace stsense::spice {

/// Writes all traces into one VCD file. Sample times are quantized to
/// the given timescale (default 1 fs per VCD tick keeps ps-scale
/// waveforms exact). Traces must share a common, increasing time base
/// (they do when they come from one TransientResult). Throws on I/O
/// errors or empty input.
void export_vcd(const std::string& path, std::span<const Trace> traces,
                double seconds_per_tick = 1e-15);

} // namespace stsense::spice
