#include "spice/vcd_export.hpp"

#include "util/vcd.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace stsense::spice {

void export_vcd(const std::string& path, std::span<const Trace> traces,
                double seconds_per_tick) {
    if (traces.empty()) throw std::invalid_argument("export_vcd: no traces");
    if (seconds_per_tick <= 0.0) {
        throw std::invalid_argument("export_vcd: non-positive timescale");
    }
    for (const auto& t : traces) {
        if (t.empty()) throw std::invalid_argument("export_vcd: empty trace");
    }

    util::VcdWriter vcd(path, "1fs");
    std::vector<int> ids;
    ids.reserve(traces.size());
    for (const auto& t : traces) ids.push_back(vcd.add_real(t.name));

    // All traces from one transient share the time base; walk the first.
    const auto& time = traces[0].time;
    for (std::size_t i = 0; i < time.size(); ++i) {
        vcd.time(static_cast<std::uint64_t>(
            std::llround(time[i] / seconds_per_tick)));
        for (std::size_t k = 0; k < traces.size(); ++k) {
            if (i < traces[k].size()) {
                vcd.change_real(ids[k], traces[k].value[i]);
            }
        }
    }
    vcd.finish();
}

} // namespace stsense::spice
