// Newton/MNA circuit simulator: DC operating point and fixed-step
// transient analysis with trapezoidal (default) or backward-Euler
// integration.
//
// Scope: the circuits in this library are small (tens of nodes), stiff
// only at logic edges, and always have every source node-to-ground, so
// the engine eliminates driven nodes instead of adding branch unknowns,
// assembles a dense Jacobian, and retries failed Newton solves by
// recursive step halving. That is all Fig. 1-class simulation needs.
//
// Fault tolerance: the try_* entry points return spice::Result<T>
// carrying a structured SimError instead of throwing, and failed solves
// climb a recovery ladder before giving up:
//
//   DC:        plain Newton (+ mid-rail restart) -> damped Newton ->
//              gmin stepping -> source stepping
//   transient: plain Newton -> step halving (the legacy path, preserved
//              bit-for-bit) -> damped Newton -> gmin stepping
//
// The ladder only engages after the plain solve fails, so any run the
// pre-ladder engine completed produces bitwise identical results.
// Per-solve iteration and wall-clock budgets (SimOptions) turn
// pathological points into StepLimit/DeadlineExceeded errors instead of
// hangs. Under an installed exec::FaultInjector, sabotaged steps skip
// the halving descent (an injected Newton failure models one that
// halving cannot fix) and exercise the ladder rungs directly.
#pragma once

#include "spice/linalg.hpp"
#include "spice/netlist.hpp"
#include "spice/sim_error.hpp"
#include "spice/waveform.hpp"

#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace stsense::spice {

/// Integration rule for the transient companion models.
enum class Integrator {
    BackwardEuler,
    Trapezoidal,
};

/// Engine-wide options.
struct SimOptions {
    double temp_k = 300.0;       ///< Junction temperature for all devices [K].
    double gmin = 1e-9;          ///< Shunt conductance to ground per node [S].
    int max_newton_iters = 80;   ///< Per solve.
    double abstol_v = 1e-7;      ///< Newton convergence: max |dV| [V].
    double v_step_limit = 0.4;   ///< Per-iteration voltage damping [V].
    Integrator integrator = Integrator::Trapezoidal;
    int max_step_halvings = 12;  ///< Transient retry depth on Newton failure.

    // --- Recovery ladder (engages only after a plain solve fails) ---
    bool enable_recovery = true;    ///< false: legacy fail-fast behavior.
    double damped_step_limit = 0.05;///< Rung-1 per-iteration voltage clamp [V].
    double gmin_start = 1e-3;       ///< Rung-2 initial shunt conductance [S].
    int source_steps = 10;          ///< Rung-3 homotopy steps on source scale.

    // --- Per-solve budgets (0 = unlimited) ---
    long max_total_newton_iters = 0; ///< Whole-call budget -> StepLimit.
    long max_transient_steps = 0;    ///< Accepted+halved steps -> StepLimit.
    double max_wall_ms = 0.0;        ///< Whole-call budget -> DeadlineExceeded.
};

/// Transient run description.
struct TransientSpec {
    double t_stop = 0.0;  ///< End time [s]. Must be > 0.
    double dt = 0.0;      ///< Base time step [s]. Must be > 0.
    bool start_from_dc = true; ///< Solve DC op before applying overrides.
    /// Node-voltage overrides applied at t = 0 (e.g. ring kick-start).
    std::vector<std::pair<NodeId, double>> initial_conditions;
    /// Nodes to record; empty records every node.
    std::vector<NodeId> probes;
    int record_stride = 1; ///< Record every k-th accepted base step.
    /// Accumulate per-source delivered energy (supply-current metering).
    bool measure_power = false;
};

/// Transient output: one trace per probe plus solver statistics.
struct TransientResult {
    std::vector<Trace> traces;
    long total_newton_iters = 0;
    long steps_taken = 0; ///< Including halved sub-steps.

    /// Deepest recovery-ladder rung any step needed (None on the
    /// fault-free fast path) and how many steps needed rescuing.
    RecoveryRung deepest_rung = RecoveryRung::None;
    long rescued_steps = 0;

    /// Energy delivered by each driven node's source over the run [J],
    /// indexed by NodeId::index (zero for undriven nodes). Filled when
    /// TransientSpec::measure_power is set. Ground's entry is the energy
    /// returned through ground (negative of the supplies' sum for a
    /// lossless source network).
    std::vector<double> source_energy_j;

    /// Average power delivered by a driven node over [t_from, t_stop]
    /// given the recorded energy (simple total/duration; per-interval
    /// accounting would need per-step records). Requires measure_power.
    double average_source_power_w(NodeId node, double duration_s) const;

    /// Trace lookup by node name; throws std::invalid_argument if absent.
    const Trace& trace(const std::string& node_name) const;

    /// Non-throwing trace lookup: nullptr when the node was not probed
    /// (lets measurement layers turn a malformed netlist into a SimError
    /// instead of an uncaught exception).
    const Trace* find_trace(const std::string& node_name) const;
};

/// Error thrown when the nonlinear solver cannot converge (legacy
/// compatibility type; new code should consume SimError via try_*).
struct ConvergenceError : std::runtime_error {
    using std::runtime_error::runtime_error;
};

class Simulator {
public:
    /// The circuit must outlive the simulator.
    Simulator(const Circuit& circuit, SimOptions options = {});

    /// Solves the DC operating point (capacitors open), climbing the
    /// recovery ladder on failure. Returns the full node-voltage vector
    /// indexed by NodeId::index, or a classified SimError.
    Result<std::vector<double>> try_dc_operating_point();

    /// Runs a transient analysis; solver failures come back as SimError
    /// (argument errors still throw std::invalid_argument).
    Result<TransientResult> try_transient(const TransientSpec& spec);

    /// Throwing wrappers around the try_* forms (SimException on solver
    /// failure), preserved for existing call sites.
    std::vector<double> dc_operating_point();
    TransientResult transient(const TransientSpec& spec);

    /// Ladder rung the last successful try_dc_operating_point needed.
    RecoveryRung last_dc_rung() const { return last_dc_rung_; }

    const SimOptions& options() const { return options_; }

private:
    struct CapState {
        double v_old = 0.0; ///< Branch voltage at the last accepted time.
        double i_old = 0.0; ///< Branch current at the last accepted time.
    };

    /// Outcome of one Newton solve attempt.
    enum class NewtonStatus {
        Converged,
        NoConverge,
        Singular,
        NonFinite,
        IterBudget,
        Deadline,
    };

    /// Knobs of one solve attempt (the ladder varies these per rung).
    struct NewtonParams {
        int max_iters = 0;
        double v_step_limit = 0.0;
        double gmin = 0.0;
        /// Ladder rung this attempt belongs to, as an injection depth:
        /// the fault injector sabotages attempts with
        /// rung_index < newton_fail_rungs of a tripped solve event.
        int rung_index = 0;
    };

    /// Whole-call budgets, shared by every attempt of one public call.
    struct Budget {
        long iters_left = -1; ///< < 0 = unlimited.
        bool has_deadline = false;
        std::chrono::steady_clock::time_point deadline{};
        long steps_left = -1; ///< < 0 = unlimited (transient only).
    };

    /// Per-solve-event injected sabotage (inactive without an injector).
    struct Sabotage {
        bool newton = false; ///< Attempts under `rungs` report NoConverge.
        bool nan = false;    ///< Attempts under `rungs` get a planted NaN.
        int rungs = 0;
        bool active() const { return newton || nan; }
    };

    /// Assembles Jacobian and residual at `volts`; when `caps` is
    /// non-null, capacitor companion models for step `h` under the given
    /// integration rule are stamped. (The rule is per-step because the
    /// first transient step always uses backward Euler: the capacitor
    /// history current at t = 0 is unknown, and trapezoidal would carry a
    /// wrong history forward as ringing.) `gmin` is a parameter so the
    /// gmin-stepping rung can ramp it per attempt.
    void assemble(const std::vector<double>& volts, double h,
                  const std::vector<CapState>* caps, Integrator integ,
                  double gmin, Matrix& jac, std::vector<double>& residual) const;

    /// Newton-iterates `volts` (full node vector; driven entries are
    /// preset by the caller) under the attempt's params, budget, and
    /// sabotage verdict.
    NewtonStatus solve_newton(std::vector<double>& volts, double h,
                              const std::vector<CapState>* caps,
                              Integrator integ, const NewtonParams& params,
                              Budget& budget, const Sabotage& sab,
                              long& iters) const;

    /// DC ladder shared by try_dc_operating_point and the transient DC
    /// start. On success records the rung into last_dc_rung_.
    Result<std::vector<double>> dc_ladder(Budget& budget);

    /// Advances one step of width h from t to t+h; recursively halves on
    /// Newton failure (legacy path) and climbs the damped/gmin rungs
    /// where the legacy engine would have thrown. Updates volts and caps.
    /// Returns Converged or the terminal failure status.
    NewtonStatus advance(std::vector<double>& volts,
                         std::vector<CapState>& caps, double t, double h,
                         int depth, Integrator integ, const Sabotage& sab,
                         Budget& budget, TransientResult& result) const;

    /// Commits an accepted step solution (metering + cap history).
    void commit_step(std::vector<double>& volts, std::vector<CapState>& caps,
                     std::vector<double>&& trial,
                     std::vector<CapState>&& trial_caps, double h,
                     Integrator integ, TransientResult& result) const;

    /// Draws the injected-sabotage verdict for the next solve event.
    Sabotage next_sabotage();

    Budget make_budget() const;

    void set_driven(std::vector<double>& volts, double t,
                    double scale = 1.0) const;
    void update_cap_state(const std::vector<double>& volts, double h,
                          Integrator integ, std::vector<CapState>& caps) const;

    /// Current flowing out of `node` into the circuit elements at the
    /// given solution (the current its source must deliver) [A].
    double injected_current(NodeId node, const std::vector<double>& volts,
                            double h, const std::vector<CapState>* caps,
                            Integrator integ) const;

    const Circuit& circuit_;
    SimOptions options_;
    std::vector<int> unknown_index_; ///< NodeId -> unknown slot, -1 if driven.
    std::size_t n_unknowns_ = 0;
    RecoveryRung last_dc_rung_ = RecoveryRung::None;
    long fault_event_seq_ = 0; ///< Solve-event counter for injection streams.
};

} // namespace stsense::spice
