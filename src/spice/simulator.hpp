// Newton/MNA circuit simulator: DC operating point and fixed-step
// transient analysis with trapezoidal (default) or backward-Euler
// integration.
//
// Scope: the circuits in this library are small (tens of nodes), stiff
// only at logic edges, and always have every source node-to-ground, so
// the engine eliminates driven nodes instead of adding branch unknowns,
// assembles a dense Jacobian, and retries failed Newton solves by
// recursive step halving. That is all Fig. 1-class simulation needs.
#pragma once

#include "spice/linalg.hpp"
#include "spice/netlist.hpp"
#include "spice/waveform.hpp"

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace stsense::spice {

/// Integration rule for the transient companion models.
enum class Integrator {
    BackwardEuler,
    Trapezoidal,
};

/// Engine-wide options.
struct SimOptions {
    double temp_k = 300.0;       ///< Junction temperature for all devices [K].
    double gmin = 1e-9;          ///< Shunt conductance to ground per node [S].
    int max_newton_iters = 80;   ///< Per solve.
    double abstol_v = 1e-7;      ///< Newton convergence: max |dV| [V].
    double v_step_limit = 0.4;   ///< Per-iteration voltage damping [V].
    Integrator integrator = Integrator::Trapezoidal;
    int max_step_halvings = 12;  ///< Transient retry depth on Newton failure.
};

/// Transient run description.
struct TransientSpec {
    double t_stop = 0.0;  ///< End time [s]. Must be > 0.
    double dt = 0.0;      ///< Base time step [s]. Must be > 0.
    bool start_from_dc = true; ///< Solve DC op before applying overrides.
    /// Node-voltage overrides applied at t = 0 (e.g. ring kick-start).
    std::vector<std::pair<NodeId, double>> initial_conditions;
    /// Nodes to record; empty records every node.
    std::vector<NodeId> probes;
    int record_stride = 1; ///< Record every k-th accepted base step.
    /// Accumulate per-source delivered energy (supply-current metering).
    bool measure_power = false;
};

/// Transient output: one trace per probe plus solver statistics.
struct TransientResult {
    std::vector<Trace> traces;
    long total_newton_iters = 0;
    long steps_taken = 0; ///< Including halved sub-steps.

    /// Energy delivered by each driven node's source over the run [J],
    /// indexed by NodeId::index (zero for undriven nodes). Filled when
    /// TransientSpec::measure_power is set. Ground's entry is the energy
    /// returned through ground (negative of the supplies' sum for a
    /// lossless source network).
    std::vector<double> source_energy_j;

    /// Average power delivered by a driven node over [t_from, t_stop]
    /// given the recorded energy (simple total/duration; per-interval
    /// accounting would need per-step records). Requires measure_power.
    double average_source_power_w(NodeId node, double duration_s) const;

    /// Trace lookup by node name; throws std::invalid_argument if absent.
    const Trace& trace(const std::string& node_name) const;
};

/// Error thrown when the nonlinear solver cannot converge.
struct ConvergenceError : std::runtime_error {
    using std::runtime_error::runtime_error;
};

class Simulator {
public:
    /// The circuit must outlive the simulator.
    Simulator(const Circuit& circuit, SimOptions options = {});

    /// Solves the DC operating point (capacitors open). Returns the full
    /// node-voltage vector indexed by NodeId::index.
    std::vector<double> dc_operating_point();

    /// Runs a transient analysis.
    TransientResult transient(const TransientSpec& spec);

    const SimOptions& options() const { return options_; }

private:
    struct CapState {
        double v_old = 0.0; ///< Branch voltage at the last accepted time.
        double i_old = 0.0; ///< Branch current at the last accepted time.
    };

    /// Assembles Jacobian and residual at `volts`; when `caps` is
    /// non-null, capacitor companion models for step `h` under the given
    /// integration rule are stamped. (The rule is per-step because the
    /// first transient step always uses backward Euler: the capacitor
    /// history current at t = 0 is unknown, and trapezoidal would carry a
    /// wrong history forward as ringing.)
    void assemble(const std::vector<double>& volts, double h,
                  const std::vector<CapState>* caps, Integrator integ,
                  Matrix& jac, std::vector<double>& residual) const;

    /// Newton-iterates `volts` (full node vector; driven entries are
    /// preset by the caller). Returns false on non-convergence.
    bool solve_newton(std::vector<double>& volts, double h,
                      const std::vector<CapState>* caps, Integrator integ,
                      long& iters) const;

    /// Advances one step of width h from t to t+h; recursively halves on
    /// Newton failure. Updates volts and caps. Throws ConvergenceError
    /// when the halving budget is exhausted.
    void advance(std::vector<double>& volts, std::vector<CapState>& caps,
                 double t, double h, int depth, Integrator integ,
                 TransientResult& result) const;

    void set_driven(std::vector<double>& volts, double t) const;
    void update_cap_state(const std::vector<double>& volts, double h,
                          Integrator integ, std::vector<CapState>& caps) const;

    /// Current flowing out of `node` into the circuit elements at the
    /// given solution (the current its source must deliver) [A].
    double injected_current(NodeId node, const std::vector<double>& volts,
                            double h, const std::vector<CapState>* caps,
                            Integrator integ) const;

    const Circuit& circuit_;
    SimOptions options_;
    std::vector<int> unknown_index_; ///< NodeId -> unknown slot, -1 if driven.
    std::size_t n_unknowns_ = 0;
};

} // namespace stsense::spice
