// Newton/MNA circuit simulator: DC operating point and transient
// analysis with trapezoidal (default) or backward-Euler integration,
// fixed-step by default and LTE-controlled adaptive stepping opt-in.
//
// Scope: the circuits in this library are small (tens of nodes), stiff
// only at logic edges, and always have every source node-to-ground, so
// the engine eliminates driven nodes instead of adding branch unknowns,
// assembles a dense Jacobian, and retries failed Newton solves by
// recursive step halving. That is all Fig. 1-class simulation needs.
//
// Performance kernel (opt-in via SimOptions::kernel, default off and
// bitwise identical to the historical engine):
//   * a preallocated per-Simulator Workspace (Jacobian, residual,
//     delta, trial state, LU factors, bypass caches) makes the steady
//     state of advance()/solve_newton() allocation-free;
//   * modified Newton: the LU factorization is kept and re-solved
//     across iterations and across steps of equal width, refactoring
//     only when convergence stalls (spice.newton.refactor /
//     spice.newton.reuse metrics);
//   * device-evaluation bypass: a MOSFET whose terminal voltages moved
//     less than bypass_tol_v since its last phys::evaluate is restamped
//     from the cached linearization (spice.eval.bypass_hits);
//   * adaptive stepping: a predictor/corrector divided-difference LTE
//     estimate grows/shrinks the step within [dt_min, dt_max], with
//     rejected steps rolled back and retried smaller.
//
// Fault tolerance: the try_* entry points return spice::Result<T>
// carrying a structured SimError instead of throwing, and failed solves
// climb a recovery ladder before giving up:
//
//   DC:        plain Newton (+ mid-rail restart) -> damped Newton ->
//              gmin stepping -> source stepping
//   transient: plain Newton -> step halving (the legacy path, preserved
//              bit-for-bit) -> damped Newton -> gmin stepping
//
// The ladder only engages after the plain solve fails, so any run the
// pre-ladder engine completed produces bitwise identical results. The
// ladder rungs always run the classic full-Newton path (the fast
// kernel's reuse/bypass shortcuts are exactly what a struggling solve
// should not lean on). Per-solve iteration and wall-clock budgets
// (SimOptions) turn pathological points into StepLimit/DeadlineExceeded
// errors instead of hangs. Under an installed exec::FaultInjector,
// sabotaged steps skip the halving descent (an injected Newton failure
// models one that halving cannot fix) and exercise the ladder rungs
// directly.
#pragma once

#include "spice/device_batch.hpp"
#include "spice/linalg.hpp"
#include "spice/netlist.hpp"
#include "spice/sim_error.hpp"
#include "spice/waveform.hpp"

#include "exec/cancel.hpp"
#include "phys/mosfet.hpp"
#include "util/simd.hpp"

#include <chrono>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace stsense::spice {

/// Integration rule for the transient companion models.
enum class Integrator {
    BackwardEuler,
    Trapezoidal,
};

/// Fast-transient-kernel knobs. Everything here is opt-in: with the
/// defaults the engine reproduces the historical fixed-step full-Newton
/// results bit for bit. fast() returns the tuned preset the ring
/// benches use.
struct TransientOptions {
    /// Modified Newton: keep the LU factorization and re-solve against
    /// it across iterations (and across steps of equal width),
    /// refactoring only when convergence stalls.
    bool reuse_lu = false;
    /// Forced-refactor threshold: consecutive re-solves against one
    /// factorization before a fresh factorization is required.
    int reuse_iter_limit = 8;
    /// Stall-detection threshold: a reused-Jacobian iteration whose
    /// max |dV| failed to shrink below this fraction of the previous
    /// iteration's forces a fresh factorization. The historical engine
    /// hard-coded 0.5, which on the ring's modified-Newton contraction
    /// rate (~0.6-0.8 per iteration) flagged nearly every reused
    /// iteration as a stall and refactored anyway — the reason PR 3
    /// measured reuse_lu as a net loss. Must be > 0.
    double reuse_stall_ratio = 0.5;

    /// Device-evaluation bypass tolerance [V]: a MOSFET whose terminal
    /// voltages moved less than this since its last real evaluation is
    /// restamped from the cached linearization. 0 disables bypass.
    double bypass_tol_v = 0.0;

    /// Batched SoA device evaluation: gather every MOSFET's terminal
    /// voltages into contiguous lanes, evaluate the population in one
    /// pass (bypass test folded into a per-lane mask), and scatter the
    /// stamps through a precomputed flat index map. Bitwise identical
    /// to the legacy per-device loop by construction (the parity suite
    /// gates it), so it is safe anywhere the legacy kernel runs.
    bool batch_eval = false;
    /// Lane-kernel dispatch for batch_eval (scalar and AVX2 kernels are
    /// bitwise identical; the STSENSE_SIMD env var overrides this).
    util::SimdMode simd = util::SimdMode::Auto;

    /// Structure-exploiting bordered-band LU for the ring's MNA pattern
    /// (O(n*b^2) instead of O(n^3) per factorization). The banded
    /// elimination order differs from the pivoted dense core, so results
    /// agree to rounding but are NOT bitwise identical — opt-in, and
    /// part of the sweep cache fingerprint. Falls back to dense
    /// LuFactors permanently when the pattern is not banded (or a
    /// pivot degenerates).
    bool banded_lu = false;

    /// Lock-step multi-point width for the sweep layers: sweep points
    /// sharing a grid stamp advance their Newton iterations together
    /// over one shared batched evaluator, lockstep_width points at a
    /// time. 1 disables lock-step. Consumed by ring::temperature_sweep
    /// (the Simulator itself always solves one point); results are
    /// bitwise identical to per-point solves by construction.
    int lockstep_width = 1;

    /// LTE-driven adaptive time stepping (rejected steps are rolled
    /// back and retried with a smaller h).
    bool adaptive = false;
    /// Predictor/corrector LTE acceptance threshold, relative to the
    /// largest node-voltage magnitude.
    double lte_rel_tol = 5e-4;
    double dt_min_factor = 0.25; ///< h >= dt_min_factor * spec.dt.
    double dt_max_factor = 4.0;  ///< h <= dt_max_factor * spec.dt.
    double dt_grow = 1.5;        ///< Step growth on a comfortably small LTE.
    double dt_shrink = 0.5;      ///< Step shrink on a rejected step.

    /// The tuned fast path: 0.5 mV device bypass (the ring's Jacobian
    /// is tiny, so phys::evaluate dominates each iteration and bypass
    /// is the big win) on the batched SoA evaluator, banded LU on the
    /// ring's bordered-band MNA pattern, lock-step multi-point
    /// evaluation, and modified Newton gated on strict contraction.
    /// The reuse tuning is counter-intuitive and deliberate: with the
    /// banded kernel a factorization is cheap, so the preset reuses a
    /// factorization only while the iteration contracts hard (ratio
    /// 0.3) and for at most 2 iterations — any stall refactors
    /// immediately rather than limping along on a stale Jacobian. A
    /// relaxed threshold (0.9, the obvious choice against the ring's
    /// 0.6-0.8 contraction rate) reuses far more but nearly doubles
    /// the iteration count and loses outright; see DESIGN §15 for the
    /// measured ablation. Adaptive stepping stays opt-in: a ring
    /// always has an edge in flight for the LTE controller to resolve,
    /// so it trades accuracy for nothing here.
    static TransientOptions fast() {
        TransientOptions k;
        k.bypass_tol_v = 5e-4;
        k.batch_eval = true;
        k.banded_lu = true;
        k.reuse_lu = true;
        k.reuse_iter_limit = 2;
        k.reuse_stall_ratio = 0.3;
        k.lockstep_width = 8;
        return k;
    }
};

/// Engine-wide options.
struct SimOptions {
    double temp_k = 300.0;       ///< Junction temperature for all devices [K].
    double gmin = 1e-9;          ///< Shunt conductance to ground per node [S].
    int max_newton_iters = 80;   ///< Per solve.
    double abstol_v = 1e-7;      ///< Newton convergence: max |dV| [V].
    double v_step_limit = 0.4;   ///< Per-iteration voltage damping [V].
    Integrator integrator = Integrator::Trapezoidal;
    int max_step_halvings = 12;  ///< Transient retry depth on Newton failure.

    /// Fast transient kernel (all defaults off = seed-identical).
    TransientOptions kernel;

    // --- Recovery ladder (engages only after a plain solve fails) ---
    bool enable_recovery = true;    ///< false: legacy fail-fast behavior.
    double damped_step_limit = 0.05;///< Rung-1 per-iteration voltage clamp [V].
    double gmin_start = 1e-3;       ///< Rung-2 initial shunt conductance [S].
    int source_steps = 10;          ///< Rung-3 homotopy steps on source scale.

    // --- Per-solve budgets (0 = unlimited) ---
    long max_total_newton_iters = 0; ///< Whole-call budget -> StepLimit.
    long max_transient_steps = 0;    ///< Attempted (accepted+halved+rejected)
                                     ///< steps -> StepLimit.
    double max_wall_ms = 0.0;        ///< Whole-call budget -> DeadlineExceeded.
};

/// Transient run description.
struct TransientSpec {
    double t_stop = 0.0;  ///< End time [s]. Must be > 0.
    double dt = 0.0;      ///< Base time step [s]. Must be > 0.
    bool start_from_dc = true; ///< Solve DC op before applying overrides.
    /// Node-voltage overrides applied at t = 0 (e.g. ring kick-start).
    std::vector<std::pair<NodeId, double>> initial_conditions;
    /// Nodes to record; empty records every node.
    std::vector<NodeId> probes;
    int record_stride = 1; ///< Record every k-th accepted base step.
    /// Accumulate per-source delivered energy (supply-current metering).
    bool measure_power = false;
    /// Optional early-stop predicate, evaluated after every accepted
    /// base step with the step-end time and full node-voltage vector.
    /// Returning true ends the run cleanly at that time (the final
    /// point is always recorded and TransientResult::early_exit is
    /// set). The ring layer uses this to stop once enough settled
    /// oscillation cycles are banked.
    std::function<bool(double, const std::vector<double>&)> stop_when;
};

/// Transient output: one trace per probe plus solver statistics.
struct TransientResult {
    std::vector<Trace> traces;
    long total_newton_iters = 0;
    long steps_taken = 0; ///< Including halved sub-steps.
    double t_end = 0.0;   ///< Time actually reached (== t_stop unless
                          ///< stop_when ended the run early).
    bool early_exit = false; ///< stop_when fired before t_stop.

    /// Deepest recovery-ladder rung any step needed (None on the
    /// fault-free fast path) and how many steps needed rescuing.
    RecoveryRung deepest_rung = RecoveryRung::None;
    long rescued_steps = 0;

    // --- Fast-kernel statistics (also published into the global
    // exec::MetricsRegistry as spice.newton.refactor /
    // spice.newton.reuse / spice.eval.bypass_hits) ---
    long lu_refactors = 0;   ///< Fresh Jacobian factorizations.
    long lu_reuses = 0;      ///< Iterations solved against a kept LU.
    long bypass_hits = 0;    ///< Device evaluations served from cache.
    long device_evals = 0;   ///< Real model evaluations (either path).
    long steps_rejected = 0; ///< Adaptive steps rolled back on LTE.
    long batch_lanes = 0;    ///< SoA lanes processed by the batched path
                             ///< (spice.eval.batch_lanes).
    long simd_groups = 0;    ///< 4-lane AVX2 groups (spice.eval.simd_groups).
    long banded_factors = 0; ///< Banded-LU factorizations
                             ///< (spice.lu.banded_factors).

    /// Energy delivered by each driven node's source over the run [J],
    /// indexed by NodeId::index (zero for undriven nodes). Filled when
    /// TransientSpec::measure_power is set. Ground's entry is the energy
    /// returned through ground (negative of the supplies' sum for a
    /// lossless source network).
    std::vector<double> source_energy_j;

    /// Average power delivered by a driven node over [t_from, t_stop]
    /// given the recorded energy (simple total/duration; per-interval
    /// accounting would need per-step records). Requires measure_power.
    double average_source_power_w(NodeId node, double duration_s) const;

    /// Trace lookup by node name; throws std::invalid_argument if absent.
    const Trace& trace(const std::string& node_name) const;

    /// Non-throwing trace lookup: nullptr when the node was not probed
    /// (lets measurement layers turn a malformed netlist into a SimError
    /// instead of an uncaught exception).
    const Trace* find_trace(const std::string& node_name) const;
};

/// Error thrown when the nonlinear solver cannot converge (legacy
/// compatibility type; new code should consume SimError via try_*).
struct ConvergenceError : std::runtime_error {
    using std::runtime_error::runtime_error;
};

/// One Simulator instance is single-threaded (it owns a mutable solver
/// workspace); concurrent sweeps build one Simulator per task, which is
/// also what keeps their results deterministic.
class Simulator {
public:
    /// The circuit must outlive the simulator.
    Simulator(const Circuit& circuit, SimOptions options = {});

    /// Solves the DC operating point (capacitors open), climbing the
    /// recovery ladder on failure. Returns the full node-voltage vector
    /// indexed by NodeId::index, or a classified SimError.
    Result<std::vector<double>> try_dc_operating_point();

    /// Runs a transient analysis; solver failures come back as SimError
    /// (argument errors still throw std::invalid_argument).
    Result<TransientResult> try_transient(const TransientSpec& spec);

    /// Throwing wrappers around the try_* forms (SimException on solver
    /// failure), preserved for existing call sites.
    std::vector<double> dc_operating_point();
    TransientResult transient(const TransientSpec& spec);

    /// Ladder rung the last successful try_dc_operating_point needed.
    RecoveryRung last_dc_rung() const { return last_dc_rung_; }

    const SimOptions& options() const { return options_; }

private:
    struct CapState {
        double v_old = 0.0; ///< Branch voltage at the last accepted time.
        double i_old = 0.0; ///< Branch current at the last accepted time.
    };

    /// Outcome of one Newton solve attempt. Running is internal to the
    /// iteration seam (newton_iteration returns it to mean "keep
    /// going"); it never escapes solve_newton.
    enum class NewtonStatus {
        Converged,
        NoConverge,
        Singular,
        NonFinite,
        IterBudget,
        Deadline,
        Cancelled,
        Running,
    };

    /// Knobs of one solve attempt (the ladder varies these per rung).
    struct NewtonParams {
        int max_iters = 0;
        double v_step_limit = 0.0;
        double gmin = 0.0;
        /// Ladder rung this attempt belongs to, as an injection depth:
        /// the fault injector sabotages attempts with
        /// rung_index < newton_fail_rungs of a tripped solve event.
        int rung_index = 0;
        /// Allows the solve to use the fast kernel's LU-reuse/bypass
        /// shortcuts (rung-0 transient attempts only; DC and the ladder
        /// rungs always run the classic path).
        bool allow_fast = false;
    };

    /// Whole-call budgets, shared by every attempt of one public call.
    /// make_budget() folds the ambient exec::CancelToken in: its
    /// effective deadline tightens `deadline` (so request deadlines ride
    /// the existing DeadlineExceeded rail) and the token itself is
    /// polled per Newton iteration for explicit cancellation.
    struct Budget {
        long iters_left = -1; ///< < 0 = unlimited.
        bool has_deadline = false;
        std::chrono::steady_clock::time_point deadline{};
        long steps_left = -1; ///< < 0 = unlimited (transient only).
        exec::CancelToken cancel; ///< Ambient token at call entry.
    };

    /// Per-solve-event injected sabotage (inactive without an injector).
    struct Sabotage {
        bool newton = false; ///< Attempts under `rungs` report NoConverge.
        bool nan = false;    ///< Attempts under `rungs` get a planted NaN.
        int rungs = 0;
        bool active() const { return newton || nan; }
    };

    /// Per-attempt kernel-path flags plus the loop-carried state of one
    /// Newton solve, factored out so the lock-step sweep can advance
    /// several Simulators' iterations in phase through the exact code
    /// path a solo solve runs (parity by construction).
    struct NewtonIterState {
        // Path selection, fixed per attempt (make_iter_state).
        bool fast_reuse = false; ///< Modified Newton (LU kept across iters).
        bool use_bypass = false; ///< Device bypass caches allowed.
        bool use_batch = false;  ///< Batched SoA assemble path.
        bool banded = false;     ///< Banded LU requested (may fall back).
        // Loop-carried iteration state.
        int it = 0;
        int reuse_run = 0;
        bool force_factor = false;
        double prev_max_dv = std::numeric_limits<double>::infinity();
    };

    /// Cached linearization of one MOSFET at its last real evaluation
    /// (terminal-voltage magnitudes in the device polarity convention).
    struct MosBypass {
        bool valid = false;
        double vgs = 0.0;
        double vds = 0.0;
        phys::MosEval eval;
    };

    /// Preallocated solver state, sized once in the constructor so the
    /// steady state of advance()/solve_newton() performs no heap
    /// allocation. Mutable because the public entry points are
    /// logically const; see the class comment for the threading rule.
    struct Workspace {
        Matrix jac;                   ///< n_unknowns x n_unknowns.
        std::vector<double> residual; ///< n_unknowns.
        std::vector<double> delta;    ///< Newton update.
        std::vector<double> trial_volts;
        std::vector<CapState> trial_caps;

        // Modified-Newton factorization + the (h, integ, gmin)
        // signature it was assembled under. When banded_active, the
        // live factorization is blu instead of lu (same signature
        // fields; only one factorization is current at a time).
        LuFactors lu;
        double lu_h = -1.0;
        Integrator lu_integ = Integrator::Trapezoidal;
        double lu_gmin = -1.0;

        // Banded-LU state (kernel.banded_lu). The plan is a property of
        // the circuit's sparsity pattern, so it is computed once per
        // Simulator; banded_fallback latches permanently when the
        // pattern is not banded or a pivot degenerates.
        BandedLuFactors blu;
        BandedLuFactors::Plan banded_plan;
        bool banded_planned = false;
        bool banded_fallback = false;
        bool banded_active = false; ///< blu (not lu) holds the live factors.

        std::vector<MosBypass> mos; ///< Per-MOSFET bypass caches.

        // Batched SoA evaluator (kernel.batch_eval). shared_ptr because
        // the lock-step sweep hands one multi-block batch to several
        // Simulators (each using its own block).
        std::shared_ptr<DeviceBatch> batch;
        DeviceBatch::Stats batch_stats;
        std::vector<double> residual_b;     ///< n_unknowns + 1 (trash slot).
        std::vector<double> node_currents;  ///< Metering scratch (node count).

        // Capacitor companion conductances for the (h, rule) the last
        // stamp ran under — the division per capacitor moves out of the
        // per-iteration loop (the cached geq is the identical double).
        std::vector<double> cap_geq;
        double geq_h = -1.0;
        bool geq_trap = false;

        // Adaptive-stepping bookkeeping (rollback + predictor).
        std::vector<double> save_volts;
        std::vector<CapState> save_caps;
        std::vector<double> save_energy;
        std::vector<double> prev_volts; ///< Solution one accepted step back.

        // Kernel statistics, harvested into TransientResult per run.
        long lu_refactors = 0;
        long lu_reuses = 0;
        long bypass_hits = 0;
        long device_evals = 0;
        long steps_rejected = 0;
        long banded_factors = 0;

        void reset_stats() {
            lu_refactors = lu_reuses = bypass_hits = device_evals =
                steps_rejected = banded_factors = 0;
            batch_stats = DeviceBatch::Stats{};
        }
    };

    /// Assembles the residual (and, when `want_jac`, the Jacobian) at
    /// `volts`; when `caps` is non-null, capacitor companion models for
    /// step `h` under the given integration rule are stamped. (The rule
    /// is per-step because the first transient step always uses backward
    /// Euler: the capacitor history current at t = 0 is unknown, and
    /// trapezoidal would carry a wrong history forward as ringing.)
    /// `gmin` is a parameter so the gmin-stepping rung can ramp it per
    /// attempt. `use_bypass` serves quiet MOSFETs from the workspace
    /// bypass caches instead of phys::evaluate.
    void assemble(const std::vector<double>& volts, double h,
                  const std::vector<CapState>* caps, Integrator integ,
                  double gmin, bool want_jac, bool use_bypass, Matrix& jac,
                  std::vector<double>& residual) const;

    /// The linear-element (resistor + capacitor-companion) and gmin
    /// slices of assemble(), shared between the legacy and batched
    /// assembly paths. `residual` only needs n_unknowns entries.
    void stamp_linear(const std::vector<double>& volts, double h,
                      const std::vector<CapState>* caps, Integrator integ,
                      bool want_jac, Matrix& jac,
                      std::span<double> residual) const;
    void stamp_gmin(const std::vector<double>& volts, double gmin,
                    bool want_jac, Matrix& jac,
                    std::span<double> residual) const;

    /// Batched assembly: identical element order (resistors, caps,
    /// devices, gmin) and per-cell accumulation order as assemble(), so
    /// every residual/Jacobian entry is bitwise equal — the device slice
    /// just runs through ws_.batch. Fills ws_.residual_b (whose trailing
    /// trash slot absorbs driven-node stamps).
    void assemble_batched(const std::vector<double>& volts, double h,
                          const std::vector<CapState>* caps, Integrator integ,
                          double gmin, bool want_jac, bool use_bypass,
                          Matrix& jac) const;

    /// Evaluates MOSFET `k` at the given terminal-voltage magnitudes,
    /// through the bypass cache when allowed.
    phys::MosEval eval_mosfet(std::size_t k, const Mosfet& m, double vgs,
                              double vds, bool use_bypass) const;

    /// Newton-iterates `volts` (full node vector; driven entries are
    /// preset by the caller) under the attempt's params, budget, and
    /// sabotage verdict. With params.allow_fast and the corresponding
    /// kernel options enabled, runs the modified-Newton/bypass path;
    /// otherwise the classic factor-every-iteration path.
    NewtonStatus solve_newton(std::vector<double>& volts, double h,
                              const std::vector<CapState>* caps,
                              Integrator integ, const NewtonParams& params,
                              Budget& budget, const Sabotage& sab,
                              long& iters) const;

    /// Resolves the kernel-path flags of one solve attempt.
    NewtonIterState make_iter_state(const NewtonParams& params,
                                    const std::vector<CapState>* caps) const;

    /// Exactly one Newton iteration (assemble, factor-or-reuse, solve,
    /// clamp, update) — the body of solve_newton's loop. Returns Running
    /// to continue iterating, Converged/a failure to stop. The lock-step
    /// sweep calls this directly to phase-advance several points.
    NewtonStatus newton_iteration(std::vector<double>& volts, double h,
                                  const std::vector<CapState>* caps,
                                  Integrator integ, const NewtonParams& params,
                                  Budget& budget, const Sabotage& sab,
                                  long& iters, NewtonIterState& st) const;

    /// DC ladder shared by try_dc_operating_point and the transient DC
    /// start. On success records the rung into last_dc_rung_.
    Result<std::vector<double>> dc_ladder(Budget& budget);

    /// Advances one step of width h from t to t+h; recursively halves on
    /// Newton failure (legacy path) and climbs the damped/gmin rungs
    /// where the legacy engine would have thrown. Updates volts and caps.
    /// Returns Converged or the terminal failure status.
    NewtonStatus advance(std::vector<double>& volts,
                         std::vector<CapState>& caps, double t, double h,
                         int depth, Integrator integ, const Sabotage& sab,
                         Budget& budget, TransientResult& result) const;

    /// The rescue tail of advance() (step halving, then the damped/gmin
    /// ladder rungs), split out so the lock-step sweep can route a
    /// failed phase-advanced point through the identical recovery the
    /// solo engine runs. `status` is the failed base attempt's verdict.
    NewtonStatus rescue_failed_step(std::vector<double>& volts,
                                    std::vector<CapState>& caps, double t,
                                    double h, int depth, Integrator integ,
                                    const Sabotage& sab, Budget& budget,
                                    TransientResult& result,
                                    NewtonStatus status) const;

    /// Commits an accepted step solution (metering + cap history); the
    /// trial buffers are swapped into volts/caps.
    void commit_step(std::vector<double>& volts, std::vector<CapState>& caps,
                     std::vector<double>& trial,
                     std::vector<CapState>& trial_caps, double h,
                     Integrator integ, TransientResult& result) const;

    /// Draws the injected-sabotage verdict for the next solve event.
    Sabotage next_sabotage();

    Budget make_budget() const;

    void set_driven(std::vector<double>& volts, double t,
                    double scale = 1.0) const;
    void update_cap_state(const std::vector<double>& volts, double h,
                          Integrator integ, std::vector<CapState>& caps) const;

    /// Current flowing out of `node` into the circuit elements at the
    /// given solution (the current its source must deliver) [A].
    double injected_current(NodeId node, const std::vector<double>& volts,
                            double h, const std::vector<CapState>* caps,
                            Integrator integ, bool use_bypass) const;

    /// Batched supply metering: one device-population pass accumulates
    /// every node's injected current (per-node sums run in the same
    /// element order as injected_current, so each source's current — and
    /// the banked energy — is bitwise identical to the legacy
    /// per-driven-node walks).
    void meter_sources_batched(const std::vector<double>& volts, double h,
                               const std::vector<CapState>* caps,
                               Integrator integ, bool use_bypass,
                               TransientResult& result) const;

    /// Drops every kept factorization (dense and banded).
    void invalidate_factors() const {
        ws_.lu.invalidate();
        ws_.blu.invalidate();
        ws_.banded_active = false;
    }

    /// The fixed-step loop (the historical engine, preserved bit for
    /// bit) and the opt-in adaptive loop behind try_transient. Both
    /// fill `result` in place and return the failure, if any.
    std::optional<SimError> run_fixed(const TransientSpec& spec,
                                      std::vector<double>& volts,
                                      std::vector<CapState>& caps,
                                      Budget& budget, TransientResult& result,
                                      const std::function<void(double)>& record);
    std::optional<SimError> run_adaptive(const TransientSpec& spec,
                                         std::vector<double>& volts,
                                         std::vector<CapState>& caps,
                                         Budget& budget, TransientResult& result,
                                         const std::function<void(double)>& record);

    /// Lock-step construction: share a prebuilt multi-block DeviceBatch,
    /// using `block` as this point's lane block. Only LockStepRunner
    /// (spice/lockstep.cpp) uses this.
    Simulator(const Circuit& circuit, SimOptions options,
              std::shared_ptr<DeviceBatch> batch, std::size_t block);

    friend class LockStepRunner;

    const Circuit& circuit_;
    SimOptions options_;
    std::vector<int> unknown_index_; ///< NodeId -> unknown slot, -1 if driven.
    std::size_t n_unknowns_ = 0;

    /// Precomputed two-terminal element topology: node indices plus
    /// their unknown slots (-1 when driven), resolved once so the
    /// per-iteration stamp loops skip the NodeId -> slot lookups.
    /// `coeff` is 1/ohms for resistors and farads for capacitors.
    struct LinElem {
        std::uint32_t a, b;
        int ia, ib;
        double coeff;
    };
    std::vector<LinElem> res_elems_;
    std::vector<LinElem> cap_elems_;
    /// Driven nodes (ascending) with their sources; the undriven rest
    /// (ascending — matches unknown_index_ slot order by construction).
    std::vector<std::uint32_t> driven_nodes_;
    std::vector<const Source*> driven_srcs_;
    std::vector<std::uint32_t> unknown_nodes_;
    std::size_t batch_block_ = 0; ///< This Simulator's DeviceBatch block.
    RecoveryRung last_dc_rung_ = RecoveryRung::None;
    long fault_event_seq_ = 0; ///< Solve-event counter for injection streams.
    mutable Workspace ws_;
};

} // namespace stsense::spice
