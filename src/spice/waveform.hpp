// Waveform traces and scalar measurements (period, frequency, duty
// cycle, edge times). The ring-oscillator period extraction used by
// Fig. 1 and by cell characterization lives here.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace stsense::spice {

/// Edge direction selector for threshold crossings.
enum class EdgeDir {
    Rising,
    Falling,
    Either,
};

/// A sampled signal v(t) with strictly increasing time points.
struct Trace {
    std::string name;
    std::vector<double> time;
    std::vector<double> value;

    std::size_t size() const { return time.size(); }
    bool empty() const { return time.empty(); }

    /// Linear interpolation at time t; clamps outside the record.
    double sample(double t) const;
};

/// Times at which the trace crosses `level` in the given direction
/// (linear interpolation between samples).
std::vector<double> crossings(const Trace& trace, double level,
                              EdgeDir dir = EdgeDir::Rising);

/// Statistics of a periodic trace.
struct PeriodMeasurement {
    double period = 0.0;       ///< Mean period over the analyzed cycles [s].
    double period_stddev = 0.0;///< Cycle-to-cycle standard deviation [s].
    int cycles = 0;            ///< Number of full cycles analyzed.
};

/// Measures the oscillation period from rising crossings of `level`,
/// discarding the first `skip_cycles` cycles (startup transient).
/// Returns nullopt if fewer than 2 usable crossings exist.
std::optional<PeriodMeasurement> measure_period(const Trace& trace, double level,
                                                int skip_cycles = 2);

/// Mean frequency implied by measure_period (nullopt when unmeasurable).
std::optional<double> measure_frequency(const Trace& trace, double level,
                                        int skip_cycles = 2);

/// Fraction of one period spent above `level` (uses the cycle after the
/// skip window). Returns nullopt when the trace has too few edges.
std::optional<double> measure_duty_cycle(const Trace& trace, double level,
                                         int skip_cycles = 2);

/// Time from the trigger trace crossing 50% to the target trace crossing
/// 50%, both measured at the given supply-relative mid level. This is
/// the propagation-delay measurement used for cell characterization.
/// `edge` selects the *output* transition of interest.
std::optional<double> propagation_delay(const Trace& input, const Trace& output,
                                        double mid_level, EdgeDir edge);

} // namespace stsense::spice
