// AVX2 lane kernel of spice::DeviceBatch.
//
// This translation unit is compiled with -mavx2 -ffp-contract=off (see
// src/spice/CMakeLists.txt). The contract flag is load-bearing: GCC
// happily fuses a _mm256_mul_pd feeding a _mm256_add_pd into one FMA,
// which rounds once where the scalar kernel rounds twice — and the two
// kernels are required to be bitwise identical. No -mfma is passed
// either, so a fused multiply-add cannot even be emitted here.
//
// The vector work covers exactly the arithmetic that is profitable and
// provably parity-safe: the bypass mask (|dv| <= tol on both terminal
// deltas, gated on cache validity) and the hit-lane restamp
// id + gm*dvgs + gds*dvds in the scalar association. Miss lanes drop to
// the shared scalar model evaluation (detail::eval_lane) in ascending
// lane order — the same calls, in the same order, the scalar kernel
// makes.
#include "spice/device_batch.hpp"

#include <cmath>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace stsense::spice::detail {

#if defined(__AVX2__)

void eval_lanes_avx2(const BatchLanes& L, bool use_cache, double tol,
                     BatchCounters& counters) {
    if (!use_cache) {
        // Nothing to vectorize without the caches — every lane is a
        // scalar libm model evaluation anyway.
        eval_lanes_scalar(L, use_cache, tol, counters);
        return;
    }

    const __m256d vtol = _mm256_set1_pd(tol);
    const __m256d vone = _mm256_set1_pd(1.0);
    const __m256d sign_mask = _mm256_set1_pd(-0.0);

    std::size_t i = 0;
    for (; i + 4 <= L.n; i += 4) {
        const __m256d vgs = _mm256_loadu_pd(L.vgs + i);
        const __m256d vds = _mm256_loadu_pd(L.vds + i);
        const __m256d cvgs = _mm256_loadu_pd(L.cache_vgs + i);
        const __m256d cvds = _mm256_loadu_pd(L.cache_vds + i);
        const __m256d dgs = _mm256_sub_pd(vgs, cvgs);
        const __m256d dds = _mm256_sub_pd(vds, cvds);

        // valid && |dgs| <= tol && |dds| <= tol, NaN-false like the
        // scalar comparisons (ordered quiet predicates).
        const __m256d valid =
            _mm256_cmp_pd(_mm256_loadu_pd(L.cache_valid + i), vone, _CMP_EQ_OQ);
        const __m256d near_gs = _mm256_cmp_pd(
            _mm256_andnot_pd(sign_mask, dgs), vtol, _CMP_LE_OQ);
        const __m256d near_ds = _mm256_cmp_pd(
            _mm256_andnot_pd(sign_mask, dds), vtol, _CMP_LE_OQ);
        const __m256d hit =
            _mm256_and_pd(valid, _mm256_and_pd(near_gs, near_ds));

        const __m256d cid = _mm256_loadu_pd(L.cache_id + i);
        const __m256d cgm = _mm256_loadu_pd(L.cache_gm + i);
        const __m256d cgds = _mm256_loadu_pd(L.cache_gds + i);
        // (cid + cgm*dgs) + cgds*dds — the scalar association, unfused.
        const __m256d restamp = _mm256_add_pd(
            _mm256_add_pd(cid, _mm256_mul_pd(cgm, dgs)),
            _mm256_mul_pd(cgds, dds));

        // Store the hit-lane results wholesale; miss lanes are
        // overwritten by their real evaluation just below.
        _mm256_storeu_pd(L.out_id + i, restamp);
        _mm256_storeu_pd(L.out_gm + i, cgm);
        _mm256_storeu_pd(L.out_gds + i, cgds);

        ++counters.simd_groups;
        const int hits = _mm256_movemask_pd(hit) & 0xF;
        counters.bypass_hits += __builtin_popcount(hits);
        int miss = (~hits) & 0xF;
        while (miss != 0) {
            const int b = __builtin_ctz(static_cast<unsigned>(miss));
            miss &= miss - 1;
            const std::size_t lane = i + static_cast<std::size_t>(b);
            const phys::MosEval e = eval_lane(L, lane, L.vgs[lane], L.vds[lane]);
            ++counters.device_evals;
            L.out_id[lane] = e.id;
            L.out_gm[lane] = e.gm;
            L.out_gds[lane] = e.gds;
            L.cache_valid[lane] = 1.0;
            L.cache_vgs[lane] = L.vgs[lane];
            L.cache_vds[lane] = L.vds[lane];
            L.cache_id[lane] = e.id;
            L.cache_gm[lane] = e.gm;
            L.cache_gds[lane] = e.gds;
        }
    }

    // Tail lanes (< 4 remaining): the scalar kernel body, verbatim.
    for (; i < L.n; ++i) {
        const double vgs = L.vgs[i];
        const double vds = L.vds[i];
        if (L.cache_valid[i] == 1.0 && std::abs(vgs - L.cache_vgs[i]) <= tol &&
            std::abs(vds - L.cache_vds[i]) <= tol) {
            ++counters.bypass_hits;
            L.out_id[i] = L.cache_id[i] + L.cache_gm[i] * (vgs - L.cache_vgs[i]) +
                          L.cache_gds[i] * (vds - L.cache_vds[i]);
            L.out_gm[i] = L.cache_gm[i];
            L.out_gds[i] = L.cache_gds[i];
            continue;
        }
        const phys::MosEval e = eval_lane(L, i, vgs, vds);
        ++counters.device_evals;
        L.out_id[i] = e.id;
        L.out_gm[i] = e.gm;
        L.out_gds[i] = e.gds;
        L.cache_valid[i] = 1.0;
        L.cache_vgs[i] = vgs;
        L.cache_vds[i] = vds;
        L.cache_id[i] = e.id;
        L.cache_gm[i] = e.gm;
        L.cache_gds[i] = e.gds;
    }
}

#else // !__AVX2__

void eval_lanes_avx2(const BatchLanes& L, bool use_cache, double tol,
                     BatchCounters& counters) {
    // Built without AVX2 support: the dispatcher should never pick this
    // path (resolve_simd degrades to Scalar), but keep it correct.
    eval_lanes_scalar(L, use_cache, tol, counters);
}

#endif

} // namespace stsense::spice::detail
