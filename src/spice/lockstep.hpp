// Lock-step multi-point transient driver.
//
// A temperature sweep solves the same netlist at many operating points;
// each point's transient is an independent Newton recursion over the
// same circuit structure. run_lockstep() advances K such points in
// phase: one shared multi-block DeviceBatch holds every point's SoA
// lanes (one block per point, contiguous), and the driver round-robins
// exactly one Newton iteration per active point per round through the
// Simulator's newton_iteration seam — the same calls, in the same
// per-point order, a solo Simulator::try_transient makes. Per-point
// state (workspace, factorizations, bypass caches, fault streams,
// budgets) is fully private to that point's Simulator, so every
// result is bitwise identical to running the points one at a time
// (the lock-step parity suite gates this, including under injected
// Newton-failure rungs).
//
// Scope: fixed-step transients only (kernel.adaptive must be off —
// adaptive points reject/grow steps independently and have no common
// phase to share). A point whose attempt fails leaves the phase loop
// and runs the standard rescue (halving + ladder) to completion inline,
// exactly as the solo engine would, then rejoins at its next step.
#pragma once

#include "spice/netlist.hpp"
#include "spice/sim_error.hpp"
#include "spice/simulator.hpp"

#include <cstdint>
#include <span>
#include <vector>

namespace stsense::spice {

/// Runs specs[p] under options[p] (p = 0..K-1) over one shared batched
/// evaluator, lock-stepping the points' Newton iterations. Returns one
/// Result per point, in order.
///
/// * options/specs must be the same non-zero length; every
///   options[p].kernel.adaptive must be false.
/// * fault_ctx (optional, same length) is the exec::FaultContext value
///   installed around point p's injected-sabotage draws — pass the same
///   per-point stream ids the equivalent solo sweep would use so an
///   installed FaultInjector sabotages identical solve events. Empty:
///   the ambient context is used for every point.
/// * Argument errors throw std::invalid_argument (like try_transient);
///   solver failures come back as per-point SimErrors.
std::vector<Result<TransientResult>> run_lockstep(
    const Circuit& circuit, std::span<const SimOptions> options,
    std::span<const TransientSpec> specs,
    std::span<const std::uint64_t> fault_ctx = {});

} // namespace stsense::spice
