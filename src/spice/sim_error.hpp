// Structured solver-failure taxonomy and an expected-style Result<T>.
//
// The simulation engine historically threw on any failure, which meant a
// single bad (config, T) point aborted a whole sweep with no diagnosis
// and no partial result. The fault-tolerant API instead *returns* a
// SimError carried in a Result<T>: callers (the ring driver, the sweep
// FaultPolicy machinery, the benches) can classify the failure, retry
// with a different rung of the recovery ladder, substitute an analytic
// fallback, or record-and-skip the point. The throwing entry points
// survive as thin wrappers for existing callers.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace stsense::spice {

/// What went wrong inside a solve. The first five kinds mirror the
/// classic SPICE failure modes; MissingSignal covers malformed
/// netlist/probe requests surfaced by the measurement layer.
enum class SimErrorKind {
    NonConvergence,   ///< Newton exhausted its iterations on every rung.
    SingularMatrix,   ///< LU factorization hit a zero pivot.
    NonFiniteState,   ///< NaN/Inf appeared in the solution vector.
    StepLimit,        ///< Iteration/step budget exceeded.
    DeadlineExceeded, ///< Per-solve wall-clock budget exceeded.
    MissingSignal,    ///< Requested probe/trace does not exist.
    NotCalibrated,    ///< Readout requested before the converter was trimmed.
};

inline const char* to_string(SimErrorKind kind) {
    switch (kind) {
        case SimErrorKind::NonConvergence: return "non-convergence";
        case SimErrorKind::SingularMatrix: return "singular-matrix";
        case SimErrorKind::NonFiniteState: return "non-finite-state";
        case SimErrorKind::StepLimit: return "step-limit";
        case SimErrorKind::DeadlineExceeded: return "deadline-exceeded";
        case SimErrorKind::MissingSignal: return "missing-signal";
        case SimErrorKind::NotCalibrated: return "not-calibrated";
    }
    return "unknown";
}

/// Which rung of the recovery ladder produced the returned solution.
/// None means the plain solve converged (the fault-free fast path).
enum class RecoveryRung {
    None,           ///< Plain Newton, no assistance.
    DampedNewton,   ///< Tightened per-iteration voltage clamp.
    GminStepping,   ///< Homotopy on the node shunt conductance.
    SourceStepping, ///< Homotopy on the source amplitudes.
};

inline const char* to_string(RecoveryRung rung) {
    switch (rung) {
        case RecoveryRung::None: return "none";
        case RecoveryRung::DampedNewton: return "damped-newton";
        case RecoveryRung::GminStepping: return "gmin-stepping";
        case RecoveryRung::SourceStepping: return "source-stepping";
    }
    return "unknown";
}

/// One classified solver failure.
struct SimError {
    SimErrorKind kind = SimErrorKind::NonConvergence;
    std::string message;
    double time_s = -1.0;    ///< Transient time of the failure; -1 for DC.
    long newton_iters = 0;   ///< Iterations burned before giving up.

    std::string to_string() const {
        std::string out = spice::to_string(kind);
        out += ": ";
        out += message;
        if (time_s >= 0.0) out += " (t = " + std::to_string(time_s) + " s)";
        return out;
    }
};

/// Exception form of a SimError, thrown by the compatibility wrappers.
struct SimException : std::runtime_error {
    explicit SimException(SimError e)
        : std::runtime_error(e.to_string()), error(std::move(e)) {}
    SimError error;
};

/// Minimal expected-style carrier: either a value or a SimError.
template <typename T>
class Result {
public:
    Result(T value) : v_(std::move(value)) {}              // NOLINT(google-explicit-constructor)
    Result(SimError error) : v_(std::move(error)) {}       // NOLINT(google-explicit-constructor)

    bool ok() const { return std::holds_alternative<T>(v_); }
    explicit operator bool() const { return ok(); }

    T& value() { return std::get<T>(v_); }
    const T& value() const { return std::get<T>(v_); }
    const SimError& error() const { return std::get<SimError>(v_); }

    /// Unwraps, throwing SimException on error (compatibility bridge).
    T take_or_throw() && {
        if (!ok()) throw SimException(std::get<SimError>(std::move(v_)));
        return std::get<T>(std::move(v_));
    }

private:
    std::variant<T, SimError> v_;
};

} // namespace stsense::spice
