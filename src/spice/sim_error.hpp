// Solver-failure taxonomy — now thin aliases over the library-wide
// stsense::Expected<T, Error> (util/expected.hpp).
//
// The simulation engine historically threw on any failure, which meant a
// single bad (config, T) point aborted a whole sweep with no diagnosis
// and no partial result. The fault-tolerant API instead *returns* a
// classified error carried in a Result<T>: callers (the ring driver, the
// sweep FaultPolicy machinery, the benches) can classify the failure,
// retry with a different rung of the recovery ladder, substitute an
// analytic fallback, or record-and-skip the point.
//
// The error machinery itself was promoted to stsense::{ErrorKind, Error,
// Expected} when the sensor and monitor layers grew the same contract;
// this header keeps the original spice names alive as aliases plus the
// pieces that are genuinely solver-specific (RecoveryRung, SimException).
#pragma once

#include "util/expected.hpp"

#include <stdexcept>
#include <utility>

namespace stsense::spice {

/// DEPRECATED alias — use stsense::ErrorKind in new code.
using SimErrorKind = stsense::ErrorKind;

/// DEPRECATED alias — use stsense::Error in new code.
using SimError = stsense::Error;

/// Makes `spice::to_string(err.kind)` keep resolving post-aliasing.
using stsense::to_string;

/// Which rung of the recovery ladder produced the returned solution.
/// None means the plain solve converged (the fault-free fast path).
enum class RecoveryRung {
    None,           ///< Plain Newton, no assistance.
    DampedNewton,   ///< Tightened per-iteration voltage clamp.
    GminStepping,   ///< Homotopy on the node shunt conductance.
    SourceStepping, ///< Homotopy on the source amplitudes.
};

inline const char* to_string(RecoveryRung rung) {
    switch (rung) {
        case RecoveryRung::None: return "none";
        case RecoveryRung::DampedNewton: return "damped-newton";
        case RecoveryRung::GminStepping: return "gmin-stepping";
        case RecoveryRung::SourceStepping: return "source-stepping";
    }
    return "unknown";
}

/// Exception form of a SimError, thrown by the compatibility wrappers.
struct SimException : std::runtime_error {
    explicit SimException(SimError e)
        : std::runtime_error(e.to_string()), error(std::move(e)) {}
    SimError error;
};

/// DEPRECATED alias — use stsense::Expected<T> in new code.
template <typename T>
using Result = stsense::Expected<T, SimError>;

} // namespace stsense::spice

namespace stsense {

/// take_or_throw() on any Expected<T, Error> raises the historical
/// SimException, preserving every existing catch site.
template <>
struct ErrorTraits<Error> {
    [[noreturn]] static void raise(Error error) {
        throw spice::SimException(std::move(error));
    }
};

} // namespace stsense
