// exec::CancelToken — cooperative cancellation and deadline propagation.
//
// A serving runtime needs every admitted unit of work to be *stoppable*:
// a client that disconnects, a request whose deadline passed, or a server
// that is draining must be able to reclaim pool workers without waiting
// for an unbounded sweep to finish. Preemption is off the table — the
// solver owns raw buffers and the checkpoint layer owns half-flushed
// files, so tearing a thread down mid-task would corrupt both. Instead
// cancellation is *cooperative*: layers that own a natural loop poll a
// token at their boundaries (task dequeue, parallel_for chunk, sweep
// point, lock-step group, optimizer candidate, monitor site, Newton
// iteration, transient step) and unwind cleanly when it fires.
//
// Tokens are hierarchical — server → client → request → task. A child
// holds a shared pointer to its parent's state, and poll() walks the
// (short) parent chain, so cancelling a client fires every request
// token under it without any registration bookkeeping. The first
// observed cause is latched into the child's own flag, so subsequent
// polls are a single relaxed atomic load.
//
// Deadlines ride the same rail: a token may carry a steady_clock
// deadline; poll() latches CancelCause::DeadlineExceeded once it passes.
// with_deadline() clamps against inherited deadlines, so a request can
// only tighten what its client allows.
//
// The *ambient* token (CancelScope, modeled on FaultContext) is how the
// signal crosses layers that never heard of each other: the service
// installs the request token around the handler, ThreadPool::submit
// captures the ambient token into the task, and the worker re-installs
// it around the task body — so a Newton iteration five layers down
// polls the right request's token with no plumbing through signatures.
//
// Cost contract: a default-constructed token is an empty handle; every
// query on it is a null check. Code paths with no deadline and no
// cancellation configured stay bitwise identical to a build without
// this header.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

namespace stsense::exec {

/// Why a token fired. Ordered roughly by "who pulled the trigger":
/// explicit cancel, the clock, the transport, the process.
enum class CancelCause : int {
    None = 0,
    Cancelled = 1,        ///< Explicit cancel() (wire `cancel`, chaos rung).
    DeadlineExceeded = 2, ///< The token's (or an ancestor's) deadline passed.
    Disconnected = 3,     ///< The owning client's connection dropped.
    Shutdown = 4,         ///< The server is draining.
};

const char* to_string(CancelCause cause);

/// Thrown by check() and by layers that unwind on a fired token. The
/// TaskGroup error channel carries it from a worker to the waiter, so
/// a cancelled parallel_for rethrows it at the call site with the
/// original cause intact.
struct CancelledError : std::runtime_error {
    explicit CancelledError(CancelCause cause)
        : std::runtime_error(std::string("cancelled: ") + to_string(cause)),
          cause(cause) {}
    CancelCause cause;
};

/// Value-type handle on a shared cancellation state (or on nothing:
/// the default-constructed token never fires and costs a null check).
class CancelToken {
public:
    using Clock = std::chrono::steady_clock;

    CancelToken() = default;

    /// A fresh root token (no parent, no deadline).
    static CancelToken make();

    /// True when this handle refers to real state. An invalid token is
    /// inert: never cancelled, no deadline, children of it are roots.
    bool valid() const { return state_ != nullptr; }

    /// A child token: fires when this token (or any ancestor) fires,
    /// and can additionally be cancelled or deadlined on its own
    /// without affecting the parent. child() of an invalid token is a
    /// fresh root, so call sites need no special casing.
    CancelToken child() const;

    /// A child whose deadline is `deadline` clamped against every
    /// inherited deadline (a request can only tighten its client's
    /// budget, never extend it).
    CancelToken child_with_deadline(Clock::time_point deadline) const;

    /// child_with_deadline(now + ms); ms is clamped to >= 0.
    CancelToken child_with_deadline_ms(double ms) const;

    /// Fires the token (and, via the parent chain, every descendant).
    /// The first cause wins; later calls are no-ops. Safe on an
    /// invalid token (no-op) and from any thread.
    void cancel(CancelCause cause = CancelCause::Cancelled) const;

    /// The full check: own latch, then own deadline, then the parent
    /// chain (latching whatever it finds). Returns CancelCause::None
    /// while the token is live.
    CancelCause poll() const;

    /// poll() != None. Once a cause is latched this is one atomic load,
    /// so it is safe inside per-iteration loops.
    bool cancelled() const { return poll() != CancelCause::None; }

    /// Throws CancelledError if the token fired. The poll points use
    /// this where unwinding is the desired response.
    void check() const {
        if (const CancelCause c = poll(); c != CancelCause::None)
            throw CancelledError(c);
    }

    /// The tightest deadline along the parent chain; returns false when
    /// no ancestor carries one. The solver maps this into its per-solve
    /// wall-clock budget so Newton iterations honor request deadlines.
    bool deadline(Clock::time_point& out) const;

    /// Milliseconds until the effective deadline (negative once past);
    /// returns false when no deadline is set anywhere on the chain.
    bool remaining_ms(double& out) const;

private:
    struct State {
        std::atomic<int> cause{0}; ///< CancelCause; 0 while live.
        bool has_deadline = false; ///< Immutable after construction.
        Clock::time_point deadline{};
        std::shared_ptr<State> parent;
    };
    explicit CancelToken(std::shared_ptr<State> state)
        : state_(std::move(state)) {}

    std::shared_ptr<State> state_;
};

/// Scoped ambient token: the innermost installed token is what
/// ThreadPool::submit captures into tasks and what the deep poll
/// points (spice budget, monitor scan) consult. Installing an
/// *invalid* token is a no-op (the previous ambient token stays
/// visible) so layers can install their configured token
/// unconditionally without masking an enclosing request's.
///
/// Defined out of line: every touch of the thread-local slot stays in
/// cancel.cpp, where the TLS model is local and sanitizer
/// instrumentation of cross-TU accesses cannot misfire (same pattern
/// as FaultContext).
class CancelScope {
public:
    explicit CancelScope(CancelToken token);
    ~CancelScope();
    CancelScope(const CancelScope&) = delete;
    CancelScope& operator=(const CancelScope&) = delete;

    /// The innermost installed token (invalid outside any scope).
    static const CancelToken& current();

private:
    CancelToken previous_;
    bool installed_ = false;
};

} // namespace stsense::exec
