// Fixed-size work-stealing thread pool — the execution backbone of the
// library's embarrassingly parallel workloads (temperature sweeps,
// design-space enumeration, distributed-sensor scans, Monte-Carlo
// trials).
//
// Design goals, in order:
//   1. *Determinism*: parallel_for chunks the index space with a fixed
//      chunk -> index mapping and callers commit results by index, so a
//      parallel run is bitwise identical to a serial one regardless of
//      the thread count or scheduling. Nothing about ordering is left to
//      the scheduler.
//   2. *Nestability*: a task may itself call parallel_for (the optimizer
//      parallelizes candidates whose sweeps could parallelize points).
//      Waiters help execute pending tasks instead of blocking, so nested
//      use cannot deadlock even on a single-thread pool.
//   3. *Exception safety*: a task that throws does not take a worker
//      down. The first exception (lowest chunk index for parallel_for)
//      is captured and rethrown to the caller after the batch drains.
//   4. *Cancellability*: every task captures the ambient
//      exec::CancelToken at submission and the worker re-installs it
//      around the body, so cooperative cancellation crosses the thread
//      hop with no signature plumbing. A task whose token already fired
//      at dequeue is skipped (a CancelledError is delivered through the
//      group), so a cancelled batch drains in O(queue scan), not
//      O(work). With no token installed this costs one null check.
#pragma once

#include "exec/cancel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace stsense::exec {

class ThreadPool;

/// A batch of heterogeneous jobs submitted to one pool. wait() blocks —
/// helping to execute pending pool tasks meanwhile — until every job of
/// *this group* finished, then rethrows the first captured exception.
class TaskGroup {
public:
    explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;
    /// Joins outstanding tasks (exceptions swallowed — call wait()).
    ~TaskGroup();

    /// Schedules one job on the group's pool.
    void run(std::function<void()> fn);

    /// Blocks until all scheduled jobs completed; rethrows the first
    /// exception any of them threw (first = earliest submission order).
    void wait();

private:
    friend class ThreadPool;
    struct State {
        std::mutex m;
        std::condition_variable cv;
        std::size_t pending = 0;
        /// Exception of the lowest submission ticket that threw.
        std::exception_ptr error;
        std::size_t error_ticket = ~std::size_t{0};
    };
    ThreadPool& pool_;
    std::shared_ptr<State> state_ = std::make_shared<State>();
    std::size_t next_ticket_ = 0;
};

/// Fixed-size pool with per-worker deques and work stealing: workers pop
/// their own deque LIFO (cache-friendly) and steal FIFO from victims.
class ThreadPool {
public:
    /// Spawns `n_threads` workers (clamped to >= 1).
    explicit ThreadPool(int n_threads);
    ~ThreadPool();
    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Worker count.
    int size() const { return static_cast<int>(workers_.size()); }

    /// Chunked deterministic parallel loop over [0, n): `body(begin, end)`
    /// is invoked for consecutive chunks of at most `grain` indices
    /// (chunk c covers [c*grain, min(n, (c+1)*grain))). The caller helps
    /// execute chunks, so the call also makes progress on a busy pool.
    /// Rethrows the exception of the lowest-index failing chunk.
    ///
    /// grain = 0 selects auto_grain(n, size()): the batch width is split
    /// into ~4 chunks per worker so stragglers rebalance, without paying
    /// per-index scheduling on wide loops. The chunk -> index mapping is
    /// still fixed once the grain is resolved, so the auto grain keeps
    /// the bitwise-deterministic contract (results are committed by
    /// index; only scheduling changes). The resolved grain of every
    /// scheduled loop is published to the "exec.parallel_for.grain"
    /// gauge.
    ///
    /// Cancellation: polls the ambient CancelToken before scheduling
    /// (throwing CancelledError without running anything) and skips
    /// not-yet-started chunks once the token fires mid-loop; chunks
    /// already executing run to completion unless the body polls.
    void parallel_for(std::size_t n, std::size_t grain,
                      const std::function<void(std::size_t, std::size_t)>& body);

    /// The grain-size heuristic behind parallel_for's grain = 0: about 4
    /// chunks per worker (ceil division, so the tail chunk is never the
    /// only small one), floored at 1 index per chunk. Exposed for tests
    /// and for callers that want the number without scheduling.
    static std::size_t auto_grain(std::size_t n, int workers);

    /// The process-wide pool, sized by the STSENSE_THREADS environment
    /// variable when set (>= 1), else std::thread::hardware_concurrency.
    static ThreadPool& global();

    /// Thread count global() would use: STSENSE_THREADS override or
    /// hardware concurrency, clamped to the hardware thread count either
    /// way — oversubscribing a CPU-bound pool only adds context-switch
    /// overhead. Exposed (with the raw string parser below) so the
    /// override is testable without mutating the environment.
    static int default_thread_count();

    /// Clamps a requested worker count to the hardware: a request < 1
    /// means "auto" (hardware_concurrency); anything larger is reduced
    /// to the hardware thread count. Explicit ThreadPool(n) construction
    /// stays unclamped (tests deliberately build odd-shaped pools).
    static int clamp_to_hardware(int requested);

    /// Parses a STSENSE_THREADS value; returns `fallback` for null,
    /// empty, non-numeric, or < 1 values.
    static int parse_thread_env(const char* value, int fallback);

    /// Total tasks executed (all queues, lifetime). For tests/metrics.
    std::uint64_t tasks_executed() const;
    /// Tasks a worker stole from another worker's deque.
    std::uint64_t tasks_stolen() const;
    /// Tasks sitting in the deques right now, not yet picked up. Relaxed
    /// read — an instantaneous load signal for admission control and the
    /// service object model, not a synchronization point.
    std::size_t queue_depth() const;
    /// Tasks currently executing on a worker (or a helping waiter).
    /// Relaxed read; never exceeds size() plus the number of helpers.
    std::size_t inflight() const;

private:
    friend class TaskGroup;
    struct Task {
        std::function<void()> fn;
        std::shared_ptr<TaskGroup::State> group;
        std::size_t ticket = 0;
        /// Ambient token at submission time: the worker re-installs it
        /// around fn so cancellation crosses the thread hop, and a task
        /// whose token fired before dequeue is skipped (never run) with
        /// a CancelledError delivered through the group instead.
        CancelToken token;
    };
    struct Queue {
        std::mutex m;
        std::deque<Task> q;
    };

    void submit(Task task);
    void worker_loop(std::size_t self);
    /// Pops one task (own deque back first, then steals front of others,
    /// then the overflow queue). `self` == npos for non-worker threads.
    bool try_pop(std::size_t self, Task& out);
    void execute(Task& task);
    /// Runs one pending task if any; used by waiters to help.
    bool help_one();

    std::vector<std::unique_ptr<Queue>> queues_;
    std::vector<std::thread> workers_;
    /// First logical trace tid of this pool's contiguous worker block
    /// (see obs::Tracer::reserve_tid_block).
    std::uint32_t trace_tid_base_ = 0;
    std::mutex sleep_m_;
    std::condition_variable sleep_cv_;
    bool stop_ = false; ///< Guarded by sleep_m_.
    std::atomic<std::size_t> pending_{0};
    std::atomic<std::size_t> inflight_{0};
    std::atomic<std::size_t> round_robin_{0};
    std::atomic<std::uint64_t> executed_{0};
    std::atomic<std::uint64_t> stolen_{0};
};

} // namespace stsense::exec
