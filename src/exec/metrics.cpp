#include "exec/metrics.hpp"

#include <sstream>

namespace stsense::exec {

Counter& MetricsRegistry::counter(const std::string& name) {
    std::lock_guard lock(m_);
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
    std::lock_guard lock(m_);
    auto& slot = gauges_[name];
    if (!slot) slot = std::make_unique<Gauge>();
    return *slot;
}

Timer& MetricsRegistry::timer(const std::string& name) {
    std::lock_guard lock(m_);
    auto& slot = timers_[name];
    if (!slot) slot = std::make_unique<Timer>();
    return *slot;
}

std::string MetricsRegistry::to_json() const {
    std::lock_guard lock(m_);
    std::ostringstream out;
    out << "{\"counters\":{";
    bool first = true;
    for (const auto& [name, c] : counters_) {
        out << (first ? "" : ",") << '"' << name << "\":" << c->value();
        first = false;
    }
    out << "},\"gauges\":{";
    first = true;
    for (const auto& [name, g] : gauges_) {
        out << (first ? "" : ",") << '"' << name << "\":" << g->value();
        first = false;
    }
    out << "},\"timers\":{";
    first = true;
    for (const auto& [name, t] : timers_) {
        out << (first ? "" : ",") << '"' << name << "\":{\"total_ms\":"
            << t->total_ms() << ",\"count\":" << t->count() << '}';
        first = false;
    }
    out << "}}";
    return out.str();
}

std::string MetricsRegistry::to_json_with(const std::string& key,
                                          const std::string& extra_json) const {
    std::string base = to_json();
    // Splice before the closing brace: {"counters":...,"<key>":<extra>}
    base.pop_back();
    base += ",\"" + key + "\":" + extra_json + "}";
    return base;
}

void MetricsRegistry::reset() {
    std::lock_guard lock(m_);
    for (auto& [name, c] : counters_) c->reset();
    for (auto& [name, g] : gauges_) g->reset();
    for (auto& [name, t] : timers_) t->reset();
}

MetricsRegistry& MetricsRegistry::global() {
    static MetricsRegistry registry;
    return registry;
}

} // namespace stsense::exec
