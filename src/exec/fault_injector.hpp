// exec::FaultInjector — deterministic fault injection for the runtime.
//
// Robustness claims ("the sweep survives a failed point", "the recovery
// ladder rescues a non-converging solve", "the cache drops a corrupted
// row") are only testable if failures can be produced on demand, and
// only *debuggable* if the same seed produces the same failures every
// run at every thread count. The injector is therefore a pure function:
// whether site S trips at work index i depends only on
// (seed, site, index) via util::Rng::split — never on scheduling,
// wall-clock, or call order.
//
// Sites are the hook points wired through the stack:
//   * NewtonFail — spice::Simulator: the base (undamped) Newton attempt
//     reports non-convergence, forcing the recovery ladder to engage.
//     `newton_fail_rungs` widens the sabotage to the first N ladder
//     rungs, so tests can prove each deeper rung individually.
//   * NanState  — spice::Simulator: a NaN is planted in the converged
//     solution of a sabotaged attempt (caught by the finiteness check).
//   * Point     — ring::temperature_sweep / sensor::ThermalMonitor: the
//     whole unit of work fails with a SimError before evaluation
//     (exercises the per-point FaultPolicy machinery for both engines).
//   * CacheRow  — exec::ResultCache::save_csv: one character of the
//     persisted row is corrupted (caught by the load-time checksum).
//   * SlowTask  — exec::ThreadPool: the task sleeps `slow_task_us`
//     before running (exercises deadline budgets and stragglers).
//   * StuckOscillator — sensor::ThermalMonitor: the ring's period is
//     stuck at `stuck_period_s` regardless of temperature, a persistent
//     hardware fault (caught by the per-measurement watchdog or the
//     supervisor's stuck-at self-test).
//   * DriftSite — sensor::ThermalMonitor: the ring reads the field
//     `drift_offset_c` degrees off, a persistent calibration-drift
//     fault (caught by the supervisor's spatial MAD outlier test;
//     a NaN offset plants a non-finite readout).
//   * CheckpointTruncate — exec::Checkpoint::flush: the persisted
//     checkpoint is sheared in half (caught by the per-row checksums
//     at resume time).
//   * SweepKill — ring::temperature_sweep: the process "dies" right
//     after completing point i (modelled as an InjectedKill exception),
//     exercising checkpoint/resume at every kill index.
//   * ActuatorStuck — dtm::DtmFleet: the region's power-gating actuator
//     ignores the commanded throttle and applies `stuck_factor` instead,
//     a persistent fault (caught by the controller supervisor's
//     stuck-actuator self-test).
//   * RegionKill — dtm::DtmFleet: every sensor site of the region is
//     reported unreadable before readout, a persistent fault (drives the
//     supervisor's sensor-loss latch).
//   * CancelStorm — exec::ThreadPool: the task's cancel token is fired
//     right before the task body runs, exercising the cooperative
//     cancellation rails (skip-on-dequeue, group error delivery,
//     checkpoint flush-on-cancel) at deterministic task indices.
//   * ShardKill — population::run_population: the process "dies" right
//     after folding shard i into the streaming accumulators (modelled
//     as an InjectedKill exception), exercising shard-granular
//     checkpoint/resume at every boundary.
//
// Installation is process-global and test-scoped: construct a
// FaultInjector::Scope with a Config and every hook consults it until
// the scope dies. No injector installed (the default) costs one relaxed
// atomic load per hook.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace stsense::exec {

/// Thrown by the SweepKill site: stands in for a process kill in tests
/// and benches (a real kill cannot be unwound from; the exception lets
/// one process "die" mid-sweep and then resume from the checkpoint).
struct InjectedKill : std::runtime_error {
    explicit InjectedKill(std::uint64_t index)
        : std::runtime_error("injected kill after work index " +
                             std::to_string(index)),
          index(index) {}
    std::uint64_t index;
};

class FaultInjector {
public:
    enum class Site : int {
        NewtonFail = 0,
        NanState = 1,
        Point = 2,
        CacheRow = 3,
        SlowTask = 4,
        StuckOscillator = 5,
        DriftSite = 6,
        CheckpointTruncate = 7,
        SweepKill = 8,
        ActuatorStuck = 9,
        RegionKill = 10,
        CancelStorm = 11,
        ShardKill = 12,
    };
    static constexpr int kSiteCount = 13;

    struct Config {
        std::uint64_t seed = 1;       ///< Root of every trip decision.
        double p_newton_fail = 0.0;   ///< P(base Newton attempt sabotaged).
        double p_nan_state = 0.0;     ///< P(NaN planted in a solution).
        double p_point = 0.0;         ///< P(sweep/monitor point fails).
        double p_cache_row = 0.0;     ///< P(persisted cache row corrupted).
        double p_slow_task = 0.0;     ///< P(pool task delayed).
        double p_stuck_osc = 0.0;     ///< P(ring period stuck, per ring).
        double p_drift_site = 0.0;    ///< P(ring drifted, per ring).
        double p_ckpt_truncate = 0.0; ///< P(checkpoint flush torn).
        double p_sweep_kill = 0.0;    ///< P(run killed after a point).
        double p_actuator_stuck = 0.0;///< P(region throttle actuator stuck).
        double p_region_kill = 0.0;   ///< P(region's sensors all unreadable).
        double p_cancel_storm = 0.0;  ///< P(task's cancel token fired mid-run).
        double p_shard_kill = 0.0;    ///< P(run killed after folding a shard).
        /// How deep the Newton/NaN sabotage reaches: 1 = base attempt
        /// only (damped rung rescues), 2 = base + damped (gmin rescues),
        /// 3 = + gmin (source stepping rescues), >= 4 = unrescuable.
        int newton_fail_rungs = 1;
        int slow_task_us = 200;       ///< SlowTask delay.
        /// Period a stuck oscillator outputs [s]. The default is slow
        /// enough that a gated measurement blows its watchdog budget.
        double stuck_period_s = 1.5e-3;
        /// Field offset a drifted ring reads [degC]. NaN plants a
        /// non-finite readout instead of a plausible-but-wrong one.
        double drift_offset_c = 25.0;
        /// Power factor a stuck actuator applies regardless of command.
        /// The default (1.0 = no throttle) is the dangerous direction.
        double stuck_factor = 1.0;
        /// When non-empty, unit-addressed sites trip only for these unit
        /// indices — lets a test pin a fault onto one specific ring,
        /// zone, or sweep point deterministically. Point, StuckOscillator,
        /// DriftSite, ActuatorStuck and RegionKill address units through
        /// point_stream (index / 16); SweepKill and ShardKill address the
        /// raw point/shard index. Other sites ignore the filter.
        std::vector<std::uint64_t> only_units;
    };

    explicit FaultInjector(Config config);

    /// Pure trip decision for (site, index): same seed, same answer,
    /// regardless of threads or call order. Counts trips into the
    /// metrics registry ("exec.fault.<site>").
    bool trip(Site site, std::uint64_t index) const;

    const Config& config() const { return config_; }

    /// Trips recorded so far, all sites (for recovery-rate reporting).
    std::uint64_t total_trips() const { return trips_.load(std::memory_order_relaxed); }

    /// The installed injector, or nullptr when fault injection is off.
    static FaultInjector* active() {
        return active_.load(std::memory_order_acquire);
    }

    /// RAII install/uninstall of the process-global injector. Nesting
    /// restores the previous injector on destruction.
    class Scope {
    public:
        explicit Scope(FaultInjector& injector)
            : previous_(active_.exchange(&injector, std::memory_order_acq_rel)) {}
        ~Scope() { active_.store(previous_, std::memory_order_release); }
        Scope(const Scope&) = delete;
        Scope& operator=(const Scope&) = delete;

    private:
        FaultInjector* previous_;
    };

    /// Stream index for Site::Point decisions: distinct retry attempts
    /// of the same work unit get distinct streams (a retry is a fresh
    /// draw, so injected faults are transient unless p = 1), while the
    /// same (unit, attempt) pair always reproduces the same verdict.
    static std::uint64_t point_stream(std::uint64_t unit_index,
                                      std::uint64_t attempt = 0) {
        return unit_index * 16 + (attempt & 15);
    }

    /// Parses the STSENSE_FAULT_SEED environment variable; returns
    /// `fallback` when unset/empty/non-numeric. The benches seed their
    /// injector with this so a failing run is replayable.
    static std::uint64_t seed_from_env(std::uint64_t fallback);
    /// Raw-string form of the above, exposed for tests.
    static std::uint64_t parse_seed(const char* value, std::uint64_t fallback);

private:
    double probability(Site site) const;

    Config config_;
    mutable std::atomic<std::uint64_t> trips_{0};
    static std::atomic<FaultInjector*> active_;
};

/// Scoped work-index context: layers that own a meaningful index (the
/// sweep's point index, the monitor's site index) publish it here so
/// deeper hooks (the simulator's Newton sabotage) derive their trip
/// streams from it — keeping decisions deterministic per unit of work
/// instead of per wall-clock call. Thread-local, so concurrent points
/// do not interfere.
class FaultContext {
public:
    // Defined out of line: every touch of the thread-local slot stays in
    // fault_injector.cpp, where the TLS model is local and sanitizer
    // instrumentation of cross-TU accesses cannot misfire.
    explicit FaultContext(std::uint64_t index);
    ~FaultContext();
    FaultContext(const FaultContext&) = delete;
    FaultContext& operator=(const FaultContext&) = delete;

    /// The innermost published index (0 outside any context).
    static std::uint64_t current();

private:
    std::uint64_t previous_;
    static thread_local std::uint64_t current_;
};

} // namespace stsense::exec
