// exec::Checkpoint — crash-safe incremental persistence for long runs.
//
// A sweep or optimizer run over N independent points dies all-or-nothing
// today: a kill at point N-1 recomputes everything. The checkpoint makes
// such runs resumable with the same determinism discipline as the result
// cache:
//
//   * keyed by the run's content fingerprint — a checkpoint written by a
//     *different* computation (other grid, other config, other policy)
//     is detected at load time and ignored wholesale, never merged;
//   * every row carries a trailing FNV-1a checksum, so torn/bit-rotten
//     rows degrade to "recompute that point" instead of poisoning the
//     resumed series;
//   * writes go through atomic_write_file (tmp + rename), so a kill
//     mid-flush leaves either the previous complete checkpoint or the
//     new one — never a half-written file;
//   * each point's payload is stored with shortest-round-trip formatting
//     (util::format_double), so a resumed point is bitwise identical to
//     a recomputed one.
//
// The class is thread-safe: parallel workers record() concurrently and
// flushes are serialized internally.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace stsense::exec {

/// Writes `content` to `path` atomically: the bytes land in
/// "<path>.tmp.<pid>" first and are renamed over `path` only after a
/// successful close, so readers never observe a partial file and a kill
/// mid-write loses nothing but the in-flight update. Throws
/// std::runtime_error when the file cannot be written or renamed.
void atomic_write_file(const std::string& path, const std::string& content);

class Checkpoint {
public:
    /// A checkpoint for a run of `n_points` units of work, each
    /// completing with `values_per_point` doubles of payload, identified
    /// by `fingerprint` (the run's content hash). The file at `path` is
    /// not touched until load() or flush().
    Checkpoint(std::string path, std::uint64_t fingerprint,
               std::size_t n_points, std::size_t values_per_point);

    /// Restores completed points from the file; returns how many were
    /// accepted. A missing file is a cold start (returns 0). A header
    /// that fails its checksum or disagrees with (fingerprint, n_points,
    /// values_per_point) invalidates the whole file — a stale checkpoint
    /// from a different run must never leak points into this one. Rows
    /// that fail their checksum, repeat an index, or are out of range
    /// are dropped and counted ("exec.checkpoint.corrupt_rows").
    std::size_t load();

    bool completed(std::size_t index) const;
    /// Payload of a completed point (values_per_point doubles).
    std::span<const double> values(std::size_t index) const;

    /// Marks `index` complete with its payload. Auto-flushes after every
    /// `flush_every()` newly recorded points. Thread-safe.
    void record(std::size_t index, std::span<const double> values);

    /// Points recorded between automatic flushes (default 8; 1 = flush
    /// on every completion; 0 disables auto-flush).
    void set_flush_every(std::size_t n) { flush_every_ = n; }
    std::size_t flush_every() const { return flush_every_; }

    /// Atomically rewrites the file with every completed point. The
    /// FaultInjector's CheckpointTruncate site can shear the content in
    /// half here — load() then recovers everything before the tear.
    void flush();

    std::size_t completed_count() const;

    /// Resume index of a *sequential* consumer: the number of contiguous
    /// completed points starting at index 0. A sharded engine whose
    /// point k depends on points 0..k-1 (the population Monte-Carlo
    /// folds shard state forward) restores from values(shard_progress()
    /// - 1) and continues at shard_progress() — instead of re-parsing
    /// the checkpoint CSV to rediscover where the previous run stopped.
    /// Completed points *behind* a hole (possible only for random-access
    /// consumers like sweeps) do not extend the prefix.
    std::size_t shard_progress() const;

    std::size_t n_points() const { return n_points_; }
    std::uint64_t fingerprint() const { return fingerprint_; }
    const std::string& path() const { return path_; }

    /// Deletes the file (call after the run completes so a finished
    /// run's checkpoint does not linger). Missing file is fine.
    void remove_file();

private:
    std::string compose_locked() const; ///< Requires m_ held.
    void flush_locked();                ///< Requires m_ held.

    std::string path_;
    std::uint64_t fingerprint_;
    std::size_t n_points_;
    std::size_t values_per_point_;
    std::size_t flush_every_ = 8;

    mutable std::mutex m_;
    std::vector<std::uint8_t> done_;
    std::vector<double> payload_; ///< n_points * values_per_point, row-major.
    std::size_t completed_ = 0;
    std::size_t since_flush_ = 0;
    std::uint64_t flushes_ = 0;
};

} // namespace stsense::exec
