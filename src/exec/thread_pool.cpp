#include "exec/thread_pool.hpp"

#include "exec/fault_injector.hpp"
#include "exec/metrics.hpp"
#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>

namespace stsense::exec {

namespace {

/// Thread-local worker index inside its owning pool (npos elsewhere).
/// Lets submit() target the local deque and try_pop() prefer it.
constexpr std::size_t kNoWorker = ~std::size_t{0};
thread_local const ThreadPool* tl_pool = nullptr;
thread_local std::size_t tl_worker = kNoWorker;

} // namespace

// ---------------------------------------------------------------- TaskGroup

TaskGroup::~TaskGroup() {
    try {
        wait();
    } catch (...) {
        // Destructor join: the exception was already delivered to an
        // earlier wait() or there is no live waiter to rethrow to.
    }
}

void TaskGroup::run(std::function<void()> fn) {
    {
        std::lock_guard lock(state_->m);
        ++state_->pending;
    }
    ThreadPool::Task task;
    task.fn = std::move(fn);
    task.group = state_;
    task.ticket = next_ticket_++;
    pool_.submit(std::move(task));
}

void TaskGroup::wait() {
    for (;;) {
        {
            std::unique_lock lock(state_->m);
            if (state_->pending == 0) break;
        }
        // Help drain the pool instead of blocking: this makes nested
        // parallel sections deadlock-free (a worker waiting on an inner
        // group keeps executing tasks) and lets the calling thread
        // contribute throughput.
        if (pool_.help_one()) continue;
        std::unique_lock lock(state_->m);
        // Bounded wait: a task submitted concurrently with the last
        // help_one() scan could otherwise be missed until the next
        // notification.
        state_->cv.wait_for(lock, std::chrono::milliseconds(1),
                            [&] { return state_->pending == 0; });
    }
    std::lock_guard lock(state_->m);
    if (state_->error) {
        auto err = state_->error;
        state_->error = nullptr; // Deliver once.
        std::rethrow_exception(err);
    }
}

// ---------------------------------------------------------------- ThreadPool

ThreadPool::ThreadPool(int n_threads) {
    const int n = std::max(1, n_threads);
    queues_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) queues_.push_back(std::make_unique<Queue>());
    // Contiguous logical-tid block: worker K of this pool traces under a
    // stable id even when several pools are alive at once.
    trace_tid_base_ =
        obs::Tracer::reserve_tid_block(static_cast<std::uint32_t>(n));
    workers_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        workers_.emplace_back([this, i] { worker_loop(static_cast<std::size_t>(i)); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lock(sleep_m_);
        stop_ = true;
    }
    sleep_cv_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::submit(Task task) {
    // Capture the submitting thread's ambient cancel token so the
    // worker can re-install it around the body (and skip the body
    // outright once it fires).
    task.token = CancelScope::current();
    // A worker submits to its own deque (LIFO locality); outside threads
    // round-robin across workers.
    std::size_t target = (tl_pool == this) ? tl_worker : kNoWorker;
    if (target == kNoWorker) {
        target = round_robin_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
    }
    {
        std::lock_guard lock(queues_[target]->m);
        queues_[target]->q.push_back(std::move(task));
    }
    {
        // Increment under sleep_m_ so a worker that just evaluated the
        // sleep predicate cannot miss this task's notification.
        std::lock_guard lock(sleep_m_);
        pending_.fetch_add(1, std::memory_order_release);
    }
    sleep_cv_.notify_one();
}

bool ThreadPool::try_pop(std::size_t self, Task& out) {
    const std::size_t n = queues_.size();
    // Own deque, newest first.
    if (self != kNoWorker) {
        Queue& mine = *queues_[self];
        std::lock_guard lock(mine.m);
        if (!mine.q.empty()) {
            out = std::move(mine.q.back());
            mine.q.pop_back();
            pending_.fetch_sub(1, std::memory_order_acquire);
            return true;
        }
    }
    // Steal oldest-first from the other deques.
    const std::size_t start = (self != kNoWorker)
                                  ? self + 1
                                  : round_robin_.load(std::memory_order_relaxed);
    for (std::size_t k = 0; k < n; ++k) {
        const std::size_t victim = (start + k) % n;
        if (victim == self) continue;
        Queue& q = *queues_[victim];
        std::lock_guard lock(q.m);
        if (!q.q.empty()) {
            out = std::move(q.q.front());
            q.q.pop_front();
            pending_.fetch_sub(1, std::memory_order_acquire);
            if (self != kNoWorker) stolen_.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
    }
    return false;
}

void ThreadPool::execute(Task& task) {
    // inflight_ brackets the user code so queue_depth() + inflight()
    // together account for every admitted-but-unfinished task.
    inflight_.fetch_add(1, std::memory_order_relaxed);
    if (auto* injector = FaultInjector::active(); injector != nullptr) {
        // Injected cancel storm: fire this task's token right before it
        // would run — a deterministic stand-in for a client cancelling
        // at exactly this dispatch index.
        if (injector->trip(FaultInjector::Site::CancelStorm,
                           static_cast<std::uint64_t>(task.ticket))) {
            task.token.cancel(CancelCause::Cancelled);
        }
        // Injected straggler: delay the task before running it
        // (exercises deadline budgets and waiter/helping paths under
        // slow workers). The sleep is sliced so a fired token or an
        // expired deadline ends the stall early — straggler injection
        // must compose with wall-clock budgets, not defeat them.
        if (injector->trip(FaultInjector::Site::SlowTask,
                           static_cast<std::uint64_t>(task.ticket))) {
            const auto until =
                std::chrono::steady_clock::now() +
                std::chrono::microseconds(injector->config().slow_task_us);
            constexpr auto kSlice = std::chrono::microseconds(50);
            for (auto now = std::chrono::steady_clock::now(); now < until;
                 now = std::chrono::steady_clock::now()) {
                if (task.token.poll() != CancelCause::None) break;
                std::this_thread::sleep_for(
                    std::min<std::chrono::steady_clock::duration>(
                        until - now, kSlice));
            }
        }
    }
    std::exception_ptr error;
    if (const CancelCause fired = task.token.poll();
        fired != CancelCause::None) {
        // Skip-on-dequeue: the request this task belongs to is already
        // dead, so don't burn a worker on it — deliver the typed cause
        // through the group's error channel instead. The group/pending
        // bookkeeping below runs unchanged, so queue_depth/inflight
        // drain to zero exactly as for an executed task.
        MetricsRegistry::global().counter("exec.cancel.tasks_skipped").add();
        error = std::make_exception_ptr(CancelledError(fired));
    } else {
        CancelScope scope(task.token);
        try {
            OBS_SPAN("exec.pool.task");
            task.fn();
        } catch (...) {
            error = std::current_exception();
        }
    }
    if (task.group) {
        std::lock_guard lock(task.group->m);
        if (error && task.ticket < task.group->error_ticket) {
            // Move, don't copy: the worker must not keep a second
            // reference, or the *last* exception_ptr release can land
            // on this thread after the waiter already rethrew and read
            // the exception — TSan (rightly unable to see libstdc++'s
            // internal refcount ordering) reports that free as a race.
            task.group->error = std::move(error);
            task.group->error_ticket = task.ticket;
        }
        if (--task.group->pending == 0) task.group->cv.notify_all();
    }
    inflight_.fetch_sub(1, std::memory_order_relaxed);
}

bool ThreadPool::help_one() {
    Task task;
    const std::size_t self = (tl_pool == this) ? tl_worker : kNoWorker;
    if (!try_pop(self, task)) return false;
    execute(task);
    executed_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void ThreadPool::worker_loop(std::size_t self) {
    tl_pool = this;
    tl_worker = self;
    const std::uint32_t tid =
        trace_tid_base_ + static_cast<std::uint32_t>(self);
    obs::Tracer::set_thread_identity(
        tid, "pool" + std::to_string(trace_tid_base_) + ".w" +
                 std::to_string(self));
    for (;;) {
        Task task;
        if (try_pop(self, task)) {
            execute(task);
            executed_.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        std::unique_lock lock(sleep_m_);
        sleep_cv_.wait(lock, [&] {
            return stop_ || pending_.load(std::memory_order_acquire) > 0;
        });
        if (stop_) return;
    }
}

std::size_t ThreadPool::auto_grain(std::size_t n, int workers) {
    const auto w = static_cast<std::size_t>(std::max(1, workers));
    // ~4 chunks per worker: enough slack for work stealing to absorb
    // uneven chunk costs, few enough that scheduling stays negligible.
    const std::size_t target_chunks = 4 * w;
    return std::max<std::size_t>(1, (n + target_chunks - 1) / target_chunks);
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
    if (n == 0) return;
    // Already-cancelled caller: refuse to schedule (or run inline) at
    // all. Throwing here gives loops above a deterministic unwind point
    // before any work is admitted.
    CancelScope::current().check();
    grain = grain == 0 ? auto_grain(n, size()) : grain;
    const std::size_t chunks = (n + grain - 1) / grain;
    if (chunks == 1) {
        body(0, n); // No parallelism to extract; skip the scheduling cost.
        return;
    }
    MetricsRegistry::global().counter("exec.pool.parallel_for").add();
    MetricsRegistry::global()
        .gauge("exec.parallel_for.grain")
        .set(static_cast<double>(grain));
    obs::Span span("exec.parallel_for");
    span.num("chunks", static_cast<double>(chunks));
    span.num("grain", static_cast<double>(grain));
    TaskGroup group(*this);
    for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t begin = c * grain;
        const std::size_t end = std::min(n, begin + grain);
        group.run([&body, begin, end] { body(begin, end); });
    }
    group.wait();
}

ThreadPool& ThreadPool::global() {
    static ThreadPool pool(default_thread_count());
    return pool;
}

int ThreadPool::parse_thread_env(const char* value, int fallback) {
    if (value == nullptr || *value == '\0') return fallback;
    char* end = nullptr;
    const long parsed = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || parsed < 1 || parsed > 4096) return fallback;
    return static_cast<int>(parsed);
}

int ThreadPool::default_thread_count() {
    const int hw = std::max(1u, std::thread::hardware_concurrency());
    return clamp_to_hardware(parse_thread_env(std::getenv("STSENSE_THREADS"), hw));
}

int ThreadPool::clamp_to_hardware(int requested) {
    const int hw =
        static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
    if (requested < 1) return hw;
    return std::min(requested, hw);
}

std::uint64_t ThreadPool::tasks_executed() const {
    return executed_.load(std::memory_order_relaxed);
}

std::uint64_t ThreadPool::tasks_stolen() const {
    return stolen_.load(std::memory_order_relaxed);
}

std::size_t ThreadPool::queue_depth() const {
    return pending_.load(std::memory_order_relaxed);
}

std::size_t ThreadPool::inflight() const {
    return inflight_.load(std::memory_order_relaxed);
}

} // namespace stsense::exec
