#include "exec/result_cache.hpp"

#include "exec/checkpoint.hpp"
#include "exec/fault_injector.hpp"
#include "exec/fingerprint.hpp"
#include "util/csv.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace stsense::exec {

namespace {

/// Row checksum: plain FNV-1a over the row's bytes (everything before
/// the trailing ",c<hex>" field).
std::uint64_t row_checksum(const std::string& row) {
    Fingerprint fp;
    fp.bytes(row.data(), row.size());
    return fp.value();
}

std::string checksum_hex(std::uint64_t v) {
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
    return std::string(buf);
}

} // namespace

std::size_t Series::byte_size() const {
    std::size_t bytes = sizeof(Series);
    for (const auto& n : names) bytes += n.capacity() + sizeof(std::string);
    for (const auto& c : columns) {
        bytes += c.capacity() * sizeof(double) + sizeof(std::vector<double>);
    }
    return bytes;
}

ResultCache::ResultCache(std::size_t byte_budget, MetricsRegistry* metrics,
                         std::string metric_prefix)
    : budget_(byte_budget) {
    if (metrics != nullptr) {
        metric_hits_ = &metrics->counter(metric_prefix + ".hits");
        metric_misses_ = &metrics->counter(metric_prefix + ".misses");
        metric_evictions_ = &metrics->counter(metric_prefix + ".evictions");
        metric_corrupt_ = &metrics->counter(metric_prefix + ".corrupt_rows");
        metric_bytes_ = &metrics->gauge(metric_prefix + ".bytes");
    }
}

std::shared_ptr<const Series> ResultCache::find(std::uint64_t key) {
    std::lock_guard lock(m_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
        ++misses_;
        if (metric_misses_ != nullptr) metric_misses_->add();
        return nullptr;
    }
    ++hits_;
    if (metric_hits_ != nullptr) metric_hits_->add();
    lru_.splice(lru_.begin(), lru_, it->second); // Refresh recency.
    return it->second->value;
}

std::shared_ptr<const Series> ResultCache::insert(std::uint64_t key, Series value) {
    auto stored = std::make_shared<const Series>(std::move(value));
    const std::size_t bytes = stored->byte_size();
    std::lock_guard lock(m_);
    if (const auto it = index_.find(key); it != index_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        return it->second->value; // Keep the first-computed object.
    }
    lru_.push_front(Entry{key, std::move(stored), bytes});
    index_[key] = lru_.begin();
    bytes_ += bytes;
    evict_to_budget();
    if (metric_bytes_ != nullptr) metric_bytes_->set(static_cast<double>(bytes_));
    return lru_.empty() ? nullptr : lru_.front().value;
}

void ResultCache::evict_to_budget() {
    while (bytes_ > budget_ && !lru_.empty()) {
        // Never evict the most recent entry: the value just inserted must
        // survive long enough to be returned even if it alone exceeds the
        // budget.
        if (lru_.size() == 1) break;
        const Entry& victim = lru_.back();
        bytes_ -= victim.bytes;
        index_.erase(victim.key);
        lru_.pop_back();
        ++evictions_;
        if (metric_evictions_ != nullptr) metric_evictions_->add();
    }
}

ResultCache::Stats ResultCache::stats() const {
    std::lock_guard lock(m_);
    Stats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.corrupt_rows = corrupt_rows_.load(std::memory_order_relaxed);
    s.entries = lru_.size();
    s.bytes = bytes_;
    return s;
}

void ResultCache::clear() {
    std::lock_guard lock(m_);
    lru_.clear();
    index_.clear();
    bytes_ = 0;
    if (metric_bytes_ != nullptr) metric_bytes_->set(0.0);
}

// Persistence format: one line per entry,
//   key,ncols,nrows,name0,...,nameK,v(col0,row0),...,v(colK,rowN),c<fnv1a>
// written least-recently-used first so a reload replays into the same
// recency order. The trailing field is the FNV-1a checksum (16 hex
// digits, 'c' prefix) of everything before it; load_csv drops rows that
// fail it, so on-disk corruption degrades to a smaller cache instead of
// poisoned values.
std::size_t ResultCache::save_csv(const std::string& path) const {
    // Compose everything in memory and land it with a tmp-file + atomic
    // rename (shared with exec::Checkpoint): a kill mid-save leaves the
    // previous complete file on disk instead of a truncated cache.
    std::string content;
    std::size_t written = 0;
    {
        std::lock_guard lock(m_);
        auto* injector = FaultInjector::active();
        for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
            const Series& s = *it->value;
            const std::size_t rows = s.columns.empty() ? 0 : s.columns.front().size();
            std::ostringstream row;
            row << it->key << ',' << s.columns.size() << ',' << rows;
            for (const auto& name : s.names) row << ',' << name;
            for (const auto& col : s.columns) {
                for (double v : col) row << ',' << util::format_double(v);
            }
            std::string text = row.str();
            const std::uint64_t sum = row_checksum(text);
            if (injector != nullptr &&
                injector->trip(FaultInjector::Site::CacheRow,
                               static_cast<std::uint64_t>(written))) {
                // Injected disk corruption: flip one payload character after
                // the checksum was computed, so the row fails validation.
                text.back() = text.back() == '0' ? '1' : '0';
            }
            content += text;
            content += ",c";
            content += checksum_hex(sum);
            content += '\n';
            ++written;
        }
    }
    try {
        atomic_write_file(path, content);
    } catch (const std::runtime_error&) {
        throw std::runtime_error("ResultCache::save_csv: cannot write " + path);
    }
    return written;
}

std::size_t ResultCache::load_csv(const std::string& path) {
    std::ifstream in(path);
    if (!in) return 0; // Cold start: no persisted cache yet.
    std::size_t loaded = 0;
    std::string line;
    auto reject = [&] {
        corrupt_rows_.fetch_add(1, std::memory_order_relaxed);
        if (metric_corrupt_ != nullptr) metric_corrupt_->add();
    };
    while (std::getline(in, line)) {
        // Validate the trailing checksum before trusting any field: the
        // last comma-separated field must be "c<16 hex digits>" matching
        // the FNV-1a of everything before it.
        const std::size_t tail = line.rfind(',');
        if (tail == std::string::npos || line.size() - tail != 18 ||
            line[tail + 1] != 'c') {
            reject(); // Truncated row or pre-checksum format.
            continue;
        }
        std::uint64_t stored = 0;
        {
            char* end = nullptr;
            const std::string hex = line.substr(tail + 2);
            stored = std::strtoull(hex.c_str(), &end, 16);
            if (end == nullptr || *end != '\0') {
                reject();
                continue;
            }
        }
        const std::string payload = line.substr(0, tail);
        if (row_checksum(payload) != stored) {
            reject(); // Bit rot / partial write.
            continue;
        }

        std::istringstream row(payload);
        std::string field;
        auto next = [&](std::string& dst) {
            return static_cast<bool>(std::getline(row, dst, ','));
        };
        std::string key_s, ncols_s, nrows_s;
        if (!next(key_s) || !next(ncols_s) || !next(nrows_s)) {
            reject();
            continue;
        }
        Series s;
        try {
            const std::uint64_t key = std::stoull(key_s);
            const std::size_t ncols = std::stoul(ncols_s);
            const std::size_t nrows = std::stoul(nrows_s);
            if (ncols > 64 || nrows > (1u << 24)) {
                reject(); // Sanity bound.
                continue;
            }
            bool ok = true;
            for (std::size_t c = 0; c < ncols && ok; ++c) {
                ok = next(field);
                if (ok) s.names.push_back(field);
            }
            for (std::size_t c = 0; c < ncols && ok; ++c) {
                std::vector<double> col;
                col.reserve(nrows);
                for (std::size_t r = 0; r < nrows && ok; ++r) {
                    ok = next(field);
                    if (ok) col.push_back(std::stod(field));
                }
                s.columns.push_back(std::move(col));
            }
            if (!ok) {
                reject(); // Fewer fields than the header promised.
                continue;
            }
            insert(key, std::move(s));
            ++loaded;
        } catch (const std::exception&) {
            reject(); // Malformed numeric field.
            continue;
        }
    }
    return loaded;
}

ResultCache& ResultCache::global() {
    static ResultCache cache(kDefaultByteBudget, &MetricsRegistry::global());
    return cache;
}

} // namespace stsense::exec
