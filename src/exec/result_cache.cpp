#include "exec/result_cache.hpp"

#include "util/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace stsense::exec {

std::size_t Series::byte_size() const {
    std::size_t bytes = sizeof(Series);
    for (const auto& n : names) bytes += n.capacity() + sizeof(std::string);
    for (const auto& c : columns) {
        bytes += c.capacity() * sizeof(double) + sizeof(std::vector<double>);
    }
    return bytes;
}

ResultCache::ResultCache(std::size_t byte_budget, MetricsRegistry* metrics,
                         std::string metric_prefix)
    : budget_(byte_budget) {
    if (metrics != nullptr) {
        metric_hits_ = &metrics->counter(metric_prefix + ".hits");
        metric_misses_ = &metrics->counter(metric_prefix + ".misses");
        metric_evictions_ = &metrics->counter(metric_prefix + ".evictions");
        metric_bytes_ = &metrics->gauge(metric_prefix + ".bytes");
    }
}

std::shared_ptr<const Series> ResultCache::find(std::uint64_t key) {
    std::lock_guard lock(m_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
        ++misses_;
        if (metric_misses_ != nullptr) metric_misses_->add();
        return nullptr;
    }
    ++hits_;
    if (metric_hits_ != nullptr) metric_hits_->add();
    lru_.splice(lru_.begin(), lru_, it->second); // Refresh recency.
    return it->second->value;
}

std::shared_ptr<const Series> ResultCache::insert(std::uint64_t key, Series value) {
    auto stored = std::make_shared<const Series>(std::move(value));
    const std::size_t bytes = stored->byte_size();
    std::lock_guard lock(m_);
    if (const auto it = index_.find(key); it != index_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        return it->second->value; // Keep the first-computed object.
    }
    lru_.push_front(Entry{key, std::move(stored), bytes});
    index_[key] = lru_.begin();
    bytes_ += bytes;
    evict_to_budget();
    if (metric_bytes_ != nullptr) metric_bytes_->set(static_cast<double>(bytes_));
    return lru_.empty() ? nullptr : lru_.front().value;
}

void ResultCache::evict_to_budget() {
    while (bytes_ > budget_ && !lru_.empty()) {
        // Never evict the most recent entry: the value just inserted must
        // survive long enough to be returned even if it alone exceeds the
        // budget.
        if (lru_.size() == 1) break;
        const Entry& victim = lru_.back();
        bytes_ -= victim.bytes;
        index_.erase(victim.key);
        lru_.pop_back();
        ++evictions_;
        if (metric_evictions_ != nullptr) metric_evictions_->add();
    }
}

ResultCache::Stats ResultCache::stats() const {
    std::lock_guard lock(m_);
    Stats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.entries = lru_.size();
    s.bytes = bytes_;
    return s;
}

void ResultCache::clear() {
    std::lock_guard lock(m_);
    lru_.clear();
    index_.clear();
    bytes_ = 0;
    if (metric_bytes_ != nullptr) metric_bytes_->set(0.0);
}

// Persistence format: one line per entry,
//   key,ncols,nrows,name0,...,nameK,v(col0,row0),...,v(colK,rowN)
// written least-recently-used first so a reload replays into the same
// recency order.
std::size_t ResultCache::save_csv(const std::string& path) const {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("ResultCache::save_csv: cannot open " + path);
    std::lock_guard lock(m_);
    std::size_t written = 0;
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
        const Series& s = *it->value;
        const std::size_t rows = s.columns.empty() ? 0 : s.columns.front().size();
        out << it->key << ',' << s.columns.size() << ',' << rows;
        for (const auto& name : s.names) out << ',' << name;
        for (const auto& col : s.columns) {
            for (double v : col) out << ',' << util::format_double(v);
        }
        out << '\n';
        ++written;
    }
    return written;
}

std::size_t ResultCache::load_csv(const std::string& path) {
    std::ifstream in(path);
    if (!in) return 0; // Cold start: no persisted cache yet.
    std::size_t loaded = 0;
    std::string line;
    while (std::getline(in, line)) {
        std::istringstream row(line);
        std::string field;
        auto next = [&](std::string& dst) {
            return static_cast<bool>(std::getline(row, dst, ','));
        };
        std::string key_s, ncols_s, nrows_s;
        if (!next(key_s) || !next(ncols_s) || !next(nrows_s)) continue;
        Series s;
        try {
            const std::uint64_t key = std::stoull(key_s);
            const std::size_t ncols = std::stoul(ncols_s);
            const std::size_t nrows = std::stoul(nrows_s);
            if (ncols > 64 || nrows > (1u << 24)) continue; // Sanity bound.
            bool ok = true;
            for (std::size_t c = 0; c < ncols && ok; ++c) {
                ok = next(field);
                if (ok) s.names.push_back(field);
            }
            for (std::size_t c = 0; c < ncols && ok; ++c) {
                std::vector<double> col;
                col.reserve(nrows);
                for (std::size_t r = 0; r < nrows && ok; ++r) {
                    ok = next(field);
                    if (ok) col.push_back(std::stod(field));
                }
                s.columns.push_back(std::move(col));
            }
            if (!ok) continue;
            insert(key, std::move(s));
            ++loaded;
        } catch (const std::exception&) {
            continue; // Malformed row; skip.
        }
    }
    return loaded;
}

ResultCache& ResultCache::global() {
    static ResultCache cache(kDefaultByteBudget, &MetricsRegistry::global());
    return cache;
}

} // namespace stsense::exec
