// Content-addressed result cache with an LRU byte budget.
//
// Maps a 64-bit content fingerprint (see exec/fingerprint.hpp, fed with
// *every* input of the computation) to a memoized numeric series. Since
// the key covers all inputs, a hit can never be stale and returns bitwise
// the values the simulation produced — "never recompute an identical
// simulation twice" without any determinism risk.
//
// Values are immutable shared_ptrs: a hit hands back the exact cached
// object with no copy, safe to read from any thread. Hit/miss/eviction
// statistics are kept locally and mirrored into the metrics registry.
// Optional CSV persistence lets long-lived grids (e.g. the paper sweep
// of every enumerated cell mix) survive across process runs.
#pragma once

#include "exec/metrics.hpp"
#include "obs/trace.hpp"

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace stsense::exec {

/// A cached computation result: named, equally long numeric columns
/// (a temperature sweep stores {temps_c, period_s, frequency_hz}).
struct Series {
    std::vector<std::string> names;
    std::vector<std::vector<double>> columns;

    /// Approximate heap footprint, used against the cache byte budget.
    std::size_t byte_size() const;
};

class ResultCache {
public:
    /// Cache statistics snapshot.
    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        /// Persisted rows dropped by load_csv: checksum mismatch,
        /// truncation, or malformed fields.
        std::uint64_t corrupt_rows = 0;
        std::size_t entries = 0;
        std::size_t bytes = 0;
        double hit_rate() const {
            const auto total = hits + misses;
            return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
        }
    };

    /// `byte_budget` bounds the resident value bytes; least-recently-used
    /// entries are evicted past it. `metric_prefix` names the registry
    /// counters ("<prefix>.hits" / ".misses" / ".evictions").
    explicit ResultCache(std::size_t byte_budget = kDefaultByteBudget,
                         MetricsRegistry* metrics = nullptr,
                         std::string metric_prefix = "exec.cache");

    /// Looks the key up; returns the exact cached object (refreshing its
    /// LRU position) or nullptr. Counts a hit or a miss.
    std::shared_ptr<const Series> find(std::uint64_t key);

    /// Stores `value` under `key` and returns the stored object. If the
    /// key is already present the existing object is kept and returned
    /// (first writer wins — both computed identical content). Evicts LRU
    /// entries beyond the byte budget.
    std::shared_ptr<const Series> insert(std::uint64_t key, Series value);

    /// find() or compute-and-insert(). The computation runs *outside*
    /// the cache lock so concurrent distinct keys don't serialize.
    template <typename Fn>
    std::shared_ptr<const Series> get_or_compute(std::uint64_t key, Fn&& fn) {
        // The span covers lookup plus (on a miss) the computation, so
        // its duration shows what the hit actually saved.
        obs::Span span("exec.cache.get");
        if (auto hit = find(key)) {
            span.tag("cache", "hit");
            return hit;
        }
        span.tag("cache", "miss");
        return insert(key, std::forward<Fn>(fn)());
    }

    Stats stats() const;
    std::size_t byte_budget() const { return budget_; }
    void clear();

    /// Persists every resident entry; returns the entry count written.
    /// Every row carries a trailing FNV-1a content checksum so on-disk
    /// corruption is detectable at load time. Throws std::runtime_error
    /// if the file cannot be opened.
    std::size_t save_csv(const std::string& path) const;

    /// Loads entries from a save_csv file; returns the entry count
    /// inserted. Rows whose checksum does not match their content —
    /// bit rot, truncation, a missing checksum field, or malformed
    /// numerics — are silently dropped and counted (Stats::corrupt_rows
    /// and the "<prefix>.corrupt_rows" metric) instead of ingesting
    /// garbage values; existing keys are kept. A missing file is not an
    /// error — returns 0, so cold starts need no check.
    std::size_t load_csv(const std::string& path);

    /// The process-wide cache (default budget, publishing into
    /// MetricsRegistry::global()).
    static ResultCache& global();

    static constexpr std::size_t kDefaultByteBudget = 64u << 20; // 64 MiB

private:
    struct Entry {
        std::uint64_t key = 0;
        std::shared_ptr<const Series> value;
        std::size_t bytes = 0;
    };

    /// Pops LRU entries until within budget. Requires m_ held.
    void evict_to_budget();

    mutable std::mutex m_;
    std::list<Entry> lru_; ///< Front = most recently used.
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
    std::size_t budget_;
    std::size_t bytes_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
    std::atomic<std::uint64_t> corrupt_rows_{0}; ///< load_csv rejects.
    Counter* metric_hits_ = nullptr;
    Counter* metric_misses_ = nullptr;
    Counter* metric_evictions_ = nullptr;
    Counter* metric_corrupt_ = nullptr;
    Gauge* metric_bytes_ = nullptr;
};

} // namespace stsense::exec
