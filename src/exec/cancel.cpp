#include "exec/cancel.hpp"

#include "exec/metrics.hpp"

#include <algorithm>

namespace stsense::exec {

const char* to_string(CancelCause cause) {
    switch (cause) {
        case CancelCause::None: return "none";
        case CancelCause::Cancelled: return "cancelled";
        case CancelCause::DeadlineExceeded: return "deadline-exceeded";
        case CancelCause::Disconnected: return "disconnected";
        case CancelCause::Shutdown: return "shutdown";
    }
    return "unknown";
}

namespace {

/// First cause wins: CAS from live (0) so concurrent cancel() calls and
/// deadline latches agree on one cause forever after.
bool latch(std::atomic<int>& slot, CancelCause cause) {
    int expected = 0;
    return slot.compare_exchange_strong(expected, static_cast<int>(cause),
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire);
}

} // namespace

CancelToken CancelToken::make() {
    return CancelToken(std::make_shared<State>());
}

CancelToken CancelToken::child() const {
    auto state = std::make_shared<State>();
    state->parent = state_; // Null parent of an invalid token = fresh root.
    return CancelToken(std::move(state));
}

CancelToken CancelToken::child_with_deadline(Clock::time_point deadline) const {
    auto state = std::make_shared<State>();
    state->parent = state_;
    state->has_deadline = true;
    state->deadline = deadline;
    // Clamp against inherited deadlines: a child can only tighten.
    Clock::time_point inherited;
    if (this->deadline(inherited)) {
        state->deadline = std::min(state->deadline, inherited);
    }
    return CancelToken(std::move(state));
}

CancelToken CancelToken::child_with_deadline_ms(double ms) const {
    const double clamped = std::max(0.0, ms);
    return child_with_deadline(
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(clamped)));
}

void CancelToken::cancel(CancelCause cause) const {
    if (!state_ || cause == CancelCause::None) return;
    if (latch(state_->cause, cause)) {
        MetricsRegistry::global().counter("exec.cancel.fired").add();
    }
}

CancelCause CancelToken::poll() const {
    if (!state_) return CancelCause::None;
    // Latched already? One acquire load and out — this is the cost of a
    // poll point inside a hot loop once a token is installed.
    if (const int own = state_->cause.load(std::memory_order_acquire); own != 0)
        return static_cast<CancelCause>(own);
    // Deadlines and the parent chain. The chain is short by construction
    // (server -> client -> request -> task), and whatever fires is
    // latched into our own slot so the walk happens once.
    const auto now = Clock::now();
    CancelCause found = CancelCause::None;
    for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
        if (const int c = s->cause.load(std::memory_order_acquire); c != 0) {
            found = static_cast<CancelCause>(c);
            break;
        }
        if (s->has_deadline && now >= s->deadline) {
            found = CancelCause::DeadlineExceeded;
            break;
        }
    }
    if (found != CancelCause::None) {
        if (latch(state_->cause, found)) {
            MetricsRegistry::global().counter("exec.cancel.fired").add();
        }
        // Re-read: a racing cancel() may have latched a different cause;
        // report whatever won so every observer agrees.
        return static_cast<CancelCause>(
            state_->cause.load(std::memory_order_acquire));
    }
    return CancelCause::None;
}

bool CancelToken::deadline(Clock::time_point& out) const {
    bool any = false;
    for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
        if (!s->has_deadline) continue;
        out = any ? std::min(out, s->deadline) : s->deadline;
        any = true;
    }
    return any;
}

bool CancelToken::remaining_ms(double& out) const {
    Clock::time_point d;
    if (!deadline(d)) return false;
    out = std::chrono::duration<double, std::milli>(d - Clock::now()).count();
    return true;
}

// ---------------------------------------------------------------- CancelScope

namespace {
// The ambient slot. Out-of-line accessors only (see header).
thread_local CancelToken tl_ambient;
} // namespace

CancelScope::CancelScope(CancelToken token) {
    if (!token.valid()) return; // Keep the enclosing token visible.
    previous_ = tl_ambient;
    tl_ambient = std::move(token);
    installed_ = true;
}

CancelScope::~CancelScope() {
    if (installed_) tl_ambient = std::move(previous_);
}

const CancelToken& CancelScope::current() { return tl_ambient; }

} // namespace stsense::exec
