// Lightweight runtime metrics: named counters, gauges, and wall-clock
// timers that the execution layer (thread pool, result cache) and the
// benches publish into. Cheap enough to leave enabled everywhere —
// recording is an atomic add — and dumpable as JSON so bench snapshots
// (BENCH_exec.json) can archive a run's runtime behaviour.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace stsense::exec {

/// Monotonic event count (tasks executed, cache hits, ...).
class Counter {
public:
    void add(std::uint64_t delta = 1) { v_.fetch_add(delta, std::memory_order_relaxed); }
    std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
    void reset() { v_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> v_{0};
};

/// Last-written instantaneous value (bytes resident, pool size, ...).
class Gauge {
public:
    void set(double v) { v_.store(v, std::memory_order_relaxed); }
    double value() const { return v_.load(std::memory_order_relaxed); }
    void reset() { v_.store(0.0, std::memory_order_relaxed); }

private:
    std::atomic<double> v_{0.0};
};

/// Accumulated wall-clock time over any number of recorded intervals.
class Timer {
public:
    void record_ns(std::uint64_t ns) {
        ns_.fetch_add(ns, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
    }
    std::uint64_t total_ns() const { return ns_.load(std::memory_order_relaxed); }
    double total_ms() const { return static_cast<double>(total_ns()) * 1e-6; }
    std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    void reset() {
        ns_.store(0, std::memory_order_relaxed);
        count_.store(0, std::memory_order_relaxed);
    }

private:
    std::atomic<std::uint64_t> ns_{0};
    std::atomic<std::uint64_t> count_{0};
};

/// RAII guard: records the guarded scope's wall time into a Timer.
class ScopedTimer {
public:
    explicit ScopedTimer(Timer& timer)
        : timer_(timer), start_(std::chrono::steady_clock::now()) {}
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;
    ~ScopedTimer() {
        const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_);
        timer_.record_ns(static_cast<std::uint64_t>(ns.count()));
    }

private:
    Timer& timer_;
    std::chrono::steady_clock::time_point start_;
};

/// Name -> instrument registry. Instruments are created on first use and
/// live for the registry's lifetime, so returned references stay valid
/// (hot paths can cache them). Thread-safe.
class MetricsRegistry {
public:
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    Timer& timer(const std::string& name);

    /// Serializes every instrument, sorted by name:
    ///   {"counters":{...},"gauges":{...},"timers":{"x":{"total_ms":..,"count":..}}}
    std::string to_json() const;

    /// to_json() with one extra top-level member spliced in:
    ///   {"counters":{...},...,"<key>":<extra_json>}
    /// `extra_json` must already be valid JSON (e.g. obs::spans_json()).
    std::string to_json_with(const std::string& key,
                             const std::string& extra_json) const;

    /// Zeroes all values. Instruments (and references) stay valid.
    void reset();

    /// The process-wide registry the pool and cache publish into.
    static MetricsRegistry& global();

private:
    mutable std::mutex m_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Timer>> timers_;
};

} // namespace stsense::exec
