#include "exec/checkpoint.hpp"

#include "exec/fault_injector.hpp"
#include "exec/fingerprint.hpp"
#include "exec/metrics.hpp"
#include "obs/trace.hpp"
#include "util/csv.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include <unistd.h>

namespace stsense::exec {

namespace {

/// Row checksum: FNV-1a over the row's bytes, everything before the
/// trailing ",c<hex>" field (same discipline as ResultCache rows).
std::uint64_t row_checksum(const std::string& row) {
    Fingerprint fp;
    fp.bytes(row.data(), row.size());
    return fp.value();
}

std::string checksum_hex(std::uint64_t v) {
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
    return std::string(buf);
}

void append_checksummed(std::string& out, const std::string& row) {
    out += row;
    out += ",c";
    out += checksum_hex(row_checksum(row));
    out += '\n';
}

/// Full-range double parse. std::stod throws out_of_range on subnormal
/// underflow (strtod's ERANGE), but util::format_double legitimately
/// emits subnormals — strtod itself returns them exactly.
bool parse_double(const std::string& s, double& out) {
    if (s.empty()) return false;
    char* end = nullptr;
    out = std::strtod(s.c_str(), &end);
    return end != nullptr && *end == '\0';
}

/// Splits "payload,c<hex>" and validates the checksum; returns false on
/// any mismatch (truncation, bit rot, missing field).
bool take_checked_payload(const std::string& line, std::string& payload) {
    const std::size_t tail = line.rfind(',');
    if (tail == std::string::npos || line.size() - tail != 18 ||
        line[tail + 1] != 'c') {
        return false;
    }
    char* end = nullptr;
    const std::string hex = line.substr(tail + 2);
    const std::uint64_t stored = std::strtoull(hex.c_str(), &end, 16);
    if (end == nullptr || *end != '\0') return false;
    payload = line.substr(0, tail);
    return row_checksum(payload) == stored;
}

} // namespace

void atomic_write_file(const std::string& path, const std::string& content) {
    const std::string tmp = path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            throw std::runtime_error("atomic_write_file: cannot open " + tmp);
        }
        out.write(content.data(),
                  static_cast<std::streamsize>(content.size()));
        out.flush();
        if (!out) {
            std::remove(tmp.c_str());
            throw std::runtime_error("atomic_write_file: write failed for " + tmp);
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw std::runtime_error("atomic_write_file: rename to " + path + " failed");
    }
}

Checkpoint::Checkpoint(std::string path, std::uint64_t fingerprint,
                       std::size_t n_points, std::size_t values_per_point)
    : path_(std::move(path)),
      fingerprint_(fingerprint),
      n_points_(n_points),
      values_per_point_(values_per_point),
      done_(n_points, 0),
      payload_(n_points * values_per_point, 0.0) {
    if (path_.empty()) {
        throw std::invalid_argument("Checkpoint: empty path");
    }
    if (n_points_ == 0 || values_per_point_ == 0) {
        throw std::invalid_argument("Checkpoint: n_points and values_per_point "
                                    "must be > 0");
    }
}

std::size_t Checkpoint::load() {
    OBS_SPAN("exec.checkpoint.load");
    std::ifstream in(path_);
    if (!in) return 0; // Cold start: nothing persisted yet.

    auto& metrics = MetricsRegistry::global();
    auto reject = [&] { metrics.counter("exec.checkpoint.corrupt_rows").add(); };

    std::string line;
    std::string payload;
    // Header: "stckpt,1,<fingerprint>,<n_points>,<values_per_point>".
    // Any disagreement means the file belongs to a different computation
    // (or a different format) — ignore it entirely rather than resuming
    // foreign points.
    if (!std::getline(in, line) || !take_checked_payload(line, payload)) {
        reject();
        return 0;
    }
    {
        std::istringstream hdr(payload);
        std::string magic, version, fp_s, n_s, v_s;
        auto next = [&](std::string& dst) {
            return static_cast<bool>(std::getline(hdr, dst, ','));
        };
        if (!next(magic) || !next(version) || !next(fp_s) || !next(n_s) ||
            !next(v_s) || magic != "stckpt" || version != "1") {
            reject();
            return 0;
        }
        try {
            if (std::stoull(fp_s) != fingerprint_ ||
                std::stoull(n_s) != n_points_ ||
                std::stoull(v_s) != values_per_point_) {
                metrics.counter("exec.checkpoint.stale_files").add();
                return 0;
            }
        } catch (const std::exception&) {
            reject();
            return 0;
        }
    }

    std::lock_guard lock(m_);
    std::size_t accepted = 0;
    while (std::getline(in, line)) {
        if (!take_checked_payload(line, payload)) {
            reject(); // Torn tail or bit rot: recompute that point.
            continue;
        }
        std::istringstream row(payload);
        std::string field;
        auto next = [&](std::string& dst) {
            return static_cast<bool>(std::getline(row, dst, ','));
        };
        if (!next(field)) {
            reject();
            continue;
        }
        try {
            const std::size_t index = std::stoul(field);
            if (index >= n_points_ || done_[index] != 0) {
                reject(); // Out of range, or a duplicate row.
                continue;
            }
            std::vector<double> vals;
            vals.reserve(values_per_point_);
            bool ok = true;
            for (std::size_t v = 0; v < values_per_point_ && ok; ++v) {
                double d = 0.0;
                ok = next(field) && parse_double(field, d);
                if (ok) vals.push_back(d);
            }
            if (!ok || next(field)) {
                reject(); // Wrong payload arity.
                continue;
            }
            for (std::size_t v = 0; v < values_per_point_; ++v) {
                payload_[index * values_per_point_ + v] = vals[v];
            }
            done_[index] = 1;
            ++completed_;
            ++accepted;
        } catch (const std::exception&) {
            reject(); // Malformed numeric field.
            continue;
        }
    }
    if (accepted > 0) {
        metrics.counter("exec.checkpoint.resumed_points").add(accepted);
    }
    return accepted;
}

bool Checkpoint::completed(std::size_t index) const {
    std::lock_guard lock(m_);
    return index < n_points_ && done_[index] != 0;
}

std::span<const double> Checkpoint::values(std::size_t index) const {
    std::lock_guard lock(m_);
    if (index >= n_points_ || done_[index] == 0) {
        throw std::out_of_range("Checkpoint::values: point not completed");
    }
    return {payload_.data() + index * values_per_point_, values_per_point_};
}

void Checkpoint::record(std::size_t index, std::span<const double> values) {
    if (index >= n_points_) {
        throw std::out_of_range("Checkpoint::record: index out of range");
    }
    if (values.size() != values_per_point_) {
        throw std::invalid_argument("Checkpoint::record: wrong payload size");
    }
    std::lock_guard lock(m_);
    if (done_[index] != 0) return; // A resumed point re-recorded: no-op.
    for (std::size_t v = 0; v < values_per_point_; ++v) {
        payload_[index * values_per_point_ + v] = values[v];
    }
    done_[index] = 1;
    ++completed_;
    ++since_flush_;
    if (flush_every_ > 0 && since_flush_ >= flush_every_) flush_locked();
}

std::string Checkpoint::compose_locked() const {
    std::string out;
    {
        std::ostringstream hdr;
        hdr << "stckpt,1," << fingerprint_ << ',' << n_points_ << ','
            << values_per_point_;
        append_checksummed(out, hdr.str());
    }
    for (std::size_t i = 0; i < n_points_; ++i) {
        if (done_[i] == 0) continue;
        std::ostringstream row;
        row << i;
        for (std::size_t v = 0; v < values_per_point_; ++v) {
            row << ',' << util::format_double(payload_[i * values_per_point_ + v]);
        }
        append_checksummed(out, row.str());
    }
    return out;
}

void Checkpoint::flush_locked() {
    OBS_SPAN("exec.checkpoint.flush");
    std::string content = compose_locked();
    if (auto* injector = FaultInjector::active();
        injector != nullptr &&
        injector->trip(FaultInjector::Site::CheckpointTruncate, flushes_)) {
        // Injected torn write: shear the content mid-row. The atomic
        // rename still lands it whole, so what load() sees is a valid
        // header plus a checksum-failing tail — the recovery the
        // per-row checksums exist for.
        content.resize(content.size() / 2);
    }
    atomic_write_file(path_, content);
    since_flush_ = 0;
    ++flushes_;
    MetricsRegistry::global().counter("exec.checkpoint.flushes").add();
}

void Checkpoint::flush() {
    std::lock_guard lock(m_);
    flush_locked();
}

std::size_t Checkpoint::completed_count() const {
    std::lock_guard lock(m_);
    return completed_;
}

std::size_t Checkpoint::shard_progress() const {
    std::lock_guard lock(m_);
    std::size_t k = 0;
    while (k < n_points_ && done_[k] != 0) ++k;
    return k;
}

void Checkpoint::remove_file() { std::remove(path_.c_str()); }

} // namespace stsense::exec
