// 64-bit FNV-1a content fingerprinting — the key function of the
// result cache. Callers feed every input that influences a computation
// (technology parameters, ring configuration, engine, options, grid)
// and use the digest as the cache key: identical inputs hash equal, and
// 64 bits make accidental collisions negligible at cache scale.
//
// Doubles are hashed by bit pattern (after normalizing -0.0 to +0.0 so
// numerically equal keys match); this makes the fingerprint exact — no
// epsilon semantics — which is what a bitwise-deterministic result
// store requires.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace stsense::exec {

/// Incremental FNV-1a hasher. Feed order matters (by design: a field's
/// position is part of the content).
class Fingerprint {
public:
    /// Hashes a raw byte range.
    Fingerprint& bytes(const void* data, std::size_t n);

    Fingerprint& add(std::uint64_t v) { return bytes(&v, sizeof v); }
    Fingerprint& add(std::int64_t v) { return add(static_cast<std::uint64_t>(v)); }
    Fingerprint& add(int v) { return add(static_cast<std::int64_t>(v)); }
    Fingerprint& add(bool v) { return add(static_cast<std::int64_t>(v ? 1 : 0)); }

    Fingerprint& add(double v) {
        if (v == 0.0) v = 0.0; // Collapse -0.0 onto +0.0.
        return add(std::bit_cast<std::uint64_t>(v));
    }

    /// Length-prefixed so "ab"+"c" != "a"+"bc".
    Fingerprint& add(std::string_view s) {
        add(static_cast<std::uint64_t>(s.size()));
        return bytes(s.data(), s.size());
    }

    Fingerprint& add(std::span<const double> values) {
        add(static_cast<std::uint64_t>(values.size()));
        for (double v : values) add(v);
        return *this;
    }

    /// The 64-bit digest of everything fed so far.
    std::uint64_t value() const { return h_; }

private:
    std::uint64_t h_ = 0xcbf29ce484222325ULL; // FNV offset basis.
};

} // namespace stsense::exec
