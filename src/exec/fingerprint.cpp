#include "exec/fingerprint.hpp"

namespace stsense::exec {

Fingerprint& Fingerprint::bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h_ ^= p[i];
        h_ *= 0x00000100000001b3ULL; // FNV prime.
    }
    return *this;
}

} // namespace stsense::exec
