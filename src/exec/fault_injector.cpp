#include "exec/fault_injector.hpp"

#include "exec/metrics.hpp"
#include "util/rng.hpp"

#include <cstdlib>

namespace stsense::exec {

std::atomic<FaultInjector*> FaultInjector::active_{nullptr};
thread_local std::uint64_t FaultContext::current_ = 0;

FaultContext::FaultContext(std::uint64_t index) : previous_(current_) {
    current_ = index;
}

FaultContext::~FaultContext() { current_ = previous_; }

std::uint64_t FaultContext::current() { return current_; }

namespace {

const char* site_name(FaultInjector::Site site) {
    switch (site) {
        case FaultInjector::Site::NewtonFail: return "exec.fault.newton_fail";
        case FaultInjector::Site::NanState: return "exec.fault.nan_state";
        case FaultInjector::Site::Point: return "exec.fault.point";
        case FaultInjector::Site::CacheRow: return "exec.fault.cache_row";
        case FaultInjector::Site::SlowTask: return "exec.fault.slow_task";
        case FaultInjector::Site::StuckOscillator: return "exec.fault.stuck_osc";
        case FaultInjector::Site::DriftSite: return "exec.fault.drift_site";
        case FaultInjector::Site::CheckpointTruncate:
            return "exec.fault.ckpt_truncate";
        case FaultInjector::Site::SweepKill: return "exec.fault.sweep_kill";
        case FaultInjector::Site::ActuatorStuck:
            return "exec.fault.actuator_stuck";
        case FaultInjector::Site::RegionKill: return "exec.fault.region_kill";
        case FaultInjector::Site::CancelStorm:
            return "exec.fault.cancel_storm";
        case FaultInjector::Site::ShardKill: return "exec.fault.shard_kill";
    }
    return "exec.fault.unknown";
}

/// Unit index a trip stream addresses, for Config::only_units targeting:
/// point_stream-indexed sites carry unit * 16 + attempt; SweepKill is
/// indexed by the raw point index. -1 = site is not unit-addressable.
std::int64_t stream_unit(FaultInjector::Site site, std::uint64_t index) {
    switch (site) {
        case FaultInjector::Site::Point:
        case FaultInjector::Site::StuckOscillator:
        case FaultInjector::Site::DriftSite:
        case FaultInjector::Site::ActuatorStuck:
        case FaultInjector::Site::RegionKill:
            return static_cast<std::int64_t>(index / 16);
        case FaultInjector::Site::SweepKill:
        case FaultInjector::Site::ShardKill:
            return static_cast<std::int64_t>(index);
        default:
            return -1;
    }
}

} // namespace

FaultInjector::FaultInjector(Config config) : config_(config) {}

double FaultInjector::probability(Site site) const {
    switch (site) {
        case Site::NewtonFail: return config_.p_newton_fail;
        case Site::NanState: return config_.p_nan_state;
        case Site::Point: return config_.p_point;
        case Site::CacheRow: return config_.p_cache_row;
        case Site::SlowTask: return config_.p_slow_task;
        case Site::StuckOscillator: return config_.p_stuck_osc;
        case Site::DriftSite: return config_.p_drift_site;
        case Site::CheckpointTruncate: return config_.p_ckpt_truncate;
        case Site::SweepKill: return config_.p_sweep_kill;
        case Site::ActuatorStuck: return config_.p_actuator_stuck;
        case Site::RegionKill: return config_.p_region_kill;
        case Site::CancelStorm: return config_.p_cancel_storm;
        case Site::ShardKill: return config_.p_shard_kill;
    }
    return 0.0;
}

bool FaultInjector::trip(Site site, std::uint64_t index) const {
    const double p = probability(site);
    if (p <= 0.0) return false;
    if (!config_.only_units.empty()) {
        if (const std::int64_t unit = stream_unit(site, index); unit >= 0) {
            bool targeted = false;
            for (std::uint64_t u : config_.only_units) {
                targeted = targeted || static_cast<std::int64_t>(u) == unit;
            }
            if (!targeted) return false;
        }
    }
    // Stream id = (site, index): a pure function of the decision point,
    // so the verdict is identical at any thread count and replayable
    // from the seed alone.
    const std::uint64_t stream =
        (static_cast<std::uint64_t>(site) << 56) ^ index;
    util::Rng decision = util::Rng(config_.seed).split(stream);
    if (p < 1.0 && decision.uniform01() >= p) return false;
    trips_.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::global().counter(site_name(site)).add();
    return true;
}

std::uint64_t FaultInjector::parse_seed(const char* value,
                                        std::uint64_t fallback) {
    if (value == nullptr || *value == '\0') return fallback;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(value, &end, 10);
    if (end == value || *end != '\0') return fallback;
    return static_cast<std::uint64_t>(parsed);
}

std::uint64_t FaultInjector::seed_from_env(std::uint64_t fallback) {
    return parse_seed(std::getenv("STSENSE_FAULT_SEED"), fallback);
}

} // namespace stsense::exec
