#include "exec/fault_injector.hpp"

#include "exec/metrics.hpp"
#include "util/rng.hpp"

#include <cstdlib>

namespace stsense::exec {

std::atomic<FaultInjector*> FaultInjector::active_{nullptr};
thread_local std::uint64_t FaultContext::current_ = 0;

FaultContext::FaultContext(std::uint64_t index) : previous_(current_) {
    current_ = index;
}

FaultContext::~FaultContext() { current_ = previous_; }

std::uint64_t FaultContext::current() { return current_; }

namespace {

const char* site_name(FaultInjector::Site site) {
    switch (site) {
        case FaultInjector::Site::NewtonFail: return "exec.fault.newton_fail";
        case FaultInjector::Site::NanState: return "exec.fault.nan_state";
        case FaultInjector::Site::Point: return "exec.fault.point";
        case FaultInjector::Site::CacheRow: return "exec.fault.cache_row";
        case FaultInjector::Site::SlowTask: return "exec.fault.slow_task";
    }
    return "exec.fault.unknown";
}

} // namespace

FaultInjector::FaultInjector(Config config) : config_(config) {}

double FaultInjector::probability(Site site) const {
    switch (site) {
        case Site::NewtonFail: return config_.p_newton_fail;
        case Site::NanState: return config_.p_nan_state;
        case Site::Point: return config_.p_point;
        case Site::CacheRow: return config_.p_cache_row;
        case Site::SlowTask: return config_.p_slow_task;
    }
    return 0.0;
}

bool FaultInjector::trip(Site site, std::uint64_t index) const {
    const double p = probability(site);
    if (p <= 0.0) return false;
    // Stream id = (site, index): a pure function of the decision point,
    // so the verdict is identical at any thread count and replayable
    // from the seed alone.
    const std::uint64_t stream =
        (static_cast<std::uint64_t>(site) << 56) ^ index;
    util::Rng decision = util::Rng(config_.seed).split(stream);
    if (p < 1.0 && decision.uniform01() >= p) return false;
    trips_.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::global().counter(site_name(site)).add();
    return true;
}

std::uint64_t FaultInjector::parse_seed(const char* value,
                                        std::uint64_t fallback) {
    if (value == nullptr || *value == '\0') return fallback;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(value, &end, 10);
    if (end == value || *end != '\0') return fallback;
    return static_cast<std::uint64_t>(parsed);
}

std::uint64_t FaultInjector::seed_from_env(std::uint64_t fallback) {
    return parse_seed(std::getenv("STSENSE_FAULT_SEED"), fallback);
}

} // namespace stsense::exec
