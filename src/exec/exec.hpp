// stsense::exec — the parallel execution runtime.
//
// Sits between util and every simulation layer in the dependency order
// (util -> exec -> phys -> ...). Three pieces:
//
//   * ThreadPool / TaskGroup (thread_pool.hpp): fixed-size work-stealing
//     pool with a chunked, deterministic parallel_for. The process-wide
//     pool is ThreadPool::global(), sized by the STSENSE_THREADS
//     environment variable (default: hardware concurrency).
//   * Fingerprint (fingerprint.hpp) + ResultCache (result_cache.hpp):
//     content-addressed memoization of simulation results with an LRU
//     byte budget, hit/miss statistics, and CSV persistence.
//   * MetricsRegistry (metrics.hpp): counters/gauges/scoped wall-clock
//     timers the pool, the cache, and the benches publish into;
//     dumpable as JSON.
//   * CancelToken / CancelScope (cancel.hpp): hierarchical cooperative
//     cancellation + deadline propagation. The ambient token crosses
//     layer boundaries via the pool (submit captures, execute
//     re-installs) and is polled at every natural loop boundary.
//   * FaultInjector (fault_injector.hpp): deterministic, seed-split
//     fault injection (forced solver failures, NaN states, cache
//     corruption, slow tasks) behind every robustness test and bench.
//
// The contract the consumers rely on: running a workload through the
// pool with ANY thread count produces bitwise identical results to the
// serial loop. Chunk boundaries are a pure function of (n, grain),
// results are committed by index, and per-trial randomness is derived
// by seed-splitting (util::Rng::split(stream_id)) — never from
// scheduling order.
#pragma once

#include "exec/cancel.hpp"         // IWYU pragma: export
#include "exec/fault_injector.hpp" // IWYU pragma: export
#include "exec/fingerprint.hpp"   // IWYU pragma: export
#include "exec/metrics.hpp"       // IWYU pragma: export
#include "exec/result_cache.hpp"  // IWYU pragma: export
#include "exec/thread_pool.hpp"   // IWYU pragma: export
