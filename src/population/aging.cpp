#include "population/aging.hpp"

#include <cmath>
#include <stdexcept>

namespace stsense::population {

void validate(const AgingSpec& spec) {
    if (!(spec.vth_drift_v >= 0.0)) {
        throw std::invalid_argument("AgingSpec.vth_drift_v must be >= 0");
    }
    if (!(spec.drive_degradation_rel >= 0.0) ||
        !(spec.drive_degradation_rel < 1.0)) {
        throw std::invalid_argument(
            "AgingSpec.drive_degradation_rel must be in [0, 1)");
    }
    if (!(spec.t0_hours > 0.0)) {
        throw std::invalid_argument("AgingSpec.t0_hours must be > 0");
    }
    if (!(spec.rate_sigma_ln >= 0.0)) {
        throw std::invalid_argument("AgingSpec.rate_sigma_ln must be >= 0");
    }
}

double aging_scale(const AgingSpec& spec, double hours) {
    if (!(hours >= 0.0)) {
        throw std::invalid_argument("aging_scale: hours must be >= 0");
    }
    return std::log10(1.0 + 9.0 * hours / spec.t0_hours);
}

double sample_aging_rate(const AgingSpec& spec, util::Rng& rng) {
    // One draw unconditionally: the substream layout must not depend on
    // whether aging is enabled, or toggling it would shift every
    // downstream per-die draw.
    const double z = rng.normal();
    if (spec.rate_sigma_ln <= 0.0) return 1.0;
    return std::exp(spec.rate_sigma_ln * z);
}

phys::Technology apply_aging(const phys::Technology& tech,
                             const AgingSpec& spec, double hours,
                             double rate) {
    validate(spec);
    if (!(rate > 0.0)) {
        throw std::invalid_argument("apply_aging: rate must be > 0");
    }
    const double scale = aging_scale(spec, hours) * rate;
    phys::Technology out = tech;
    const double dvth = spec.vth_drift_v * scale;
    // Clamp the drive loss: a fast-aging outlier die must degrade, not
    // flip the sign of its current factor.
    const double kp_factor =
        std::max(0.05, 1.0 - spec.drive_degradation_rel * scale);
    out.nmos.vth0 += dvth;
    out.nmos.kp *= kp_factor;
    out.pmos.vth0 += dvth;
    out.pmos.kp *= kp_factor;
    out.name = tech.name + "-aged";
    phys::validate(out);
    return out;
}

} // namespace stsense::population
