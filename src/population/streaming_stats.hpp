// Streaming O(1)-memory statistics for population-scale Monte Carlo.
//
// A 10^6-die variability study must never materialize per-die results:
// the engine folds each die's metrics into constant-size accumulators
// and discards the sample. Two estimators cover the reporting needs:
//
//   * Welford — numerically stable running mean/variance (plus min/max),
//     exact in the sense that it matches a two-pass computation to
//     rounding at any population size;
//   * P² (Jain & Chlamtac, 1985) — five-marker streaming quantile
//     estimation with piecewise-parabolic marker adjustment. Memory is
//     16 doubles per tracked quantile regardless of sample count, and
//     the estimate converges to the exact order statistic (the
//     population bench gates the error against exact two-pass values).
//
// Both estimators serialize their *complete* state to a fixed-length
// double vector and restore it bitwise (the checkpoint layer persists
// doubles with shortest-round-trip formatting), which is what makes a
// killed population run resumable with bitwise-identical final
// statistics: restore state after shard k, continue folding at shard
// k+1, and every subsequent operation replays exactly.
//
// Determinism contract: fold order is part of the result. The engine
// folds dice in ascending die order regardless of shard size or thread
// count, so the final statistics are invariant to both.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace stsense::population {

/// Welford running moments plus min/max. add() is O(1); the counters
/// are doubles so the serialized state is homogeneous (counts stay
/// exact below 2^53 — far beyond any population size here).
class Welford {
public:
    void add(double x);

    std::uint64_t count() const { return static_cast<std::uint64_t>(count_); }
    double mean() const { return count_ > 0.0 ? mean_ : 0.0; }
    /// Population variance (M2 / n); 0 before the first sample.
    double variance() const { return count_ > 0.0 ? m2_ / count_ : 0.0; }
    double stddev() const;
    double min() const { return count_ > 0.0 ? min_ : 0.0; }
    double max() const { return count_ > 0.0 ? max_ : 0.0; }

    /// Serialized state: {count, mean, m2, min, max}.
    static constexpr std::size_t kStateSize = 5;
    void serialize(std::span<double> out) const;
    void restore(std::span<const double> in);

private:
    double count_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// P² single-quantile estimator. Tracks quantile `p` (0 < p < 1) with
/// five markers; before five samples the estimate is the exact
/// interpolated order statistic over the buffered samples.
class P2Quantile {
public:
    explicit P2Quantile(double p = 0.5);

    void add(double x);

    /// Current estimate. NaN before the first sample.
    double value() const;
    double probability() const { return p_; }
    std::uint64_t count() const { return static_cast<std::uint64_t>(n_); }

    /// Serialized state: {n, q[5], pos[5], des[5]} (p is configuration,
    /// not state: restore into an estimator built with the same p).
    static constexpr std::size_t kStateSize = 16;
    void serialize(std::span<double> out) const;
    void restore(std::span<const double> in);

private:
    double p_;
    double n_ = 0.0;     ///< Samples folded so far.
    double q_[5] = {};   ///< Marker heights (sorted samples while n < 5).
    double pos_[5] = {}; ///< Actual marker positions (1-based).
    double des_[5] = {}; ///< Desired marker positions.
};

/// One output metric's full accumulator: moments plus one P² estimator
/// per requested quantile. The quantile list is configuration shared by
/// serialize/restore peers.
class MetricAccumulator {
public:
    /// `quantiles` in (0, 1), e.g. {0.5, 0.9, 0.99}; may be empty.
    explicit MetricAccumulator(std::span<const double> quantiles);

    void add(double x);

    const Welford& moments() const { return moments_; }
    const std::vector<P2Quantile>& quantiles() const { return quantiles_; }

    std::size_t state_size() const {
        return Welford::kStateSize + quantiles_.size() * P2Quantile::kStateSize;
    }
    void serialize(std::span<double> out) const;
    void restore(std::span<const double> in);

private:
    Welford moments_;
    std::vector<P2Quantile> quantiles_;
};

} // namespace stsense::population
