// Lifetime degradation model for the population study.
//
// Cell-based sensors age: NBTI/HCI push threshold voltages up and
// degrade drive current, which stretches the ring period and drifts the
// calibrated reading. The population engine models this with a compact
// log-time law — the standard first-order shape of BTI drift:
//
//     scale(h)  = log10(1 + 9 h / t0)          (= 1 exactly at h = t0)
//     dVth(h)   = vth_drift_v * scale(h) * rate
//     kp(h)     = kp * (1 - drive_degradation_rel * scale(h) * rate)
//
// `rate` is a per-die lognormal multiplier, exp(rate_sigma_ln * z):
// some dice age faster than others. The engine draws z from the die's
// Rng *continuation* (after the variation draws), so enabling aging
// never perturbs the phys::VariationStream bitwise contract.
//
// The paper's recalibration question rides on this model: periodic
// one-point re-trims cancel the accumulated offset drift, and the
// population bench quantifies how much inaccuracy each recalibration
// budget buys back across 10^4-10^6 dice.
#pragma once

#include "phys/technology.hpp"
#include "util/rng.hpp"

namespace stsense::population {

/// Magnitudes of the aging law (1x at t0_hours).
struct AgingSpec {
    double vth_drift_v = 0.03;          ///< |Vth| drift at t0_hours [V].
    double drive_degradation_rel = 0.05;///< Relative kp loss at t0_hours.
    double t0_hours = 1000.0;           ///< Reference stress time [h].
    double rate_sigma_ln = 0.0;         ///< Lognormal sigma of the per-die rate.
};

/// Throws std::invalid_argument naming the offending field.
void validate(const AgingSpec& spec);

/// Dimensionless stress scale: 0 at h = 0, exactly 1 at h = t0_hours,
/// logarithmic beyond. `hours` must be >= 0.
double aging_scale(const AgingSpec& spec, double hours);

/// Per-die aging-rate multiplier exp(rate_sigma_ln * z). Always draws
/// exactly one normal from `rng` (even when sigma is 0, where it
/// returns 1.0) so the substream layout is independent of the spec.
double sample_aging_rate(const AgingSpec& spec, util::Rng& rng);

/// Returns `tech` aged by `hours` of stress at rate multiplier `rate`:
/// both device types gain threshold magnitude and lose drive. Validates
/// the result.
phys::Technology apply_aging(const phys::Technology& tech,
                             const AgingSpec& spec, double hours,
                             double rate = 1.0);

} // namespace stsense::population
