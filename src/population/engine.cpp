#include "population/engine.hpp"

#include "exec/checkpoint.hpp"
#include "exec/fault_injector.hpp"
#include "exec/fingerprint.hpp"
#include "exec/metrics.hpp"
#include "phys/units.hpp"
#include "ring/analytic.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace stsense::population {

const char* to_string(CalibrationPolicy policy) {
    switch (policy) {
        case CalibrationPolicy::Golden: return "golden";
        case CalibrationPolicy::OnePoint: return "one_point";
        case CalibrationPolicy::TwoPoint: return "two_point";
    }
    return "unknown";
}

CalibrationPolicy calibration_policy_from_string(const std::string& name) {
    if (name == "golden") return CalibrationPolicy::Golden;
    if (name == "one_point") return CalibrationPolicy::OnePoint;
    if (name == "two_point") return CalibrationPolicy::TwoPoint;
    throw std::invalid_argument("unknown calibration policy '" + name +
                                "' (golden | one_point | two_point)");
}

const char* to_string(Metric metric) {
    switch (metric) {
        case Metric::FreshMaxAbsErrC: return "fresh_max_abs_err_c";
        case Metric::FreshRmsErrC: return "fresh_rms_err_c";
        case Metric::AgedMaxAbsErrC: return "aged_max_abs_err_c";
        case Metric::AgedDriftC: return "aged_drift_c";
        case Metric::PeriodAtRefNs: return "period_at_ref_ns";
        case Metric::GainCPerCode: return "gain_c_per_code";
    }
    return "unknown";
}

digital::GateConfig default_population_gate() {
    digital::GateConfig g;
    g.scheme = digital::GatingScheme::OscWindow;
    g.osc_cycles = 1u << 17;
    g.ref_cycles = 4096;
    g.ref_freq_hz = 100e6;
    return g;
}

namespace {

/// Code-domain pre-shift of every converter the study builds (matches
/// the smart unit's default barrel shift).
constexpr int kCodeShift = 6;

void check_field(bool ok, const char* message) {
    if (!ok) throw std::invalid_argument(message);
}

template <typename Fn>
void validate_part(const char* field, Fn&& fn) {
    try {
        fn();
    } catch (const std::invalid_argument& e) {
        throw std::invalid_argument(std::string("PopulationConfig.") + field +
                                    ": " + e.what());
    }
}

void add_mosfet(exec::Fingerprint& fp, const phys::MosfetParams& p) {
    fp.add(static_cast<int>(p.type))
        .add(p.vth0)
        .add(p.alpha)
        .add(p.kp)
        .add(p.mobility_exp)
        .add(p.vth_tc)
        .add(p.lambda)
        .add(p.vdsat_coeff)
        .add(p.t0)
        .add(p.smoothing)
        .add(p.cgate_per_w)
        .add(p.cdrain_per_w);
}

void add_technology(exec::Fingerprint& fp, const phys::Technology& tech) {
    fp.add(tech.vdd)
        .add(tech.lmin)
        .add(tech.wmin)
        .add(tech.unit_nmos_width)
        .add(tech.library_ratio)
        .add(tech.wire_cap_per_stage);
    add_mosfet(fp, tech.nmos);
    add_mosfet(fp, tech.pmos);
}

void add_ring(exec::Fingerprint& fp, const ring::RingConfig& config) {
    fp.add(static_cast<std::uint64_t>(config.stages.size()));
    for (const cells::CellSpec& s : config.stages) {
        fp.add(static_cast<int>(s.kind))
            .add(s.drive)
            .add(s.ratio)
            .add(static_cast<int>(s.tie))
            .add(s.vth_shift_v);
    }
}

/// Per-die period source: the analytic model always (it is also the
/// spice fallback), plus the transient engine when requested.
class DiePeriods {
public:
    DiePeriods(const PopulationConfig& cfg, const phys::Technology& tech,
               const ring::RingConfig& ring_cfg)
        : cfg_(&cfg), analytic_(tech, ring_cfg) {
        if (cfg.engine == PeriodEngine::Spice) {
            spice_.emplace(tech, ring_cfg);
        }
    }

    double at_c(double temp_c) const {
        const double temp_k = phys::celsius_to_kelvin(temp_c);
        if (spice_) {
            auto r = spice_->try_simulate(temp_k, cfg_->spice);
            if (r.ok()) return r.value().period;
            // A non-converging die falls back to the analytic period
            // instead of aborting a million-die study; counted so a
            // noisy cross-check is visible in the metrics dump.
            exec::MetricsRegistry::global()
                .counter("population.spice_fallback")
                .add();
        }
        return analytic_.period(temp_k);
    }

private:
    const PopulationConfig* cfg_;
    ring::AnalyticRingModel analytic_;
    std::optional<ring::SpiceRingModel> spice_;
};

/// The streaming state of a run: yield counters plus one
/// MetricAccumulator per output metric. Fold order is ascending die
/// order — the engine's determinism contract.
class Accumulators {
public:
    explicit Accumulators(std::span<const double> quantiles) {
        metrics_.reserve(kMetricCount);
        for (int m = 0; m < kMetricCount; ++m) metrics_.emplace_back(quantiles);
    }

    void fold(const std::array<double, kMetricCount>& v, double yield_limit_c) {
        dice_done_ += 1.0;
        if (v[static_cast<int>(Metric::FreshMaxAbsErrC)] <= yield_limit_c) {
            yield_fresh_ += 1.0;
        }
        if (v[static_cast<int>(Metric::AgedMaxAbsErrC)] <= yield_limit_c) {
            yield_aged_ += 1.0;
        }
        for (int m = 0; m < kMetricCount; ++m) metrics_[m].add(v[m]);
    }

    std::uint64_t dice_done() const {
        return static_cast<std::uint64_t>(dice_done_);
    }
    double yield_fresh_fraction() const {
        return dice_done_ > 0.0 ? yield_fresh_ / dice_done_ : 0.0;
    }
    double yield_aged_fraction() const {
        return dice_done_ > 0.0 ? yield_aged_ / dice_done_ : 0.0;
    }

    std::size_t state_size() const {
        return 3 + static_cast<std::size_t>(kMetricCount) *
                       metrics_.front().state_size();
    }

    void serialize(std::span<double> out) const {
        out[0] = yield_fresh_;
        out[1] = yield_aged_;
        out[2] = dice_done_;
        std::size_t off = 3;
        for (const auto& m : metrics_) {
            m.serialize(out.subspan(off, m.state_size()));
            off += m.state_size();
        }
    }

    void restore(std::span<const double> in) {
        yield_fresh_ = in[0];
        yield_aged_ = in[1];
        dice_done_ = in[2];
        std::size_t off = 3;
        for (auto& m : metrics_) {
            m.restore(in.subspan(off, m.state_size()));
            off += m.state_size();
        }
    }

    std::vector<MetricSummary> summaries(
        std::span<const double> quantile_ps) const {
        std::vector<MetricSummary> out;
        out.reserve(kMetricCount);
        for (int m = 0; m < kMetricCount; ++m) {
            const MetricAccumulator& acc = metrics_[m];
            MetricSummary s;
            s.name = to_string(static_cast<Metric>(m));
            s.count = acc.moments().count();
            s.mean = acc.moments().mean();
            s.stddev = acc.moments().stddev();
            s.min = acc.moments().min();
            s.max = acc.moments().max();
            s.quantiles.reserve(quantile_ps.size());
            for (std::size_t j = 0; j < quantile_ps.size(); ++j) {
                s.quantiles.push_back(
                    {quantile_ps[j], acc.quantiles()[j].value()});
            }
            out.push_back(std::move(s));
        }
        return out;
    }

private:
    double yield_fresh_ = 0.0;
    double yield_aged_ = 0.0;
    double dice_done_ = 0.0;
    std::vector<MetricAccumulator> metrics_;
};

} // namespace

void validate(const PopulationConfig& config) {
    validate_part("tech", [&] { phys::validate(config.tech); });
    validate_part("ring", [&] { ring::validate(config.ring); });
    validate_part("gate", [&] { digital::validate(config.gate); });
    validate_part("aging", [&] { validate(config.aging); });

    check_field(config.variation.vth_sigma >= 0.0,
                "PopulationConfig.variation.vth_sigma must be >= 0");
    check_field(config.variation.kp_rel_sigma >= 0.0,
                "PopulationConfig.variation.kp_rel_sigma must be >= 0");
    check_field(config.variation.vdd_rel_sigma >= 0.0,
                "PopulationConfig.variation.vdd_rel_sigma must be >= 0");
    check_field(config.mismatch.drive_sigma >= 0.0,
                "PopulationConfig.mismatch.drive_sigma must be >= 0");
    check_field(config.mismatch.vth_sigma_v >= 0.0,
                "PopulationConfig.mismatch.vth_sigma_v must be >= 0");

    check_field(std::isfinite(config.horizon_hours) &&
                    config.horizon_hours >= 0.0,
                "PopulationConfig.horizon_hours must be finite and >= 0");
    if (config.recal.policy == RecalPolicy::Periodic) {
        check_field(std::isfinite(config.recal.interval_hours) &&
                        config.recal.interval_hours > 0.0,
                    "PopulationConfig.recal.interval_hours must be > 0 when "
                    "the policy is periodic");
    }
    check_field(std::isfinite(config.recal.temp_c),
                "PopulationConfig.recal.temp_c must be finite");

    check_field(std::isfinite(config.cal_low_c) &&
                    std::isfinite(config.cal_high_c) &&
                    config.cal_low_c < config.cal_high_c,
                "PopulationConfig.cal_low_c must be < cal_high_c (both finite)");
    check_field(std::isfinite(config.cal_one_point_c),
                "PopulationConfig.cal_one_point_c must be finite");

    check_field(!config.test_temps_c.empty(),
                "PopulationConfig.test_temps_c must not be empty");
    for (double t : config.test_temps_c) {
        check_field(std::isfinite(t),
                    "PopulationConfig.test_temps_c must be finite");
    }

    check_field(std::isfinite(config.yield_limit_c) &&
                    config.yield_limit_c > 0.0,
                "PopulationConfig.yield_limit_c must be > 0");
    for (double p : config.quantiles) {
        check_field(std::isfinite(p) && p > 0.0 && p < 1.0,
                    "PopulationConfig.quantiles must be in (0, 1)");
    }

    check_field(config.dice >= 1 && config.dice <= 10'000'000,
                "PopulationConfig.dice must be in [1, 10000000]");
    check_field(config.shard_size >= 1 && config.shard_size <= (1u << 20),
                "PopulationConfig.shard_size must be in [1, 1048576]");
}

std::uint64_t population_fingerprint(const PopulationConfig& config) {
    exec::Fingerprint fp;
    fp.add(std::uint64_t{0x706f7075'6c617431ULL}); // "popula1" format salt.
    add_technology(fp, config.tech);
    add_ring(fp, config.ring);
    fp.add(static_cast<int>(config.corner))
        .add(config.corner_spec.vth_shift)
        .add(config.corner_spec.kp_rel)
        .add(config.variation.vth_sigma)
        .add(config.variation.kp_rel_sigma)
        .add(config.variation.vdd_rel_sigma)
        .add(config.variation.correlated_np)
        .add(config.mismatch.drive_sigma)
        .add(config.mismatch.vth_sigma_v)
        .add(config.aging.vth_drift_v)
        .add(config.aging.drive_degradation_rel)
        .add(config.aging.t0_hours)
        .add(config.aging.rate_sigma_ln)
        .add(config.horizon_hours)
        .add(static_cast<int>(config.recal.policy))
        .add(config.recal.interval_hours)
        .add(config.recal.temp_c)
        .add(static_cast<int>(config.calibration))
        .add(config.cal_low_c)
        .add(config.cal_high_c)
        .add(config.cal_one_point_c)
        .add(std::span<const double>(config.test_temps_c))
        .add(static_cast<int>(config.gate.scheme))
        .add(static_cast<std::uint64_t>(config.gate.ref_cycles))
        .add(static_cast<std::uint64_t>(config.gate.osc_cycles))
        .add(config.gate.ref_freq_hz)
        .add(config.gate.divider_log2)
        .add(config.yield_limit_c)
        .add(std::span<const double>(config.quantiles))
        .add(config.dice)
        .add(static_cast<std::uint64_t>(config.shard_size))
        .add(config.seed)
        .add(static_cast<int>(config.engine));
    if (config.engine == PeriodEngine::Spice) {
        fp.add(config.spice.skip_cycles)
            .add(config.spice.measure_cycles)
            .add(config.spice.steps_per_period)
            .add(config.spice.estimate_margin)
            .add(config.spice.enable_recovery)
            .add(config.spice.early_exit);
    }
    return fp.value();
}

DieEvaluator::DieEvaluator(const PopulationConfig& config)
    : config_(config),
      cornered_(phys::apply_corner(config.tech, config.corner,
                                   config.corner_spec)),
      stream_(cornered_, config.variation, util::Rng(config.seed)) {
    validate(config_);
    // Golden calibration: the datasheet characterization of the nominal
    // (un-cornered, un-varied) device — what a budget-0 flow ships to
    // every die.
    ring::AnalyticRingModel nominal(config_.tech, config_.ring);
    auto code = [&](double temp_c) {
        return static_cast<double>(digital::quantized_code(
            config_.gate, nominal.period(phys::celsius_to_kelvin(temp_c))));
    };
    golden_ = analysis::LinearCalibration::two_point(
        {config_.cal_low_c, code(config_.cal_low_c)},
        {config_.cal_high_c, code(config_.cal_high_c)});
}

std::array<double, kMetricCount> DieEvaluator::evaluate(
    std::uint64_t die) const {
    // Draw order is the per-die substream contract: variation first
    // (the VariationStream bitwise guarantee), then the aging rate
    // (always one normal), then stage mismatch. Toggling mismatch never
    // perturbs the aging draw; toggling aging never perturbs variation.
    util::Rng cont;
    const phys::Technology tech_i = stream_.at(die, cont);
    const double rate = sample_aging_rate(config_.aging, cont);
    ring::RingConfig ring_i = config_.ring;
    if (config_.mismatch.drive_sigma > 0.0 ||
        config_.mismatch.vth_sigma_v > 0.0) {
        ring_i = ring::sample_stage_mismatch(config_.ring, config_.mismatch,
                                             cont);
    }

    const DiePeriods fresh(config_, tech_i, ring_i);
    auto code_at = [&](const DiePeriods& periods, double temp_c) {
        return digital::quantized_code(config_.gate, periods.at_c(temp_c));
    };

    // Calibration under the configured budget, in the raw code domain.
    analysis::LinearCalibration cal;
    switch (config_.calibration) {
        case CalibrationPolicy::Golden:
            cal = golden_;
            break;
        case CalibrationPolicy::OnePoint:
            cal = analysis::LinearCalibration::one_point(
                {config_.cal_one_point_c,
                 static_cast<double>(code_at(fresh, config_.cal_one_point_c))},
                golden_.gain());
            break;
        case CalibrationPolicy::TwoPoint:
            cal = analysis::LinearCalibration::two_point(
                {config_.cal_low_c,
                 static_cast<double>(code_at(fresh, config_.cal_low_c))},
                {config_.cal_high_c,
                 static_cast<double>(code_at(fresh, config_.cal_high_c))});
            break;
    }
    const digital::LinearConverter conv(cal, kCodeShift);

    double fresh_max_abs = 0.0;
    double fresh_sum_sq = 0.0;
    for (double temp_c : config_.test_temps_c) {
        const double err = conv.convert_c(code_at(fresh, temp_c)) - temp_c;
        fresh_max_abs = std::max(fresh_max_abs, std::abs(err));
        fresh_sum_sq += err * err;
    }
    const double fresh_rms =
        std::sqrt(fresh_sum_sq /
                  static_cast<double>(config_.test_temps_c.size()));

    // Lifetime: age the die to the horizon at its own rate, pick the
    // in-field converter per the recalibration policy, re-measure.
    const phys::Technology aged_tech =
        apply_aging(tech_i, config_.aging, config_.horizon_hours, rate);
    const DiePeriods aged(config_, aged_tech, ring_i);

    digital::LinearConverter conv_aged = conv;
    if (config_.recal.policy == RecalPolicy::Periodic &&
        config_.horizon_hours > 0.0) {
        // The last scheduled re-trim before the horizon: a one-point
        // offset trim at the field temperature, on the device as aged
        // at that time, reusing the die's calibrated gain.
        const double t_recal =
            std::floor(config_.horizon_hours / config_.recal.interval_hours) *
            config_.recal.interval_hours;
        const phys::Technology recal_tech =
            apply_aging(tech_i, config_.aging, t_recal, rate);
        const DiePeriods at_recal(config_, recal_tech, ring_i);
        const auto recal_code = code_at(at_recal, config_.recal.temp_c);
        const auto recal_cal = analysis::LinearCalibration::one_point(
            {config_.recal.temp_c, static_cast<double>(recal_code)},
            cal.gain());
        conv_aged = digital::LinearConverter(recal_cal, kCodeShift);
    }

    double aged_max_abs = 0.0;
    for (double temp_c : config_.test_temps_c) {
        const double err = conv_aged.convert_c(code_at(aged, temp_c)) - temp_c;
        aged_max_abs = std::max(aged_max_abs, std::abs(err));
    }
    // The raw drift the recalibration fights: what the *fresh* converter
    // reads on the aged device at the field temperature (signed).
    const double drift =
        conv.convert_c(code_at(aged, config_.recal.temp_c)) -
        config_.recal.temp_c;

    std::array<double, kMetricCount> out{};
    out[static_cast<int>(Metric::FreshMaxAbsErrC)] = fresh_max_abs;
    out[static_cast<int>(Metric::FreshRmsErrC)] = fresh_rms;
    out[static_cast<int>(Metric::AgedMaxAbsErrC)] = aged_max_abs;
    out[static_cast<int>(Metric::AgedDriftC)] = drift;
    out[static_cast<int>(Metric::PeriodAtRefNs)] = fresh.at_c(25.0) * 1e9;
    out[static_cast<int>(Metric::GainCPerCode)] = cal.gain();
    return out;
}

std::array<double, kMetricCount> evaluate_die(const PopulationConfig& config,
                                              std::uint64_t die) {
    return DieEvaluator(config).evaluate(die);
}

PopulationResult run_population(const PopulationConfig& config,
                                const PopulationRuntime& rt) {
    const DieEvaluator eval(config); // Validates.
    const std::uint64_t fp = population_fingerprint(config);
    const std::uint64_t dice = config.dice;
    const std::size_t shard_size = config.shard_size;
    const std::size_t n_shards = static_cast<std::size_t>(
        (dice + shard_size - 1) / shard_size);

    Accumulators acc(config.quantiles);
    const std::size_t state_size = acc.state_size();

    std::optional<exec::Checkpoint> ckpt;
    std::size_t first_shard = 0;
    std::uint64_t resumed_dice = 0;
    if (!rt.checkpoint_path.empty()) {
        ckpt.emplace(rt.checkpoint_path, fp, n_shards, state_size);
        ckpt->set_flush_every(rt.checkpoint_every);
        ckpt->load();
        // Shard s's payload is the accumulator state after folding
        // shards 0..s (sequential dependency), so the resume point is
        // the contiguous completed prefix — never a later hole-backed
        // shard.
        first_shard = ckpt->shard_progress();
        if (first_shard > 0) {
            acc.restore(ckpt->values(first_shard - 1));
            resumed_dice = acc.dice_done();
            exec::MetricsRegistry::global()
                .counter("population.resumed_dice")
                .add(resumed_dice);
        }
    }

    // Ambient cancellation: installing an invalid token is a no-op, so
    // an enclosing request's token stays visible when rt.cancel is
    // unset.
    exec::CancelScope cancel_scope(rt.cancel);
    const exec::CancelToken& token = exec::CancelScope::current();

    auto& pool = rt.pool != nullptr ? *rt.pool : exec::ThreadPool::global();
    std::vector<std::array<double, kMetricCount>> shard_buf(shard_size);

    auto publish = [&](std::size_t shards_done) {
        if (!rt.on_shard) return;
        PopulationProgress progress;
        progress.dice_done = acc.dice_done();
        progress.dice_total = dice;
        progress.shard_index = shards_done;
        progress.shard_count = n_shards;
        progress.yield_fresh = acc.yield_fresh_fraction();
        progress.yield_aged = acc.yield_aged_fraction();
        progress.metrics = acc.summaries(config.quantiles);
        rt.on_shard(progress);
    };

    try {
        for (std::size_t s = first_shard; s < n_shards; ++s) {
            token.check();
            const std::uint64_t begin =
                static_cast<std::uint64_t>(s) * shard_size;
            const std::uint64_t end =
                std::min<std::uint64_t>(dice, begin + shard_size);
            const std::size_t n = static_cast<std::size_t>(end - begin);

            // Evaluate the shard in parallel (independent dice), then
            // fold serially in ascending die order — the fold order is
            // part of the deterministic result.
            auto fill = [&](std::size_t b, std::size_t e) {
                for (std::size_t i = b; i < e; ++i) {
                    shard_buf[i] =
                        eval.evaluate(begin + static_cast<std::uint64_t>(i));
                }
            };
            if (rt.parallel && n > 1) {
                pool.parallel_for(n, 0, fill);
            } else {
                fill(0, n);
            }
            for (std::size_t i = 0; i < n; ++i) {
                acc.fold(shard_buf[i], config.yield_limit_c);
            }

            exec::MetricsRegistry::global().counter("population.dice").add(n);
            exec::MetricsRegistry::global().counter("population.shards").add();

            if (ckpt) {
                std::vector<double> state(state_size);
                acc.serialize(state);
                ckpt->record(s, state);
            }
            // The kill site models process death *after* the shard
            // completed (record done, no explicit flush): resume must
            // recompute any unflushed tail bitwise.
            if (auto* injector = exec::FaultInjector::active();
                injector != nullptr &&
                injector->trip(exec::FaultInjector::Site::ShardKill, s)) {
                throw exec::InjectedKill(s);
            }
            publish(s + 1);
        }
    } catch (const exec::CancelledError&) {
        exec::MetricsRegistry::global().counter("population.cancelled").add();
        if (ckpt) ckpt->flush();
        throw;
    }

    if (ckpt) {
        if (rt.keep_checkpoint) {
            ckpt->flush();
        } else {
            ckpt->remove_file();
        }
    }

    PopulationResult result;
    result.dice = dice;
    result.shards = n_shards;
    result.shard_size = shard_size;
    result.fingerprint = fp;
    result.resumed_dice = resumed_dice;
    result.yield_fresh = acc.yield_fresh_fraction();
    result.yield_aged = acc.yield_aged_fraction();
    result.metrics = acc.summaries(config.quantiles);
    return result;
}

} // namespace stsense::population
