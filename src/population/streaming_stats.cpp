#include "population/streaming_stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace stsense::population {

// ------------------------------------------------------------- Welford

void Welford::add(double x) {
    if (count_ == 0.0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    count_ += 1.0;
    const double delta = x - mean_;
    mean_ += delta / count_;
    m2_ += delta * (x - mean_);
}

double Welford::stddev() const { return std::sqrt(variance()); }

void Welford::serialize(std::span<double> out) const {
    if (out.size() != kStateSize) {
        throw std::invalid_argument("Welford::serialize: wrong span size");
    }
    out[0] = count_;
    out[1] = mean_;
    out[2] = m2_;
    out[3] = min_;
    out[4] = max_;
}

void Welford::restore(std::span<const double> in) {
    if (in.size() != kStateSize) {
        throw std::invalid_argument("Welford::restore: wrong span size");
    }
    count_ = in[0];
    mean_ = in[1];
    m2_ = in[2];
    min_ = in[3];
    max_ = in[4];
}

// ---------------------------------------------------------- P2Quantile

P2Quantile::P2Quantile(double p) : p_(p) {
    if (!(p > 0.0) || !(p < 1.0)) {
        throw std::invalid_argument("P2Quantile: p must be in (0, 1)");
    }
}

void P2Quantile::add(double x) {
    const int n = static_cast<int>(n_);
    if (n < 5) {
        // Warm-up: keep the first five samples sorted in q_. The fifth
        // sample initializes the markers.
        int i = n;
        while (i > 0 && q_[i - 1] > x) {
            q_[i] = q_[i - 1];
            --i;
        }
        q_[i] = x;
        n_ += 1.0;
        if (static_cast<int>(n_) == 5) {
            for (int k = 0; k < 5; ++k) pos_[k] = k + 1.0;
            des_[0] = 1.0;
            des_[1] = 1.0 + 2.0 * p_;
            des_[2] = 1.0 + 4.0 * p_;
            des_[3] = 3.0 + 2.0 * p_;
            des_[4] = 5.0;
        }
        return;
    }

    // Locate the cell; extremes update the end markers in place.
    int k;
    if (x < q_[0]) {
        q_[0] = x;
        k = 0;
    } else if (x >= q_[4]) {
        q_[4] = x;
        k = 3;
    } else {
        k = 0;
        while (k < 3 && x >= q_[k + 1]) ++k;
    }

    for (int i = k + 1; i < 5; ++i) pos_[i] += 1.0;
    const double dn[5] = {0.0, p_ / 2.0, p_, (1.0 + p_) / 2.0, 1.0};
    for (int i = 0; i < 5; ++i) des_[i] += dn[i];
    n_ += 1.0;

    // Adjust the interior markers toward their desired positions with
    // the piecewise-parabolic (P²) formula, falling back to linear
    // interpolation when the parabola would leave the bracket.
    for (int i = 1; i <= 3; ++i) {
        const double d = des_[i] - pos_[i];
        if ((d >= 1.0 && pos_[i + 1] - pos_[i] > 1.0) ||
            (d <= -1.0 && pos_[i - 1] - pos_[i] < -1.0)) {
            const double s = d >= 1.0 ? 1.0 : -1.0;
            const double qp =
                q_[i] + s / (pos_[i + 1] - pos_[i - 1]) *
                            ((pos_[i] - pos_[i - 1] + s) * (q_[i + 1] - q_[i]) /
                                 (pos_[i + 1] - pos_[i]) +
                             (pos_[i + 1] - pos_[i] - s) * (q_[i] - q_[i - 1]) /
                                 (pos_[i] - pos_[i - 1]));
            if (q_[i - 1] < qp && qp < q_[i + 1]) {
                q_[i] = qp;
            } else {
                const int j = i + static_cast<int>(s);
                q_[i] += s * (q_[j] - q_[i]) / (pos_[j] - pos_[i]);
            }
            pos_[i] += s;
        }
    }
}

double P2Quantile::value() const {
    const int n = static_cast<int>(n_);
    if (n == 0) return std::numeric_limits<double>::quiet_NaN();
    if (n >= 5) return q_[2];
    // Exact interpolated order statistic over the warm-up buffer.
    const double rank = p_ * (n - 1);
    const int lo = static_cast<int>(rank);
    const int hi = std::min(lo + 1, n - 1);
    const double frac = rank - lo;
    return q_[lo] + frac * (q_[hi] - q_[lo]);
}

void P2Quantile::serialize(std::span<double> out) const {
    if (out.size() != kStateSize) {
        throw std::invalid_argument("P2Quantile::serialize: wrong span size");
    }
    out[0] = n_;
    for (int i = 0; i < 5; ++i) {
        out[1 + i] = q_[i];
        out[6 + i] = pos_[i];
        out[11 + i] = des_[i];
    }
}

void P2Quantile::restore(std::span<const double> in) {
    if (in.size() != kStateSize) {
        throw std::invalid_argument("P2Quantile::restore: wrong span size");
    }
    n_ = in[0];
    for (int i = 0; i < 5; ++i) {
        q_[i] = in[1 + i];
        pos_[i] = in[6 + i];
        des_[i] = in[11 + i];
    }
}

// ---------------------------------------------------- MetricAccumulator

MetricAccumulator::MetricAccumulator(std::span<const double> quantiles) {
    quantiles_.reserve(quantiles.size());
    for (double p : quantiles) quantiles_.emplace_back(p);
}

void MetricAccumulator::add(double x) {
    moments_.add(x);
    for (auto& q : quantiles_) q.add(x);
}

void MetricAccumulator::serialize(std::span<double> out) const {
    if (out.size() != state_size()) {
        throw std::invalid_argument("MetricAccumulator::serialize: wrong size");
    }
    moments_.serialize(out.subspan(0, Welford::kStateSize));
    std::size_t off = Welford::kStateSize;
    for (const auto& q : quantiles_) {
        q.serialize(out.subspan(off, P2Quantile::kStateSize));
        off += P2Quantile::kStateSize;
    }
}

void MetricAccumulator::restore(std::span<const double> in) {
    if (in.size() != state_size()) {
        throw std::invalid_argument("MetricAccumulator::restore: wrong size");
    }
    moments_.restore(in.subspan(0, Welford::kStateSize));
    std::size_t off = Welford::kStateSize;
    for (auto& q : quantiles_) {
        q.restore(in.subspan(off, P2Quantile::kStateSize));
        off += P2Quantile::kStateSize;
    }
}

} // namespace stsense::population
