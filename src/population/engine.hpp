// Population-scale Monte-Carlo engine: sharded variability & lifetime
// study over 10^4..10^6 virtual dice.
//
// Each die is an independent trial: corner + die-to-die variation
// (phys::VariationStream substream), within-die stage mismatch, a
// per-die aging rate, calibration under a chosen budget, and an aged
// re-evaluation at the lifetime horizon under a recalibration policy.
// The die reduces to a fixed vector of output metrics (kMetricCount
// doubles) which the engine folds into streaming accumulators
// (population::MetricAccumulator) — no per-die result is ever
// materialized, so the memory footprint is O(shard_size), not O(dice).
//
// Determinism contract (the sum of the layers' contracts):
//   * die i's random draws come from base.split(i) continuations — pure
//     in (seed, i), independent of threads and shard boundaries;
//   * dice are folded in ascending die order, shard by shard, so the
//     final statistics are bitwise invariant to thread count AND shard
//     size;
//   * the checkpoint payload of shard s is the complete accumulator
//     state after folding shards 0..s, keyed by the config fingerprint,
//     so a killed run resumes at shard_progress() with bitwise-identical
//     final statistics (gated by bench_population).
#pragma once

#include "analysis/calibration.hpp"
#include "digital/converter.hpp"
#include "digital/period_counter.hpp"
#include "exec/cancel.hpp"
#include "exec/thread_pool.hpp"
#include "phys/corners.hpp"
#include "phys/technology.hpp"
#include "population/aging.hpp"
#include "population/streaming_stats.hpp"
#include "ring/config.hpp"
#include "ring/spice_ring.hpp"

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace stsense::population {

/// Calibration budget per die, in increasing cost order.
enum class CalibrationPolicy : int {
    Golden = 0,   ///< Budget 0: shared two-point calibration from the
                  ///< nominal (un-cornered, un-varied) technology.
    OnePoint = 1, ///< Budget 1: per-die offset trim at one temperature,
                  ///< golden gain.
    TwoPoint = 2, ///< Budget 2: per-die two-point calibration.
};

const char* to_string(CalibrationPolicy policy);
CalibrationPolicy calibration_policy_from_string(const std::string& name);

/// In-field recalibration policy over the lifetime horizon.
enum class RecalPolicy : int {
    Never = 0,    ///< Ship-and-forget: the fresh calibration serves for life.
    Periodic = 1, ///< One-point offset re-trim every interval_hours.
};

/// Period engine per die.
enum class PeriodEngine : int {
    Analytic = 0, ///< Closed-form ring model (the population default).
    Spice = 1,    ///< Transient simulation (expensive; cross-check runs).
};

/// Recalibration schedule.
struct RecalSpec {
    RecalPolicy policy = RecalPolicy::Never;
    double interval_hours = 0.0; ///< Re-trim period (> 0 when Periodic).
    double temp_c = 60.0;        ///< Field temperature of the re-trim.
};

/// Output metrics folded per die, in serialization order.
enum class Metric : int {
    FreshMaxAbsErrC = 0, ///< Max |error| over test_temps_c, fresh device.
    FreshRmsErrC = 1,    ///< RMS error over test_temps_c, fresh device.
    AgedMaxAbsErrC = 2,  ///< Max |error| at the horizon, after recal policy.
    AgedDriftC = 3,      ///< Signed fresh-converter error at recal.temp_c on
                         ///< the aged device — the raw drift recal fights.
    PeriodAtRefNs = 4,   ///< Fresh oscillation period at 25 degC [ns].
    GainCPerCode = 5,    ///< The die's calibrated gain [degC per code].
};
inline constexpr int kMetricCount = 6;

/// Metric name as used in reports ("fresh_max_abs_err_c", ...).
const char* to_string(Metric metric);

/// The default counter gate of the population study (same shape as
/// sensor::default_gate: ~0.06 degC/LSB against a 100 MHz reference).
/// Replicated here so the population layer does not depend on sensor.
digital::GateConfig default_population_gate();

/// The full study description — everything that determines the result
/// (and therefore everything the fingerprint hashes).
struct PopulationConfig {
    phys::Technology tech = phys::cmos350();
    ring::RingConfig ring = ring::RingConfig::uniform(cells::CellKind::Inv, 13);

    phys::Corner corner = phys::Corner::TT;       ///< Shared process corner.
    phys::CornerSpec corner_spec;                 ///< Corner shift magnitudes.
    phys::VariationSpec variation;                ///< Die-to-die variation.
    ring::MismatchSpec mismatch{0.0, 0.0};        ///< Within-die stage mismatch
                                                  ///< (both 0 = disabled).
    AgingSpec aging;                              ///< Lifetime degradation law.
    double horizon_hours = 10000.0;               ///< Lifetime horizon.
    RecalSpec recal;                              ///< In-field recalibration.

    CalibrationPolicy calibration = CalibrationPolicy::TwoPoint;
    double cal_low_c = 0.0;       ///< Lower two-point calibration temp.
    double cal_high_c = 100.0;    ///< Upper two-point calibration temp.
    double cal_one_point_c = 50.0;///< One-point trim temperature.

    /// Temperatures the accuracy metrics are evaluated at.
    std::vector<double> test_temps_c = {-50, -25, 0, 25, 50,
                                        75,  100, 125, 150};

    digital::GateConfig gate = default_population_gate();

    double yield_limit_c = 1.0;   ///< A die yields when max |error| <= this.
    std::vector<double> quantiles = {0.5, 0.9, 0.99}; ///< Tracked per metric.

    std::uint64_t dice = 10000;   ///< Population size.
    std::size_t shard_size = 1024;///< Dice folded per checkpoint unit.
    std::uint64_t seed = 1;       ///< Root of every per-die substream.

    PeriodEngine engine = PeriodEngine::Analytic;
    ring::SpiceRingOptions spice; ///< Used when engine == Spice.
};

/// Throws std::invalid_argument naming the offending field.
void validate(const PopulationConfig& config);

/// Content hash over every field of `config` (plus a format version
/// salt). Shard boundaries are part of the resume state, so shard_size
/// is hashed too: a checkpoint written under different sharding never
/// resumes into this run.
std::uint64_t population_fingerprint(const PopulationConfig& config);

/// One quantile estimate of a metric.
struct QuantileEstimate {
    double p = 0.0;
    double value = 0.0;
};

/// Streaming summary of one output metric.
struct MetricSummary {
    std::string name;
    std::uint64_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::vector<QuantileEstimate> quantiles;
};

/// Live progress snapshot, published after every folded shard.
struct PopulationProgress {
    std::uint64_t dice_done = 0;
    std::uint64_t dice_total = 0;
    std::size_t shard_index = 0; ///< Shards folded so far.
    std::size_t shard_count = 0;
    double yield_fresh = 0.0;    ///< Fraction of folded dice within limit.
    double yield_aged = 0.0;
    std::vector<MetricSummary> metrics; ///< Running summaries, Metric order.
};

using ProgressFn = std::function<void(const PopulationProgress&)>;

/// Final study result. `metrics` is indexed by Metric.
struct PopulationResult {
    std::uint64_t dice = 0;
    std::size_t shards = 0;
    std::size_t shard_size = 0;
    std::uint64_t fingerprint = 0;
    std::uint64_t resumed_dice = 0; ///< Dice restored from the checkpoint.
    double yield_fresh = 0.0;
    double yield_aged = 0.0;
    std::vector<MetricSummary> metrics;
};

/// Execution knobs — mirrors the sweep runtime shape so
/// api::RuntimeOptions projects onto it directly.
struct PopulationRuntime {
    exec::ThreadPool* pool = nullptr; ///< nullptr = the global pool.
    bool parallel = true;
    std::string checkpoint_path;      ///< Empty = no checkpointing.
    std::size_t checkpoint_every = 1; ///< Shards per checkpoint flush.
    bool keep_checkpoint = false;     ///< Keep the file after success.
    exec::CancelToken cancel;         ///< Installed around the run if valid.
    ProgressFn on_shard;              ///< Called after every folded shard.
};

/// Per-die evaluator: the pure function die -> metric vector that both
/// the sharded engine and the exact two-pass cross-check in
/// bench_population execute — sharing the implementation is what makes
/// "streaming vs exact" a meaningful comparison.
class DieEvaluator {
public:
    /// Validates the config; precomputes the cornered technology and
    /// the golden (shared) calibration.
    explicit DieEvaluator(const PopulationConfig& config);

    /// Metrics of die `die`, Metric order. Thread-safe (const, no
    /// shared mutable state).
    std::array<double, kMetricCount> evaluate(std::uint64_t die) const;

    const phys::Technology& cornered() const { return cornered_; }
    const analysis::LinearCalibration& golden() const { return golden_; }

private:
    PopulationConfig config_;
    phys::Technology cornered_;          ///< tech moved to config.corner.
    phys::VariationStream stream_;       ///< Die-to-die variation source.
    analysis::LinearCalibration golden_; ///< Shared two-point calibration.
};

/// Convenience wrapper: DieEvaluator(config).evaluate(die).
std::array<double, kMetricCount> evaluate_die(const PopulationConfig& config,
                                              std::uint64_t die);

/// Runs the sharded study. Shards evaluate in parallel internally but
/// fold sequentially in ascending die order; see the header comment for
/// the determinism and resume contracts. Honors rt.cancel at shard
/// boundaries (flushing the checkpoint before rethrowing
/// exec::CancelledError) and the FaultInjector ShardKill site (for
/// kill/resume testing).
PopulationResult run_population(const PopulationConfig& config,
                                const PopulationRuntime& rt = {});

} // namespace stsense::population
