// Transistor-level ring-oscillator simulation (the paper's Fig. 1).
//
// Builds the full MOSFET netlist of a RingConfig, kick-starts it with an
// alternating initial condition, runs the transient engine, and extracts
// period/frequency/duty-cycle from the settled waveform.
#pragma once

#include "phys/technology.hpp"
#include "ring/config.hpp"
#include "spice/netlist.hpp"
#include "spice/sim_error.hpp"
#include "spice/simulator.hpp"
#include "spice/waveform.hpp"

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace stsense::ring {

/// Simulation knobs. The defaults target the accuracy/runtime balance
/// used by the benches; tests tighten or loosen them deliberately.
struct SpiceRingOptions {
    int skip_cycles = 3;       ///< Startup cycles excluded from measurement.
    int measure_cycles = 8;    ///< Cycles used to average the period.
    int steps_per_period = 300;///< Time resolution (dt = estimate / this).
    double estimate_margin = 1.6; ///< Extra sim time vs the analytic estimate.
    bool record_waveform = true;  ///< Keep the probe trace in the result.
    /// Solver fault tolerance (forwarded into spice::SimOptions): the
    /// recovery ladder engages only after a plain solve fails, and the
    /// budgets (0 = unlimited) turn pathological points into
    /// StepLimit/DeadlineExceeded errors instead of hangs.
    bool enable_recovery = true;
    double max_wall_ms = 0.0;
    long max_total_newton_iters = 0;
    /// Fast-transient-kernel knobs, forwarded into
    /// spice::SimOptions::kernel (defaults off = seed-identical engine).
    spice::TransientOptions kernel;
    /// Stop the transient once skip_cycles + measure_cycles + 2 rising
    /// crossings of Vdd/2 are banked on the probe node, instead of
    /// integrating out the full estimate_margin * t_stop window. The
    /// truncated trace still contains every cycle the measurement uses.
    bool early_exit = false;

    /// The tuned fast preset the benches use: fast kernel + early exit.
    static SpiceRingOptions fast() {
        SpiceRingOptions o;
        o.kernel = spice::TransientOptions::fast();
        o.early_exit = true;
        return o;
    }
};

/// Result of one transistor-level ring run.
struct RingSimResult {
    double period = 0.0;        ///< Mean settled period [s].
    double period_stddev = 0.0; ///< Cycle-to-cycle spread [s].
    double frequency = 0.0;     ///< 1 / period [Hz].
    double duty_cycle = 0.0;    ///< High fraction at Vdd/2 (0 if unmeasured).
    int cycles_measured = 0;
    double avg_supply_power_w = 0.0; ///< Vdd-source power averaged over the run
                                     ///< (supply metering; cross-checks the
                                     ///< analytic self-heating power model).
    /// Deepest solver recovery-ladder rung the transient needed (None on
    /// the fault-free fast path) and how many steps were rescued.
    spice::RecoveryRung recovery_rung = spice::RecoveryRung::None;
    long rescued_steps = 0;
    bool early_exit = false;    ///< The settled-period early exit fired.
    double sim_time_s = 0.0;    ///< Transient time actually integrated [s].
    spice::Trace waveform;      ///< Probe-node trace (empty if not recorded).
};

class SpiceRingModel {
public:
    /// Validates both arguments; copies them in.
    SpiceRingModel(const phys::Technology& tech, RingConfig config);

    /// Simulates at junction temperature `temp_k`. Solver failures
    /// (after the recovery ladder), a missing probe trace, or an
    /// unmeasurable waveform come back as a structured SimError instead
    /// of an exception — the sweep FaultPolicy machinery consumes this.
    spice::Result<RingSimResult> try_simulate(
        double temp_k, const SpiceRingOptions& opt = {}) const;

    /// Throwing wrapper around try_simulate (spice::SimException),
    /// preserved for existing call sites.
    RingSimResult simulate(double temp_k, const SpiceRingOptions& opt = {}) const;

    /// Simulates every `temps_k` point over one shared batched evaluator,
    /// lock-stepping their Newton iterations (spice::run_lockstep): the
    /// netlist is built once and each point's voltages live in one SoA
    /// block, so the device-evaluation loop streams K points per sweep of
    /// the population. Results are bitwise identical to calling
    /// try_simulate per point, in order. `fault_ctx`, when non-empty
    /// (must match temps_k's length), gives the per-point
    /// exec::FaultContext ids to install around each point's injected-
    /// sabotage draws — pass the same ids the solo sweep path would.
    /// Adaptive-stepping kernels have no common phase; those fall back to
    /// a per-point solo loop.
    std::vector<spice::Result<RingSimResult>> try_simulate_batch(
        std::span<const double> temps_k, const SpiceRingOptions& opt = {},
        std::span<const std::uint64_t> fault_ctx = {}) const;

    /// Emits the full transistor netlist into `ckt` and returns the ring
    /// node ids (stage i's input is node i). When `enable` is given,
    /// stage 0 must be a NAND-family cell with Supply tie: its first
    /// side input becomes an "en" node driven by that source — the
    /// standard-cell implementation of the paper's oscillator disable.
    /// Exposed for custom experiments; simulate() uses it internally.
    std::vector<spice::NodeId> build(
        spice::Circuit& ckt,
        const std::optional<spice::Source>& enable = std::nullopt) const;

    const RingConfig& config() const { return config_; }

private:
    /// The transient spec try_simulate has always built (dt/t_stop paced
    /// off the analytic estimate, alternating kick-start ICs, stage-0
    /// probe, optional settled-cycle early exit). Shared between the solo
    /// and lock-step paths so they stay spec-identical by construction.
    spice::TransientSpec make_tspec(double est, const SpiceRingOptions& opt,
                                    const std::vector<spice::NodeId>& nodes) const;

    /// Measurement + bookkeeping on one finished transient (period, duty,
    /// supply power, recovery telemetry, early-exit metric) — the tail of
    /// try_simulate, shared with the lock-step path.
    spice::Result<RingSimResult> extract_result(
        const spice::Circuit& ckt, const std::vector<spice::NodeId>& nodes,
        double est, const spice::TransientSpec& tspec,
        const SpiceRingOptions& opt, const spice::TransientResult& res) const;

    phys::Technology tech_;
    RingConfig config_;
};

} // namespace stsense::ring
