// Closed-form ring-oscillator period model.
//
//     T_osc(T) = sum over stages of (t_pHL + t_pLH)
//
// with each stage's load given by its own output parasitics plus the
// next stage's input capacitance (plus any per-node wire load). This is
// the engine behind the Fig. 2/3 sweeps; the SPICE engine cross-checks it.
#pragma once

#include "cells/delay_model.hpp"
#include "ring/config.hpp"

#include <span>
#include <vector>

namespace stsense::ring {

class AnalyticRingModel {
public:
    /// Validates both arguments; copies them in.
    AnalyticRingModel(const phys::Technology& tech, RingConfig config);

    /// Oscillation period at junction temperature `temp_k` [s].
    double period(double temp_k) const;

    /// Oscillation frequency at `temp_k` [Hz].
    double frequency(double temp_k) const;

    /// Period at each temperature of the grid [s].
    std::vector<double> periods(std::span<const double> temps_k) const;

    /// External load seen by stage i (next stage input + wire) [F].
    double stage_load(std::size_t i) const;

    /// Temperature sensitivity d(period)/dT around temp_k [s/K],
    /// central difference.
    double sensitivity(double temp_k, double dt_k = 1.0) const;

    const RingConfig& config() const { return config_; }
    const cells::DelayModel& delay_model() const { return model_; }

private:
    cells::DelayModel model_;
    RingConfig config_;
    std::vector<double> loads_; ///< Precomputed external load per stage.
};

} // namespace stsense::ring
