#include "ring/spice_ring.hpp"

#include "cells/cell_netlist.hpp"
#include "exec/fault_injector.hpp"
#include "exec/metrics.hpp"
#include "ring/analytic.hpp"
#include "spice/lockstep.hpp"
#include "spice/simulator.hpp"

#include <cmath>
#include <cstddef>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace stsense::ring {

SpiceRingModel::SpiceRingModel(const phys::Technology& tech, RingConfig config)
    : tech_(tech), config_(std::move(config)) {
    phys::validate(tech_);
    validate(config_);
}

std::vector<spice::NodeId> SpiceRingModel::build(
    spice::Circuit& ckt, const std::optional<spice::Source>& enable) const {
    const std::size_t n = config_.stages.size();

    const spice::NodeId vdd = ckt.add_driven_node("vdd", spice::Source::dc(tech_.vdd));
    std::vector<spice::NodeId> nodes;
    nodes.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        nodes.push_back(ckt.add_node("n" + std::to_string(i)));
    }

    std::optional<spice::NodeId> en;
    if (enable) {
        const auto kind0 = config_.stages[0].kind;
        if (kind0 != cells::CellKind::Nand2 && kind0 != cells::CellKind::Nand3) {
            throw std::invalid_argument(
                "SpiceRingModel: enable gating needs a NAND stage 0");
        }
        if (config_.stages[0].tie != cells::SideInputTie::Supply) {
            throw std::invalid_argument(
                "SpiceRingModel: enable gating needs Supply tie on stage 0");
        }
        en = ckt.add_driven_node("en", *enable);
    }

    for (std::size_t i = 0; i < n; ++i) {
        if (i == 0 && en) {
            // Side inputs: EN first, remaining ones tied high.
            std::vector<spice::NodeId> sides(
                static_cast<std::size_t>(cells::input_count(config_.stages[0].kind)) - 1,
                vdd);
            sides[0] = *en;
            emit_cell(ckt, tech_, config_.stages[i], vdd, nodes[i],
                      nodes[(i + 1) % n], "s" + std::to_string(i), sides);
        } else {
            emit_cell(ckt, tech_, config_.stages[i], vdd, nodes[i],
                      nodes[(i + 1) % n], "s" + std::to_string(i));
        }
        if (tech_.wire_cap_per_stage > 0.0) {
            ckt.add_capacitor(nodes[(i + 1) % n], ckt.ground(),
                              tech_.wire_cap_per_stage);
        }
    }
    return nodes;
}

namespace {

spice::SimOptions make_sim_options(double temp_k, const SpiceRingOptions& opt) {
    spice::SimOptions sim_opt;
    sim_opt.temp_k = temp_k;
    sim_opt.enable_recovery = opt.enable_recovery;
    sim_opt.max_wall_ms = opt.max_wall_ms;
    sim_opt.max_total_newton_iters = opt.max_total_newton_iters;
    sim_opt.kernel = opt.kernel;
    return sim_opt;
}

} // namespace

spice::TransientSpec SpiceRingModel::make_tspec(
    double est, const SpiceRingOptions& opt,
    const std::vector<spice::NodeId>& nodes) const {
    const std::size_t n = config_.stages.size();

    spice::TransientSpec tspec;
    tspec.dt = est / opt.steps_per_period;
    tspec.t_stop = est * opt.estimate_margin *
                   static_cast<double>(opt.skip_cycles + opt.measure_cycles + 2);
    tspec.start_from_dc = false;
    // Alternating kick-start: with an odd stage count the pattern has one
    // frustrated edge, which seeds the travelling transition.
    for (std::size_t i = 0; i < n; ++i) {
        tspec.initial_conditions.emplace_back(nodes[i],
                                              i % 2 == 0 ? 0.0 : tech_.vdd);
    }
    tspec.probes = {nodes[0]};
    tspec.measure_power = true;

    if (opt.early_exit) {
        // Stop once enough settled cycles are banked: measure_period
        // needs skip + measure + 1 rising crossings of Vdd/2; one more
        // guarantees the final cycle is fully recorded. The kick-start
        // holds the probe node at 0, so the first crossing is genuine.
        const int needed = opt.skip_cycles + opt.measure_cycles + 2;
        const double mid = 0.5 * tech_.vdd;
        tspec.stop_when = [mid, needed, idx = nodes[0].index, crossings = 0,
                           prev = 0.0](double,
                                       const std::vector<double>& v) mutable {
            const double cur = v[idx];
            if (prev < mid && cur >= mid) ++crossings;
            prev = cur;
            return crossings >= needed;
        };
    }
    return tspec;
}

spice::Result<RingSimResult> SpiceRingModel::extract_result(
    const spice::Circuit& ckt, const std::vector<spice::NodeId>& nodes,
    double est, const spice::TransientSpec& tspec, const SpiceRingOptions& opt,
    const spice::TransientResult& res) const {
    // Non-throwing probe lookup: a malformed netlist/probe wiring shows
    // up as a structured error, not an uncaught std::invalid_argument.
    const std::string probe_name = ckt.node_name(nodes[0]);
    const spice::Trace* trace = res.find_trace(probe_name);
    if (trace == nullptr) {
        spice::SimError e;
        e.kind = spice::SimErrorKind::MissingSignal;
        e.message = "SpiceRingModel: probe trace '" + probe_name +
                    "' missing for " + describe(config_);
        return e;
    }
    const double mid = 0.5 * tech_.vdd;

    const auto meas = spice::measure_period(*trace, mid, opt.skip_cycles);
    if (!meas || meas->cycles < 1 || meas->period <= 0.0) {
        spice::SimError e;
        e.kind = spice::SimErrorKind::NonConvergence;
        e.message = "SpiceRingModel: no oscillation for " + describe(config_);
        return e;
    }

    RingSimResult out;
    out.period = meas->period;
    out.period_stddev = meas->period_stddev;
    out.frequency = 1.0 / meas->period;
    out.cycles_measured = meas->cycles;
    if (auto duty = spice::measure_duty_cycle(*trace, mid, opt.skip_cycles)) {
        out.duty_cycle = *duty;
    }
    // Power averages over the time actually integrated. The early-exit
    // branch uses t_end; the full run keeps the historical t_stop
    // denominator bit for bit.
    out.avg_supply_power_w = res.average_source_power_w(
        ckt.node_by_name("vdd"), res.early_exit ? res.t_end : tspec.t_stop);
    out.recovery_rung = res.deepest_rung;
    out.rescued_steps = res.rescued_steps;
    out.early_exit = res.early_exit;
    out.sim_time_s = res.early_exit ? res.t_end : tspec.t_stop;
    if (res.early_exit && est > 0.0) {
        // Account the simulated cycles the exit saved.
        const double saved = (tspec.t_stop - res.t_end) / est;
        if (saved > 0.0) {
            exec::MetricsRegistry::global()
                .counter("ring.transient.early_exit_cycles")
                .add(static_cast<std::uint64_t>(std::llround(saved)));
        }
    }
    if (opt.record_waveform) out.waveform = *trace;
    return out;
}

spice::Result<RingSimResult> SpiceRingModel::try_simulate(
    double temp_k, const SpiceRingOptions& opt) const {
    if (opt.skip_cycles < 0 || opt.measure_cycles < 1 || opt.steps_per_period < 20) {
        throw std::invalid_argument("SpiceRingOptions: bad values");
    }

    spice::Circuit ckt;
    const std::vector<spice::NodeId> nodes = build(ckt);

    // Pace the run off the analytic estimate.
    const AnalyticRingModel analytic(tech_, config_);
    const double est = analytic.period(temp_k);

    spice::Simulator sim(ckt, make_sim_options(temp_k, opt));
    const spice::TransientSpec tspec = make_tspec(est, opt, nodes);

    auto sim_result = sim.try_transient(tspec);
    if (!sim_result.ok()) return sim_result.error();
    return extract_result(ckt, nodes, est, tspec, opt, sim_result.value());
}

std::vector<spice::Result<RingSimResult>> SpiceRingModel::try_simulate_batch(
    std::span<const double> temps_k, const SpiceRingOptions& opt,
    std::span<const std::uint64_t> fault_ctx) const {
    if (opt.skip_cycles < 0 || opt.measure_cycles < 1 || opt.steps_per_period < 20) {
        throw std::invalid_argument("SpiceRingOptions: bad values");
    }
    std::vector<spice::Result<RingSimResult>> out;
    if (temps_k.empty()) return out;
    out.reserve(temps_k.size());

    if (opt.kernel.adaptive) {
        // Adaptive points reject/grow steps independently — no common
        // phase to lock. Solo loop keeps the contract.
        for (std::size_t i = 0; i < temps_k.size(); ++i) {
            std::optional<exec::FaultContext> guard;
            if (!fault_ctx.empty()) guard.emplace(fault_ctx[i]);
            out.push_back(try_simulate(temps_k[i], opt));
        }
        return out;
    }

    // One netlist, shared by every point: the circuit topology is
    // temperature-independent (temperature enters through SimOptions).
    spice::Circuit ckt;
    const std::vector<spice::NodeId> nodes = build(ckt);
    const AnalyticRingModel analytic(tech_, config_);

    std::vector<double> ests;
    std::vector<spice::SimOptions> sim_opts;
    std::vector<spice::TransientSpec> specs;
    ests.reserve(temps_k.size());
    sim_opts.reserve(temps_k.size());
    specs.reserve(temps_k.size());
    for (const double temp_k : temps_k) {
        const double est = analytic.period(temp_k);
        ests.push_back(est);
        sim_opts.push_back(make_sim_options(temp_k, opt));
        specs.push_back(make_tspec(est, opt, nodes));
    }

    auto raw = spice::run_lockstep(ckt, sim_opts, specs, fault_ctx);
    for (std::size_t i = 0; i < raw.size(); ++i) {
        if (!raw[i].ok()) {
            out.push_back(raw[i].error());
            continue;
        }
        out.push_back(
            extract_result(ckt, nodes, ests[i], specs[i], opt, raw[i].value()));
    }
    return out;
}

RingSimResult SpiceRingModel::simulate(double temp_k,
                                       const SpiceRingOptions& opt) const {
    auto r = try_simulate(temp_k, opt);
    if (!r.ok()) throw spice::SimException(r.error());
    return std::move(r.value());
}

} // namespace stsense::ring
