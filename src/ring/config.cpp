#include "ring/config.hpp"

#include "util/sequence.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace stsense::ring {

RingConfig RingConfig::uniform(cells::CellKind kind, int n, double ratio,
                               double drive) {
    if (n < 1) throw std::invalid_argument("RingConfig::uniform: n must be >= 1");
    RingConfig c;
    cells::CellSpec spec;
    spec.kind = kind;
    spec.ratio = ratio;
    spec.drive = drive;
    c.stages.assign(static_cast<std::size_t>(n), spec);
    return c;
}

RingConfig RingConfig::mix(
    std::initializer_list<std::pair<cells::CellKind, int>> groups, double ratio,
    double drive) {
    std::vector<std::pair<cells::CellKind, int>> remaining(groups);
    for (const auto& [kind, count] : remaining) {
        (void)kind;
        if (count < 0) throw std::invalid_argument("RingConfig::mix: negative count");
    }
    RingConfig c;
    // Round-robin draw from the groups until all are exhausted.
    bool any = true;
    while (any) {
        any = false;
        for (auto& [kind, count] : remaining) {
            if (count <= 0) continue;
            cells::CellSpec spec;
            spec.kind = kind;
            spec.ratio = ratio;
            spec.drive = drive;
            c.stages.push_back(spec);
            --count;
            any = true;
        }
    }
    return c;
}

std::string describe(const RingConfig& config) {
    // Count by kind, preserving first-appearance order.
    std::vector<std::pair<cells::CellKind, int>> counts;
    for (const auto& s : config.stages) {
        bool found = false;
        for (auto& [kind, n] : counts) {
            if (kind == s.kind) {
                ++n;
                found = true;
                break;
            }
        }
        if (!found) counts.emplace_back(s.kind, 1);
    }
    std::string out;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (i) out += " + ";
        out += std::to_string(counts[i].second) + "x" + cells::to_string(counts[i].first);
    }
    if (!config.stages.empty()) {
        const double r = config.stages.front().ratio;
        char buf[32];
        if (r > 0.0) {
            std::snprintf(buf, sizeof buf, " (r=%.2f)", r);
        } else {
            std::snprintf(buf, sizeof buf, " (r=lib)");
        }
        out += buf;
    }
    return out;
}

void validate(const RingConfig& config) {
    if (config.stages.size() < 3) {
        throw std::invalid_argument("RingConfig: need >= 3 stages to oscillate");
    }
    if (config.stages.size() % 2 == 0) {
        throw std::invalid_argument(
            "RingConfig: stage count must be odd (all stages invert)");
    }
    for (const auto& s : config.stages) cells::validate(s);
}

RingConfig sample_stage_mismatch(const RingConfig& config,
                                 const MismatchSpec& spec, util::Rng& rng) {
    if (spec.drive_sigma < 0.0 || spec.vth_sigma_v < 0.0) {
        throw std::invalid_argument("sample_stage_mismatch: negative sigma");
    }
    RingConfig out = config;
    for (auto& stage : out.stages) {
        const double factor = std::max(0.2, rng.normal(1.0, spec.drive_sigma));
        stage.drive *= factor;
        stage.vth_shift_v = std::clamp(
            stage.vth_shift_v + rng.normal(0.0, spec.vth_sigma_v), -0.2, 0.2);
    }
    return out;
}

std::vector<double> paper_temperature_grid_c() {
    return util::arange(kPaperTempMinC, kPaperTempMaxC, 12.5);
}

} // namespace stsense::ring
