#include "ring/analytic.hpp"

#include <stdexcept>

namespace stsense::ring {

AnalyticRingModel::AnalyticRingModel(const phys::Technology& tech,
                                     RingConfig config)
    : model_(tech), config_(std::move(config)) {
    validate(config_);
    const std::size_t n = config_.stages.size();
    loads_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto& next = config_.stages[(i + 1) % n];
        loads_[i] = model_.input_capacitance(next) + tech.wire_cap_per_stage;
    }
}

double AnalyticRingModel::period(double temp_k) const {
    double sum = 0.0;
    for (std::size_t i = 0; i < config_.stages.size(); ++i) {
        sum += model_.delays(config_.stages[i], loads_[i], temp_k).pair_delay();
    }
    return sum;
}

double AnalyticRingModel::frequency(double temp_k) const {
    const double p = period(temp_k);
    if (p <= 0.0) throw std::logic_error("AnalyticRingModel: non-positive period");
    return 1.0 / p;
}

std::vector<double> AnalyticRingModel::periods(
    std::span<const double> temps_k) const {
    std::vector<double> out;
    out.reserve(temps_k.size());
    for (double t : temps_k) out.push_back(period(t));
    return out;
}

double AnalyticRingModel::stage_load(std::size_t i) const {
    if (i >= loads_.size()) throw std::out_of_range("stage_load: bad index");
    return loads_[i];
}

double AnalyticRingModel::sensitivity(double temp_k, double dt_k) const {
    if (dt_k <= 0.0) throw std::invalid_argument("sensitivity: dt_k must be > 0");
    return (period(temp_k + dt_k) - period(temp_k - dt_k)) / (2.0 * dt_k);
}

} // namespace stsense::ring
