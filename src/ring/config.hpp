// Ring-oscillator configuration: an ordered list of inverting standard
// cells closed into a loop. This is the design vector the paper
// optimizes — Fig. 2 varies the stages' Wp/Wn ratio, Fig. 3 their kind.
#pragma once

#include "cells/cell.hpp"
#include "util/rng.hpp"

#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

namespace stsense::ring {

/// A ring oscillator as a sequence of inverting stages.
struct RingConfig {
    std::vector<cells::CellSpec> stages;

    std::size_t stage_count() const { return stages.size(); }

    /// N identical stages. `ratio` 0 keeps the library Wp/Wn.
    static RingConfig uniform(cells::CellKind kind, int n, double ratio = 0.0,
                              double drive = 1.0);

    /// Composition from (kind, count) groups, interleaved round-robin so
    /// the mix is spread evenly around the loop, e.g. {{INV,3},{NAND3,2}}
    /// -> INV NAND3 INV NAND3 INV.
    static RingConfig mix(std::initializer_list<std::pair<cells::CellKind, int>> groups,
                          double ratio = 0.0, double drive = 1.0);
};

/// Compact description, e.g. "3xINV + 2xNAND3 (r=lib)".
std::string describe(const RingConfig& config);

/// Within-die mismatch magnitudes (1-sigma, per stage).
struct MismatchSpec {
    /// Width/drive mismatch. Note: cancels to *first order* around a
    /// ring (current and input capacitance scale together), leaving a
    /// quadratic residual — verified by the mismatch tests.
    double drive_sigma = 0.02;
    /// Threshold-voltage mismatch [V]; shifts the period linearly and
    /// dominates the sensor-to-sensor spread on one die.
    double vth_sigma_v = 0.008;
};

/// Within-die mismatch: returns a copy of `config` with every stage's
/// drive and threshold independently perturbed per `spec`. Models the
/// local variation between nominally identical rings on one die — the
/// reason shared calibration across distributed sensors leaves residual
/// error.
RingConfig sample_stage_mismatch(const RingConfig& config,
                                 const MismatchSpec& spec, util::Rng& rng);

/// Validates oscillation preconditions: >= 3 stages, odd stage count
/// (every cell here is inverting), each stage valid. Throws
/// std::invalid_argument with a message on violation.
void validate(const RingConfig& config);

/// The paper's temperature range of interest: -50 degC ... 150 degC.
inline constexpr double kPaperTempMinC = -50.0;
inline constexpr double kPaperTempMaxC = 150.0;

/// The paper's sweep grid (Figs. 2 and 3 plot every 12.5 degC).
std::vector<double> paper_temperature_grid_c();

} // namespace stsense::ring
