#include "ring/sweep.hpp"

#include "exec/fingerprint.hpp"
#include "exec/metrics.hpp"
#include "phys/units.hpp"
#include "ring/analytic.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace stsense::ring {

namespace {

/// Chunk sizes for the pool: SPICE points cost milliseconds each, so
/// they dispatch one per task; analytic points cost microseconds, so
/// they are chunked to amortize scheduling.
constexpr std::size_t kSpiceGrain = 1;
constexpr std::size_t kAnalyticGrain = 8;

void validate_grid(std::span<const double> temps_c) {
    if (temps_c.empty()) throw std::invalid_argument("temperature_sweep: empty grid");
    // Single pass: finiteness and strict monotonicity together. NaN/Inf
    // would otherwise flow through the delay model and silently poison
    // every derived period/non-linearity figure.
    double prev = temps_c.front();
    if (!std::isfinite(prev)) {
        throw std::invalid_argument("temperature_sweep: grid contains NaN/Inf");
    }
    for (std::size_t i = 1; i < temps_c.size(); ++i) {
        const double t = temps_c[i];
        if (!std::isfinite(t)) {
            throw std::invalid_argument("temperature_sweep: grid contains NaN/Inf");
        }
        if (t <= prev) {
            throw std::invalid_argument("temperature_sweep: grid must be increasing");
        }
        prev = t;
    }
}

void add_mosfet(exec::Fingerprint& fp, const phys::MosfetParams& p) {
    fp.add(static_cast<int>(p.type))
        .add(p.vth0)
        .add(p.alpha)
        .add(p.kp)
        .add(p.mobility_exp)
        .add(p.vth_tc)
        .add(p.lambda)
        .add(p.vdsat_coeff)
        .add(p.t0)
        .add(p.smoothing)
        .add(p.cgate_per_w)
        .add(p.cdrain_per_w);
}

/// Computes period_s[i]/frequency_hz[i] for every grid point, serially
/// or chunked onto the pool. Either way each index is computed by the
/// same pure function and written to its own slot, so the output is
/// bitwise identical regardless of thread count.
template <typename PointFn>
void compute_points(SweepResult& out, const SweepRuntime& runtime,
                    std::size_t grain, const PointFn& point) {
    const std::size_t n = out.temps_c.size();
    out.period_s.resize(n);
    out.frequency_hz.resize(n);
    const auto body = [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            const double p = point(out.temps_c[i]);
            out.period_s[i] = p;
            out.frequency_hz[i] = 1.0 / p;
        }
    };
    if (runtime.parallel) {
        auto& pool = runtime.pool != nullptr ? *runtime.pool
                                             : exec::ThreadPool::global();
        pool.parallel_for(n, grain, body);
    } else {
        body(0, n);
    }
}

SweepResult compute_sweep(const phys::Technology& tech, const RingConfig& config,
                          std::span<const double> temps_c, Engine engine,
                          const SpiceRingOptions& spice_opt,
                          const SweepRuntime& runtime) {
    SweepResult out;
    out.temps_c.assign(temps_c.begin(), temps_c.end());
    if (engine == Engine::Analytic) {
        const AnalyticRingModel model(tech, config);
        compute_points(out, runtime, kAnalyticGrain, [&](double tc) {
            return model.period(phys::celsius_to_kelvin(tc));
        });
    } else {
        const SpiceRingModel model(tech, config);
        SpiceRingOptions opt = spice_opt;
        opt.record_waveform = false; // Sweeps only need the scalar period.
        compute_points(out, runtime, kSpiceGrain, [&](double tc) {
            return model.simulate(phys::celsius_to_kelvin(tc), opt).period;
        });
    }
    return out;
}

} // namespace

std::uint64_t sweep_fingerprint(const phys::Technology& tech,
                                const RingConfig& config,
                                std::span<const double> temps_c, Engine engine,
                                const SpiceRingOptions& spice_opt) {
    exec::Fingerprint fp;
    fp.add(std::uint64_t{0x73747331}); // Key-format version salt.
    fp.add(tech.vdd)
        .add(tech.lmin)
        .add(tech.wmin)
        .add(tech.unit_nmos_width)
        .add(tech.library_ratio)
        .add(tech.wire_cap_per_stage);
    add_mosfet(fp, tech.nmos);
    add_mosfet(fp, tech.pmos);
    fp.add(static_cast<std::uint64_t>(config.stages.size()));
    for (const auto& s : config.stages) {
        fp.add(static_cast<int>(s.kind))
            .add(s.drive)
            .add(s.ratio)
            .add(static_cast<int>(s.tie))
            .add(s.vth_shift_v);
    }
    fp.add(static_cast<int>(engine));
    if (engine == Engine::Spice) {
        // Only the options that shape the result; record_waveform is
        // forced off for sweeps and estimate-identical runs match.
        fp.add(spice_opt.skip_cycles)
            .add(spice_opt.measure_cycles)
            .add(spice_opt.steps_per_period)
            .add(spice_opt.estimate_margin);
    }
    fp.add(temps_c);
    return fp.value();
}

SweepResult temperature_sweep(const phys::Technology& tech,
                              const RingConfig& config,
                              std::span<const double> temps_c, Engine engine,
                              const SpiceRingOptions& spice_opt,
                              const SweepRuntime& runtime) {
    validate_grid(temps_c);

    auto& metrics = exec::MetricsRegistry::global();
    const exec::ScopedTimer timer(metrics.timer(
        engine == Engine::Analytic ? "ring.sweep.analytic" : "ring.sweep.spice"));

    if (!runtime.use_cache) {
        return compute_sweep(tech, config, temps_c, engine, spice_opt, runtime);
    }

    auto& cache = runtime.cache != nullptr ? *runtime.cache
                                           : exec::ResultCache::global();
    const std::uint64_t key =
        sweep_fingerprint(tech, config, temps_c, engine, spice_opt);
    const auto series = cache.get_or_compute(key, [&] {
        auto sweep = compute_sweep(tech, config, temps_c, engine, spice_opt, runtime);
        exec::Series s;
        s.names = {"temps_c", "period_s", "frequency_hz"};
        s.columns.resize(3);
        s.columns[0] = std::move(sweep.temps_c);
        s.columns[1] = std::move(sweep.period_s);
        s.columns[2] = std::move(sweep.frequency_hz);
        return s;
    });

    SweepResult out;
    out.temps_c = series->columns[0];
    out.period_s = series->columns[1];
    out.frequency_hz = series->columns[2];
    return out;
}

SweepResult paper_sweep(const phys::Technology& tech, const RingConfig& config,
                        Engine engine, const SpiceRingOptions& spice_opt,
                        const SweepRuntime& runtime) {
    const auto grid = paper_temperature_grid_c();
    return temperature_sweep(tech, config, grid, engine, spice_opt, runtime);
}

} // namespace stsense::ring
