#include "ring/sweep.hpp"

#include "phys/units.hpp"
#include "ring/analytic.hpp"

#include <stdexcept>

namespace stsense::ring {

SweepResult temperature_sweep(const phys::Technology& tech,
                              const RingConfig& config,
                              std::span<const double> temps_c, Engine engine,
                              const SpiceRingOptions& spice_opt) {
    if (temps_c.empty()) throw std::invalid_argument("temperature_sweep: empty grid");
    for (std::size_t i = 1; i < temps_c.size(); ++i) {
        if (temps_c[i] <= temps_c[i - 1]) {
            throw std::invalid_argument("temperature_sweep: grid must be increasing");
        }
    }

    SweepResult out;
    out.temps_c.assign(temps_c.begin(), temps_c.end());
    out.period_s.reserve(temps_c.size());
    out.frequency_hz.reserve(temps_c.size());

    if (engine == Engine::Analytic) {
        const AnalyticRingModel model(tech, config);
        for (double tc : temps_c) {
            const double p = model.period(phys::celsius_to_kelvin(tc));
            out.period_s.push_back(p);
            out.frequency_hz.push_back(1.0 / p);
        }
    } else {
        const SpiceRingModel model(tech, config);
        SpiceRingOptions opt = spice_opt;
        opt.record_waveform = false; // Sweeps only need the scalar period.
        for (double tc : temps_c) {
            const RingSimResult r = model.simulate(phys::celsius_to_kelvin(tc), opt);
            out.period_s.push_back(r.period);
            out.frequency_hz.push_back(r.frequency);
        }
    }
    return out;
}

SweepResult paper_sweep(const phys::Technology& tech, const RingConfig& config,
                        Engine engine, const SpiceRingOptions& spice_opt) {
    const auto grid = paper_temperature_grid_c();
    return temperature_sweep(tech, config, grid, engine, spice_opt);
}

} // namespace stsense::ring
