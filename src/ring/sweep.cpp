#include "ring/sweep.hpp"

#include "exec/checkpoint.hpp"
#include "exec/fault_injector.hpp"
#include "exec/fingerprint.hpp"
#include "exec/metrics.hpp"
#include "obs/trace.hpp"
#include "phys/units.hpp"
#include "ring/analytic.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace stsense::ring {

const char* to_string(FaultPolicy policy) {
    switch (policy) {
        case FaultPolicy::Propagate: return "propagate";
        case FaultPolicy::Skip: return "skip";
        case FaultPolicy::Retry: return "retry";
        case FaultPolicy::FallbackToAnalytic: return "fallback-analytic";
    }
    return "unknown";
}

const char* to_string(PointStatus status) {
    switch (status) {
        case PointStatus::Ok: return "ok";
        case PointStatus::RecoveredDamped: return "recovered-damped";
        case PointStatus::RecoveredGmin: return "recovered-gmin";
        case PointStatus::RecoveredSource: return "recovered-source";
        case PointStatus::RecoveredRetry: return "recovered-retry";
        case PointStatus::FallbackAnalytic: return "fallback-analytic";
        case PointStatus::Skipped: return "skipped";
        case PointStatus::Failed: return "failed";
    }
    return "unknown";
}

std::size_t SweepResult::count(PointStatus s) const {
    std::size_t n = 0;
    for (PointStatus p : status) n += p == s ? 1 : 0;
    return n;
}

std::size_t SweepResult::valid_points() const {
    return temps_c.size() - count(PointStatus::Skipped) - count(PointStatus::Failed);
}

std::size_t SweepResult::recovered_points() const {
    std::size_t n = 0;
    for (PointStatus p : status) {
        switch (p) {
            case PointStatus::RecoveredDamped:
            case PointStatus::RecoveredGmin:
            case PointStatus::RecoveredSource:
            case PointStatus::RecoveredRetry:
            case PointStatus::FallbackAnalytic:
                ++n;
                break;
            default:
                break;
        }
    }
    return n;
}

namespace {

/// Chunk sizes for the pool: SPICE points cost milliseconds each, so
/// they dispatch one per task; analytic points cost microseconds, so
/// they use the pool's width-based auto grain (grain 0 →
/// ThreadPool::auto_grain) to amortize scheduling across the batch.
constexpr std::size_t kSpiceGrain = 1;
constexpr std::size_t kAnalyticGrain = 0;

void validate_grid(std::span<const double> temps_c) {
    if (temps_c.empty()) throw std::invalid_argument("temperature_sweep: empty grid");
    // Single pass: finiteness and strict monotonicity together. NaN/Inf
    // would otherwise flow through the delay model and silently poison
    // every derived period/non-linearity figure. Messages carry the
    // offending index and value so a bad grid is diagnosable from the
    // what() string alone.
    double prev = temps_c.front();
    if (!std::isfinite(prev)) {
        throw std::invalid_argument(
            "temperature_sweep: grid contains NaN/Inf at index 0 (value " +
            std::to_string(prev) + ")");
    }
    for (std::size_t i = 1; i < temps_c.size(); ++i) {
        const double t = temps_c[i];
        if (!std::isfinite(t)) {
            throw std::invalid_argument(
                "temperature_sweep: grid contains NaN/Inf at index " +
                std::to_string(i) + " (value " + std::to_string(t) + ")");
        }
        if (t <= prev) {
            throw std::invalid_argument(
                "temperature_sweep: grid must be strictly increasing, but "
                "temps_c[" + std::to_string(i) + "] = " + std::to_string(t) +
                " <= temps_c[" + std::to_string(i - 1) + "] = " +
                std::to_string(prev));
        }
        prev = t;
    }
}

void add_mosfet(exec::Fingerprint& fp, const phys::MosfetParams& p) {
    fp.add(static_cast<int>(p.type))
        .add(p.vth0)
        .add(p.alpha)
        .add(p.kp)
        .add(p.mobility_exp)
        .add(p.vth_tc)
        .add(p.lambda)
        .add(p.vdsat_coeff)
        .add(p.t0)
        .add(p.smoothing)
        .add(p.cgate_per_w)
        .add(p.cdrain_per_w);
}

/// One evaluated grid point.
struct PointEval {
    double period = 0.0;
    PointStatus status = PointStatus::Ok;
};

PointStatus status_of_rung(spice::RecoveryRung rung) {
    switch (rung) {
        case spice::RecoveryRung::None: return PointStatus::Ok;
        case spice::RecoveryRung::DampedNewton: return PointStatus::RecoveredDamped;
        case spice::RecoveryRung::GminStepping: return PointStatus::RecoveredGmin;
        case spice::RecoveryRung::SourceStepping: return PointStatus::RecoveredSource;
    }
    return PointStatus::Ok;
}

/// Computes period_s[i]/frequency_hz[i]/status[i] for every grid point,
/// serially or chunked onto the pool. Either way each index is computed
/// by the same pure function and written to its own slot, so the output
/// is bitwise identical regardless of thread count.
template <typename PointFn>
void compute_points(SweepResult& out, const SweepRuntime& runtime,
                    std::size_t grain, const PointFn& point) {
    const std::size_t n = out.temps_c.size();
    out.period_s.resize(n);
    out.frequency_hz.resize(n);
    out.status.resize(n);
    const auto body = [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            // Per-point poll: a fired request token stops the sweep at
            // the next point boundary (points already solving finish via
            // the solver's own per-iteration poll). Costs a null check
            // when no token is installed.
            exec::CancelScope::current().check();
            obs::Span span("ring.sweep.point");
            span.num("index", static_cast<double>(i));
            const PointEval e = point(i, out.temps_c[i]);
            span.tag("status", to_string(e.status));
            out.period_s[i] = e.period;
            out.frequency_hz[i] = 1.0 / e.period;
            out.status[i] = e.status;
        }
    };
    if (runtime.parallel) {
        auto& pool = runtime.pool != nullptr ? *runtime.pool
                                             : exec::ThreadPool::global();
        pool.parallel_for(n, grain, body);
    } else {
        body(0, n);
    }
}

/// Wraps one engine attempt with the per-point FaultPolicy: injected
/// point faults are drawn per (point, attempt); failures are retried /
/// skipped / substituted per the spec; outcomes become PointStatus.
template <typename AttemptFn>
PointEval apply_policy(std::size_t i, double temp_c,
                       const AnalyticRingModel& analytic,
                       const FaultPolicySpec& spec,
                       const AttemptFn& attempt) {
    // The simulator's own injection sites (NewtonFail/NanState) derive
    // their streams from this point index via the FaultContext.
    exec::FaultContext ctx(i);

    auto run_attempt = [&](int a) -> spice::Result<PointEval> {
        if (auto* injector = exec::FaultInjector::active();
            injector != nullptr &&
            injector->trip(exec::FaultInjector::Site::Point,
                           exec::FaultInjector::point_stream(i, static_cast<std::uint64_t>(a)))) {
            spice::SimError e;
            e.kind = spice::SimErrorKind::NonConvergence;
            e.message = "injected point fault at grid index " + std::to_string(i);
            return e;
        }
        return attempt(a);
    };

    auto first = run_attempt(0);
    if (first.ok()) return first.value();

    // A failure observed while the request's token fired is the
    // cancellation surfacing through the solver, not a point fault:
    // unwind instead of applying the policy (Skip/Fallback must not
    // quietly turn a cancelled request into a completed-looking sweep).
    exec::CancelScope::current().check();
    if (first.error().kind == spice::SimErrorKind::Cancelled) {
        throw exec::CancelledError(exec::CancelCause::Cancelled);
    }

    const double nan = std::numeric_limits<double>::quiet_NaN();
    switch (spec.policy) {
        case FaultPolicy::Propagate:
            throw spice::SimException(first.error());
        case FaultPolicy::Skip:
            return PointEval{nan, PointStatus::Skipped};
        case FaultPolicy::Retry: {
            for (int a = 1; a <= spec.max_retries; ++a) {
                exec::CancelScope::current().check();
                auto retry = run_attempt(a);
                if (retry.ok()) {
                    return PointEval{retry.value().period, PointStatus::RecoveredRetry};
                }
            }
            return PointEval{nan, PointStatus::Failed};
        }
        case FaultPolicy::FallbackToAnalytic:
            return PointEval{analytic.period(phys::celsius_to_kelvin(temp_c)),
                             PointStatus::FallbackAnalytic};
    }
    return PointEval{nan, PointStatus::Failed};
}

/// Wraps a point function with checkpoint resume/record: a completed
/// point is restored bitwise from the checkpoint (no recomputation, no
/// fresh fault draws); a newly computed point is recorded and — under
/// the SweepKill fault site — may "kill the process" right after, which
/// the tests model as an InjectedKill unwinding out of the sweep.
template <typename PointFn>
PointEval checkpointed_point(exec::Checkpoint* ckpt, std::size_t i, double tc,
                             const PointFn& point) {
    if (ckpt == nullptr) return point(i, tc);
    if (ckpt->completed(i)) {
        const auto v = ckpt->values(i);
        return PointEval{v[0], static_cast<PointStatus>(static_cast<int>(v[1]))};
    }
    const PointEval e = point(i, tc);
    const double vals[2] = {e.period, static_cast<double>(e.status)};
    ckpt->record(i, vals);
    if (auto* injector = exec::FaultInjector::active();
        injector != nullptr &&
        injector->trip(exec::FaultInjector::Site::SweepKill,
                       static_cast<std::uint64_t>(i))) {
        throw exec::InjectedKill(i);
    }
    return e;
}

SweepResult compute_sweep(const phys::Technology& tech, const RingConfig& config,
                          std::span<const double> temps_c, Engine engine,
                          const SpiceRingOptions& spice_opt,
                          const SweepRuntime& runtime,
                          exec::Checkpoint* ckpt = nullptr) {
    SweepResult out;
    out.temps_c.assign(temps_c.begin(), temps_c.end());
    const AnalyticRingModel analytic(tech, config);
    const FaultPolicySpec& fault = runtime.fault;
    if (engine == Engine::Analytic) {
        compute_points(out, runtime, kAnalyticGrain,
                       [&](std::size_t i, double tc) {
            return checkpointed_point(ckpt, i, tc, [&](std::size_t pi, double ptc) {
                return apply_policy(pi, ptc, analytic, fault,
                                    [&](int) -> spice::Result<PointEval> {
                    return PointEval{analytic.period(phys::celsius_to_kelvin(ptc)),
                                     PointStatus::Ok};
                });
            });
        });
    } else {
        const SpiceRingModel model(tech, config);
        SpiceRingOptions opt = spice_opt;
        opt.record_waveform = false; // Sweeps only need the scalar period.

        // Lock-step mode: precompute every point's attempt-0 simulation
        // in groups of kernel.lockstep_width over one shared batched
        // evaluator, then let the policy loop below consume them. The
        // results are bitwise identical to solo attempts, so this is a
        // pure scheduling change — but it is gated off whenever a fault
        // injector is installed (attempt-0 outcomes would need per-point
        // fault streams interleaved with policy retries) or a checkpoint
        // is resuming (completed points must not be recomputed).
        const std::size_t n = out.temps_c.size();
        std::vector<std::optional<spice::Result<RingSimResult>>> pre;
        const bool lockstep = opt.kernel.lockstep_width > 1 &&
                              !opt.kernel.adaptive &&
                              exec::FaultInjector::active() == nullptr &&
                              ckpt == nullptr;
        if (lockstep) {
            pre.resize(n);
            const auto w = static_cast<std::size_t>(opt.kernel.lockstep_width);
            const std::size_t groups = (n + w - 1) / w;
            const auto group_body = [&](std::size_t gb, std::size_t ge) {
                for (std::size_t g = gb; g < ge; ++g) {
                    // Lock-step groups are the coarse unit of this
                    // phase; poll at each group boundary.
                    exec::CancelScope::current().check();
                    const std::size_t lo = g * w;
                    const std::size_t hi = std::min(lo + w, n);
                    std::vector<double> temps_k(hi - lo);
                    for (std::size_t j = lo; j < hi; ++j) {
                        temps_k[j - lo] = phys::celsius_to_kelvin(out.temps_c[j]);
                    }
                    auto rs = model.try_simulate_batch(temps_k, opt);
                    for (std::size_t j = lo; j < hi; ++j) {
                        pre[j] = std::move(rs[j - lo]);
                    }
                }
            };
            if (runtime.parallel) {
                auto& pool = runtime.pool != nullptr ? *runtime.pool
                                                     : exec::ThreadPool::global();
                pool.parallel_for(groups, 1, group_body);
            } else {
                group_body(0, groups);
            }
        }

        compute_points(out, runtime, kSpiceGrain,
                       [&](std::size_t i, double tc) {
            return checkpointed_point(ckpt, i, tc, [&](std::size_t pi, double ptc) {
                return apply_policy(pi, ptc, analytic, fault,
                                    [&](int attempt) -> spice::Result<PointEval> {
                    if (attempt == 0 && lockstep && pre[pi].has_value()) {
                        const auto& r = *pre[pi];
                        if (!r.ok()) return r.error();
                        return PointEval{r.value().period,
                                         status_of_rung(r.value().recovery_rung)};
                    }
                    SpiceRingOptions o = opt;
                    // Tightened time resolution per retry: marginal
                    // transients usually converge with a smaller dt.
                    for (int a = 0; a < attempt; ++a) {
                        o.steps_per_period = static_cast<int>(
                            static_cast<double>(o.steps_per_period) *
                            fault.retry_steps_factor);
                    }
                    auto r = model.try_simulate(phys::celsius_to_kelvin(ptc), o);
                    if (!r.ok()) return r.error();
                    return PointEval{r.value().period,
                                     status_of_rung(r.value().recovery_rung)};
                });
            });
        });
    }
    return out;
}

/// Publishes a finished sweep's per-point outcome tallies (done once per
/// sweep, off the hot per-point path, so parallel runs count the same).
void record_outcomes(const SweepResult& sweep) {
    auto& metrics = exec::MetricsRegistry::global();
    const std::size_t ok = sweep.count(PointStatus::Ok);
    const std::size_t recovered = sweep.recovered_points();
    const std::size_t fallback = sweep.count(PointStatus::FallbackAnalytic);
    const std::size_t skipped = sweep.count(PointStatus::Skipped);
    const std::size_t failed = sweep.count(PointStatus::Failed);
    if (ok > 0) metrics.counter("ring.sweep.points.ok").add(ok);
    if (recovered > 0) metrics.counter("ring.sweep.points.recovered").add(recovered);
    if (fallback > 0) metrics.counter("ring.sweep.points.fallback").add(fallback);
    if (skipped > 0) metrics.counter("ring.sweep.points.skipped").add(skipped);
    if (failed > 0) metrics.counter("ring.sweep.points.failed").add(failed);
}

} // namespace

std::uint64_t sweep_fingerprint(const phys::Technology& tech,
                                const RingConfig& config,
                                std::span<const double> temps_c, Engine engine,
                                const SpiceRingOptions& spice_opt,
                                const FaultPolicySpec& fault) {
    exec::Fingerprint fp;
    fp.add(std::uint64_t{0x73747333}); // Key-format version salt.
    fp.add(tech.vdd)
        .add(tech.lmin)
        .add(tech.wmin)
        .add(tech.unit_nmos_width)
        .add(tech.library_ratio)
        .add(tech.wire_cap_per_stage);
    add_mosfet(fp, tech.nmos);
    add_mosfet(fp, tech.pmos);
    fp.add(static_cast<std::uint64_t>(config.stages.size()));
    for (const auto& s : config.stages) {
        fp.add(static_cast<int>(s.kind))
            .add(s.drive)
            .add(s.ratio)
            .add(static_cast<int>(s.tie))
            .add(s.vth_shift_v);
    }
    fp.add(static_cast<int>(engine));
    if (engine == Engine::Spice) {
        // Only the options that shape the result; record_waveform is
        // forced off for sweeps and estimate-identical runs match.
        fp.add(spice_opt.skip_cycles)
            .add(spice_opt.measure_cycles)
            .add(spice_opt.steps_per_period)
            .add(spice_opt.estimate_margin)
            .add(spice_opt.enable_recovery)
            .add(spice_opt.max_wall_ms)
            .add(static_cast<std::int64_t>(spice_opt.max_total_newton_iters));
        // Fast-kernel knobs change the computed values, so a fast sweep
        // and a seed-identical sweep must not alias in the cache.
        // batch_eval / simd / lockstep_width are deliberately absent:
        // they are bitwise-neutral (the SoA/SIMD/lock-step paths carry a
        // parity contract with the legacy loop), so toggling them must
        // hit the same cache entry. banded_lu and reuse_stall_ratio DO
        // change bits (different elimination order / different refactor
        // schedule) and are keyed.
        const spice::TransientOptions& k = spice_opt.kernel;
        fp.add(k.reuse_lu)
            .add(k.reuse_iter_limit)
            .add(k.reuse_stall_ratio)
            .add(k.bypass_tol_v)
            .add(k.banded_lu)
            .add(k.adaptive)
            .add(k.lte_rel_tol)
            .add(k.dt_min_factor)
            .add(k.dt_max_factor)
            .add(k.dt_grow)
            .add(k.dt_shrink)
            .add(spice_opt.early_exit);
    }
    // The fault policy shapes the values of points that fail, so it is
    // part of the key (a Skip series and a Fallback series of the same
    // circuit must not alias).
    fp.add(static_cast<int>(fault.policy));
    if (fault.policy == FaultPolicy::Retry) {
        fp.add(fault.max_retries).add(fault.retry_steps_factor);
    }
    fp.add(temps_c);
    return fp.value();
}

SweepResult temperature_sweep(const phys::Technology& tech,
                              const RingConfig& config,
                              std::span<const double> temps_c, Engine engine,
                              const SpiceRingOptions& spice_opt,
                              const SweepRuntime& runtime) {
    validate_grid(temps_c);

    // Install the runtime's token as the ambient one for this sweep
    // (no-op when invalid — an enclosing request token stays visible).
    // Everything below, including pool tasks, inherits it.
    exec::CancelScope cancel_scope(runtime.cancel);

    auto& metrics = exec::MetricsRegistry::global();
    const exec::ScopedTimer timer(metrics.timer(
        engine == Engine::Analytic ? "ring.sweep.analytic" : "ring.sweep.spice"));

    obs::Span span("ring.sweep");
    span.tag("engine", engine == Engine::Analytic ? "analytic" : "spice");
    span.tag("policy", to_string(runtime.fault.policy));
    span.num("points", static_cast<double>(temps_c.size()));

    // An installed fault injector makes outcomes depend on the injector
    // state, which the fingerprint cannot see — never memoize those.
    const bool cacheable =
        runtime.use_cache && exec::FaultInjector::active() == nullptr;

    // Crash-safe resume: the checkpoint is keyed by the same fingerprint
    // the cache uses, so a stale file from a different sweep can never
    // contribute points. Completed points load here and are skipped —
    // bitwise — by the point loop below.
    std::optional<exec::Checkpoint> ckpt;
    if (!runtime.checkpoint_path.empty()) {
        ckpt.emplace(runtime.checkpoint_path,
                     sweep_fingerprint(tech, config, temps_c, engine, spice_opt,
                                       runtime.fault),
                     temps_c.size(), 2);
        if (runtime.checkpoint_every > 0) {
            ckpt->set_flush_every(
                static_cast<std::size_t>(runtime.checkpoint_every));
        }
        ckpt->load();
    }
    exec::Checkpoint* ckpt_ptr = ckpt ? &*ckpt : nullptr;
    auto run_checkpointed = [&] {
        SweepResult sweep;
        try {
            sweep = compute_sweep(tech, config, temps_c, engine, spice_opt,
                                  runtime, ckpt_ptr);
        } catch (const exec::CancelledError&) {
            // Cancel-safe teardown: persist every completed point (the
            // flush is atomic tmp+rename, so the file is never torn)
            // and KEEP the file — a re-issued identical sweep resumes
            // bitwise from here. Unlike SweepKill (which models a
            // process death and deliberately loses the unflushed tail),
            // a cooperative cancel has a live process to flush from.
            if (ckpt_ptr != nullptr) ckpt_ptr->flush();
            metrics.counter("exec.cancel.sweeps").add();
            throw;
        }
        record_outcomes(sweep);
        if (ckpt_ptr != nullptr) {
            // The sweep finished: either persist the complete state or
            // clean up so no stale file lingers after success.
            if (runtime.keep_checkpoint) {
                ckpt_ptr->flush();
            } else {
                ckpt_ptr->remove_file();
            }
        }
        return sweep;
    };

    if (!cacheable) return run_checkpointed();

    auto& cache = runtime.cache != nullptr ? *runtime.cache
                                           : exec::ResultCache::global();
    const std::uint64_t key =
        sweep_fingerprint(tech, config, temps_c, engine, spice_opt, runtime.fault);
    const auto series = cache.get_or_compute(key, [&] {
        auto sweep = run_checkpointed();
        exec::Series s;
        s.names = {"temps_c", "period_s", "frequency_hz", "status"};
        s.columns.resize(4);
        s.columns[0] = std::move(sweep.temps_c);
        s.columns[1] = std::move(sweep.period_s);
        s.columns[2] = std::move(sweep.frequency_hz);
        s.columns[3].reserve(sweep.status.size());
        for (PointStatus p : sweep.status) {
            s.columns[3].push_back(static_cast<double>(p));
        }
        return s;
    });

    SweepResult out;
    out.temps_c = series->columns[0];
    out.period_s = series->columns[1];
    out.frequency_hz = series->columns[2];
    if (series->columns.size() > 3) {
        out.status.reserve(series->columns[3].size());
        for (double v : series->columns[3]) {
            out.status.push_back(static_cast<PointStatus>(static_cast<int>(v)));
        }
    } else {
        out.status.assign(out.temps_c.size(), PointStatus::Ok);
    }
    return out;
}

SweepResult paper_sweep(const phys::Technology& tech, const RingConfig& config,
                        Engine engine, const SpiceRingOptions& spice_opt,
                        const SweepRuntime& runtime) {
    const auto grid = paper_temperature_grid_c();
    return temperature_sweep(tech, config, grid, engine, spice_opt, runtime);
}

} // namespace stsense::ring
