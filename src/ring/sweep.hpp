// Temperature sweeps: run a ring configuration across a temperature
// grid with either engine and collect the period/frequency series that
// Figs. 2 and 3 are computed from.
//
// Sweeps are the library's hot loop, and every point is independent, so
// the driver runs them through the stsense::exec runtime: points are
// dispatched to the work-stealing pool (deterministic chunk -> index
// mapping, results committed by index — bitwise identical to the serial
// loop at any thread count) and whole sweeps are memoized in the
// content-addressed result cache keyed by a fingerprint over
// (technology, ring config, engine, options, fault policy, grid).
//
// Fault tolerance: a sweep over hundreds of Newton solves must not die
// because one (config, T) point misbehaves. Each point's failure (a
// spice::SimError after the solver's own recovery ladder, or an
// injected fault) is handled by the runtime's per-point FaultPolicy —
// propagate, skip, retry with tightened resolution, or fall back to the
// analytic model — and every point's outcome is recorded in
// SweepResult::status, so consumers can rank partial series and benches
// can report recovery rates. Fault-free runs take the historical path
// bit for bit.
#pragma once

#include "exec/cancel.hpp"
#include "exec/result_cache.hpp"
#include "exec/thread_pool.hpp"
#include "phys/technology.hpp"
#include "ring/config.hpp"
#include "ring/spice_ring.hpp"

#include <cstdint>
#include <span>
#include <vector>

namespace stsense::ring {

/// Which period engine runs the sweep.
enum class Engine {
    Analytic, ///< Closed-form delay model (fast; default for sweeps).
    Spice,    ///< Transistor-level transient simulation.
};

/// What the sweep does with a point whose evaluation fails.
enum class FaultPolicy {
    Propagate,          ///< Rethrow — the whole sweep fails (legacy).
    Skip,               ///< Record the point as skipped; series gets NaN.
    Retry,              ///< Re-run with tightened resolution, then fail the point.
    FallbackToAnalytic, ///< Substitute the analytic model's period.
};

const char* to_string(FaultPolicy policy);

/// Retry shaping for FaultPolicy::Retry.
struct FaultPolicySpec {
    FaultPolicy policy = FaultPolicy::Propagate;
    int max_retries = 2;            ///< Extra attempts after the first failure.
    /// Each retry multiplies steps_per_period by this (tightened time
    /// resolution is the lever that actually fixes marginal transients).
    double retry_steps_factor = 2.0;
};

/// Per-point outcome of a sweep. Ok and the Recovered* values carry a
/// valid period; Skipped/Failed points hold NaN in the series.
enum class PointStatus : std::uint8_t {
    Ok = 0,               ///< Plain solve, no assistance.
    RecoveredDamped = 1,  ///< Solver ladder: damped Newton.
    RecoveredGmin = 2,    ///< Solver ladder: gmin stepping.
    RecoveredSource = 3,  ///< Solver ladder: source stepping.
    RecoveredRetry = 4,   ///< Sweep-level retry succeeded.
    FallbackAnalytic = 5, ///< Analytic substitute recorded.
    Skipped = 6,          ///< Policy skipped the point.
    Failed = 7,           ///< Retries exhausted; point unusable.
};

const char* to_string(PointStatus status);

/// Period-vs-temperature series of one configuration.
struct SweepResult {
    std::vector<double> temps_c;      ///< Sweep grid [deg C].
    std::vector<double> period_s;     ///< Oscillation period at each point [s].
    std::vector<double> frequency_hz; ///< 1 / period [Hz].
    /// Outcome per point (same length as the grid; all Ok on the
    /// fault-free fast path).
    std::vector<PointStatus> status;

    std::size_t count(PointStatus s) const;
    /// Points whose period is usable (everything but Skipped/Failed).
    std::size_t valid_points() const;
    /// Points rescued by any mechanism (solver ladder, retry, fallback).
    std::size_t recovered_points() const;
    bool complete() const { return valid_points() == temps_c.size(); }
};

/// How a sweep executes. The defaults give the fast path: points run on
/// the global pool, whole results are memoized in the global cache, and
/// a failed point propagates (legacy behavior). Pool/cache knobs trade
/// time and memory, never values; the fault policy changes values only
/// for points that would otherwise have killed the sweep.
struct SweepRuntime {
    /// Pool for the parallel path; nullptr selects
    /// exec::ThreadPool::global() (honors STSENSE_THREADS).
    exec::ThreadPool* pool = nullptr;
    /// false forces the serial reference loop on the calling thread.
    bool parallel = true;
    /// Cache for whole-sweep memoization; nullptr selects
    /// exec::ResultCache::global().
    exec::ResultCache* cache = nullptr;
    /// false recomputes even when an identical sweep is cached. (The
    /// cache is also bypassed automatically while a FaultInjector is
    /// installed: injected outcomes must not be memoized.)
    bool use_cache = true;
    /// Per-point failure handling.
    FaultPolicySpec fault;

    /// Crash-safe checkpoint/resume. When non-empty, completed points
    /// are persisted to this path (fingerprint-keyed, per-row FNV-1a
    /// checksums, atomic tmp+rename writes) and a rerun of the *same*
    /// sweep resumes: persisted points are restored bitwise instead of
    /// recomputed, so a killed run plus a resumed run produce exactly
    /// the series an uninterrupted run would. A checkpoint left by a
    /// different sweep (or a corrupted row) is detected and ignored.
    /// Checkpointing changes no values and is not part of the sweep
    /// fingerprint.
    std::string checkpoint_path;
    /// Completed points between checkpoint flushes (1 = flush on every
    /// point; <= 0 keeps the Checkpoint default).
    int checkpoint_every = 8;
    /// true keeps the checkpoint file after a completed sweep (tests /
    /// debugging); the default removes it so finished runs leave no
    /// stale state behind.
    bool keep_checkpoint = false;

    /// Cooperative cancellation/deadline token. When valid, it is
    /// installed as the ambient exec token for the whole sweep: every
    /// point dispatch (and lock-step group) polls it, the spice solver
    /// folds its deadline into the per-solve budget, and a fired token
    /// unwinds as exec::CancelledError *after* flushing the checkpoint
    /// (so a cancelled run resumes bitwise from where it stopped). An
    /// invalid token (the default) is free and leaves any enclosing
    /// ambient token — e.g. the service's per-request token — visible.
    exec::CancelToken cancel;

    /// A runtime that bypasses both the pool and the cache — the serial
    /// reference the determinism tests compare against.
    static SweepRuntime serial() {
        SweepRuntime rt;
        rt.parallel = false;
        rt.use_cache = false;
        return rt;
    }
};

/// Runs the sweep. The grid must be non-empty, finite (no NaN/Inf), and
/// strictly increasing; throws std::invalid_argument (naming the
/// offending index and value) otherwise.
SweepResult temperature_sweep(const phys::Technology& tech,
                              const RingConfig& config,
                              std::span<const double> temps_c,
                              Engine engine = Engine::Analytic,
                              const SpiceRingOptions& spice_opt = {},
                              const SweepRuntime& runtime = {});

/// Convenience: the paper grid (-50 ... 150 degC, step 12.5).
SweepResult paper_sweep(const phys::Technology& tech, const RingConfig& config,
                        Engine engine = Engine::Analytic,
                        const SpiceRingOptions& spice_opt = {},
                        const SweepRuntime& runtime = {});

/// Content fingerprint of a sweep: hashes every input that influences
/// the result (all technology and per-stage parameters, the engine, the
/// SPICE options when the engine is Spice, the fault policy, and the
/// grid values). Equal fingerprints imply bitwise equal SweepResults.
/// This is the cache key temperature_sweep memoizes under.
std::uint64_t sweep_fingerprint(const phys::Technology& tech,
                                const RingConfig& config,
                                std::span<const double> temps_c, Engine engine,
                                const SpiceRingOptions& spice_opt = {},
                                const FaultPolicySpec& fault = {});

} // namespace stsense::ring
