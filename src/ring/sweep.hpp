// Temperature sweeps: run a ring configuration across a temperature
// grid with either engine and collect the period/frequency series that
// Figs. 2 and 3 are computed from.
//
// Sweeps are the library's hot loop, and every point is independent, so
// the driver runs them through the stsense::exec runtime: points are
// dispatched to the work-stealing pool (deterministic chunk -> index
// mapping, results committed by index — bitwise identical to the serial
// loop at any thread count) and whole sweeps are memoized in the
// content-addressed result cache keyed by a fingerprint over
// (technology, ring config, engine, options, grid).
#pragma once

#include "exec/result_cache.hpp"
#include "exec/thread_pool.hpp"
#include "phys/technology.hpp"
#include "ring/config.hpp"
#include "ring/spice_ring.hpp"

#include <cstdint>
#include <span>
#include <vector>

namespace stsense::ring {

/// Which period engine runs the sweep.
enum class Engine {
    Analytic, ///< Closed-form delay model (fast; default for sweeps).
    Spice,    ///< Transistor-level transient simulation.
};

/// Period-vs-temperature series of one configuration.
struct SweepResult {
    std::vector<double> temps_c;      ///< Sweep grid [deg C].
    std::vector<double> period_s;     ///< Oscillation period at each point [s].
    std::vector<double> frequency_hz; ///< 1 / period [Hz].
};

/// How a sweep executes. The defaults give the fast path: points run on
/// the global pool and whole results are memoized in the global cache.
/// Every combination produces bitwise identical SweepResults — these
/// knobs trade time and memory, never values.
struct SweepRuntime {
    /// Pool for the parallel path; nullptr selects
    /// exec::ThreadPool::global() (honors STSENSE_THREADS).
    exec::ThreadPool* pool = nullptr;
    /// false forces the serial reference loop on the calling thread.
    bool parallel = true;
    /// Cache for whole-sweep memoization; nullptr selects
    /// exec::ResultCache::global().
    exec::ResultCache* cache = nullptr;
    /// false recomputes even when an identical sweep is cached.
    bool use_cache = true;

    /// A runtime that bypasses both the pool and the cache — the serial
    /// reference the determinism tests compare against.
    static SweepRuntime serial() {
        SweepRuntime rt;
        rt.parallel = false;
        rt.use_cache = false;
        return rt;
    }
};

/// Runs the sweep. The grid must be non-empty, finite (no NaN/Inf), and
/// strictly increasing; throws std::invalid_argument otherwise.
SweepResult temperature_sweep(const phys::Technology& tech,
                              const RingConfig& config,
                              std::span<const double> temps_c,
                              Engine engine = Engine::Analytic,
                              const SpiceRingOptions& spice_opt = {},
                              const SweepRuntime& runtime = {});

/// Convenience: the paper grid (-50 ... 150 degC, step 12.5).
SweepResult paper_sweep(const phys::Technology& tech, const RingConfig& config,
                        Engine engine = Engine::Analytic,
                        const SpiceRingOptions& spice_opt = {},
                        const SweepRuntime& runtime = {});

/// Content fingerprint of a sweep: hashes every input that influences
/// the result (all technology and per-stage parameters, the engine, the
/// SPICE options when the engine is Spice, and the grid values). Equal
/// fingerprints imply bitwise equal SweepResults. This is the cache key
/// temperature_sweep memoizes under.
std::uint64_t sweep_fingerprint(const phys::Technology& tech,
                                const RingConfig& config,
                                std::span<const double> temps_c, Engine engine,
                                const SpiceRingOptions& spice_opt = {});

} // namespace stsense::ring
