// Temperature sweeps: run a ring configuration across a temperature
// grid with either engine and collect the period/frequency series that
// Figs. 2 and 3 are computed from.
#pragma once

#include "phys/technology.hpp"
#include "ring/config.hpp"
#include "ring/spice_ring.hpp"

#include <span>
#include <vector>

namespace stsense::ring {

/// Which period engine runs the sweep.
enum class Engine {
    Analytic, ///< Closed-form delay model (fast; default for sweeps).
    Spice,    ///< Transistor-level transient simulation.
};

/// Period-vs-temperature series of one configuration.
struct SweepResult {
    std::vector<double> temps_c;      ///< Sweep grid [deg C].
    std::vector<double> period_s;     ///< Oscillation period at each point [s].
    std::vector<double> frequency_hz; ///< 1 / period [Hz].
};

/// Runs the sweep. Grid must be non-empty and strictly increasing;
/// throws std::invalid_argument otherwise.
SweepResult temperature_sweep(const phys::Technology& tech,
                              const RingConfig& config,
                              std::span<const double> temps_c,
                              Engine engine = Engine::Analytic,
                              const SpiceRingOptions& spice_opt = {});

/// Convenience: the paper grid (-50 ... 150 degC, step 12.5).
SweepResult paper_sweep(const phys::Technology& tech, const RingConfig& config,
                        Engine engine = Engine::Analytic,
                        const SpiceRingOptions& spice_opt = {});

} // namespace stsense::ring
