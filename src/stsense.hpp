// stsense.hpp — the umbrella header.
//
// One include pulls in the public surface of the library: the physics
// and ring models, the SPICE engine, the digital smart unit, the sensor
// and monitor layers, the execution runtime, observability, and the
// RuntimeOptions facade that configures all of them in one place.
//
//     #include "stsense.hpp"
//
//     auto rt = stsense::RuntimeOptions().fast_kernel(true).trace("run.json");
//     auto session = rt.trace_session();
//     sensor::SmartTemperatureSensor s(phys::cmos350(),
//                                      ring::RingConfig::uniform(
//                                          cells::CellKind::Inv, 5, 2.75));
//
// Translation units chasing compile time should keep including the
// per-layer headers directly; this header is for examples, benches and
// application code, where convenience beats minimality. Every include
// below carries an IWYU export pragma, so include-what-you-use treats
// the umbrella as the provider of all of them.
#pragma once

// ---- foundation ---------------------------------------------------------
#include "util/expected.hpp"     // IWYU pragma: export
#include "util/rng.hpp"          // IWYU pragma: export
#include "util/cli.hpp"          // IWYU pragma: export
#include "util/table.hpp"        // IWYU pragma: export
#include "util/csv.hpp"          // IWYU pragma: export
#include "util/ascii_plot.hpp"   // IWYU pragma: export

// ---- execution runtime --------------------------------------------------
#include "exec/exec.hpp"         // IWYU pragma: export
#include "exec/thread_pool.hpp"  // IWYU pragma: export
#include "exec/result_cache.hpp" // IWYU pragma: export
#include "exec/checkpoint.hpp"   // IWYU pragma: export
#include "exec/metrics.hpp"      // IWYU pragma: export

// ---- observability ------------------------------------------------------
#include "obs/trace.hpp"         // IWYU pragma: export
#include "obs/export.hpp"        // IWYU pragma: export

// ---- device physics and circuit engine ----------------------------------
#include "phys/technology.hpp"   // IWYU pragma: export
#include "phys/units.hpp"        // IWYU pragma: export
#include "phys/corners.hpp"      // IWYU pragma: export
#include "spice/simulator.hpp"   // IWYU pragma: export
#include "spice/sim_error.hpp"   // IWYU pragma: export

// ---- cells and the ring oscillator --------------------------------------
#include "cells/cell.hpp"        // IWYU pragma: export
#include "ring/config.hpp"       // IWYU pragma: export
#include "ring/analytic.hpp"     // IWYU pragma: export
#include "ring/spice_ring.hpp"   // IWYU pragma: export
#include "ring/sweep.hpp"        // IWYU pragma: export

// ---- digitization and the sensor ----------------------------------------
#include "digital/smart_unit.hpp"    // IWYU pragma: export
#include "digital/converter.hpp"     // IWYU pragma: export
#include "sensor/smart_sensor.hpp"   // IWYU pragma: export
#include "sensor/presets.hpp"        // IWYU pragma: export
#include "sensor/optimizer.hpp"      // IWYU pragma: export
#include "sensor/monitor.hpp"        // IWYU pragma: export
#include "sensor/site_health.hpp"    // IWYU pragma: export

// ---- thermal environment ------------------------------------------------
#include "thermal/floorplan.hpp"     // IWYU pragma: export
#include "thermal/grid.hpp"          // IWYU pragma: export
#include "thermal/self_heating.hpp"  // IWYU pragma: export

// ---- analysis -----------------------------------------------------------
#include "analysis/nonlinearity.hpp" // IWYU pragma: export
#include "analysis/calibration.hpp"  // IWYU pragma: export
#include "analysis/statistics.hpp"   // IWYU pragma: export

// ---- dynamic thermal management -----------------------------------------
#include "dtm/controller.hpp"        // IWYU pragma: export
#include "dtm/closed_loop.hpp"       // IWYU pragma: export
#include "dtm/pid.hpp"               // IWYU pragma: export
#include "dtm/autotune.hpp"          // IWYU pragma: export
#include "dtm/supervisor.hpp"        // IWYU pragma: export
#include "dtm/fleet.hpp"             // IWYU pragma: export

// ---- population-scale variability & lifetime study ----------------------
#include "population/streaming_stats.hpp" // IWYU pragma: export
#include "population/aging.hpp"           // IWYU pragma: export
#include "population/engine.hpp"          // IWYU pragma: export

// ---- the unified configuration facade -----------------------------------
#include "api/runtime_options.hpp"   // IWYU pragma: export
#include "api/population_spec.hpp"   // IWYU pragma: export

// ---- the telemetry service ----------------------------------------------
#include "service/service.hpp"       // IWYU pragma: export
