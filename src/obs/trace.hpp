#pragma once

/// Hierarchical tracing for the stsense runtime.
///
/// The tracer records *spans* — named, nestable intervals on the
/// monotonic clock — into per-thread lock-free buffers, so the record
/// path never takes a lock and never allocates. Recording is globally
/// gated by a single relaxed atomic: with tracing disabled a Span
/// construct/destruct pair costs one load and a branch, cheap enough
/// to leave compiled into the Newton inner loop. Spans carry at most
/// one string tag and one numeric annotation; all strings must be
/// literals (or otherwise outlive the tracer) — the buffers store the
/// pointers, not copies.
///
/// Threading model: each thread that records gets its own fixed-
/// capacity buffer, registered lazily on first use. A writer publishes
/// an event by storing the new size with release order; the exporter
/// reads sizes with acquire, so a post-run merge is race-free without
/// ever blocking a worker. Buffers that fill up drop events (counted).
/// enable()/reset() must only be called while no thread is recording
/// (i.e. between runs, with the pool quiesced) — the normal pattern is
/// one obs::TraceSession wrapping a whole process run.
///
/// Thread ids in the exported trace are logical, not OS ids: pools
/// reserve a contiguous block via reserve_tid_block() so worker K of
/// pool P is stable across runs, which keeps per-thread nesting checks
/// and golden traces deterministic. Unregistered threads (main, tests)
/// draw from a dynamic range starting at kDynamicTidBase.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace stsense::obs {

namespace detail {
/// Global gate, separate from the Tracer singleton so the hot path
/// never touches a function-local-static guard variable.
inline std::atomic<bool> g_trace_enabled{false};
} // namespace detail

/// True when spans are being recorded. Relaxed: a span that straddles
/// an enable/disable edge may be dropped or kept, never torn.
inline bool trace_enabled() noexcept {
    return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// One completed span. POD; string fields point at literals. Up to two
/// string annotations and one numeric annotation.
struct TraceEvent {
    const char* name = nullptr;
    const char* tag_key = nullptr;   ///< first string annotation
    const char* tag_val = nullptr;
    const char* tag2_key = nullptr;  ///< second string annotation
    const char* tag2_val = nullptr;
    const char* num_key = nullptr;   ///< numeric annotation
    double num = 0.0;
    std::uint64_t start_ns = 0;      ///< offset from the session epoch
    std::uint64_t dur_ns = 0;
};

/// A span plus the logical thread it was recorded on (merge output).
struct MergedEvent {
    std::uint32_t tid = 0;
    TraceEvent ev;
};

class Tracer {
public:
    /// Dynamic (non-pool) threads get ids from this base upward, well
    /// clear of any reserved pool block.
    static constexpr std::uint32_t kDynamicTidBase = 1000;

    static Tracer& global();

    /// Starts a recording session: clears all buffers, re-arms lazy
    /// per-thread registration, stamps the epoch, and opens the gate.
    /// Must not race with recording threads.
    void enable();

    /// Closes the gate. Buffers are kept for export until the next
    /// enable()/reset().
    void disable();

    bool enabled() const noexcept { return trace_enabled(); }

    /// Drops all recorded events and thread registrations. Must not
    /// race with recording threads.
    void reset();

    /// Per-thread event capacity for buffers created after the call.
    /// Takes effect at the next enable(); also settable through the
    /// STSENSE_TRACE_CAP environment variable (read by TraceSession).
    void set_capacity_per_thread(std::size_t events);
    std::size_t capacity_per_thread() const;

    /// Reserves `n` consecutive logical thread ids and returns the
    /// first. Pools call this once at construction so their workers
    /// have stable, collision-free tids even with several pools alive.
    static std::uint32_t reserve_tid_block(std::uint32_t n);

    /// Binds the calling thread's logical id and display label, used
    /// when its buffer is (lazily) registered. The label is copied.
    static void set_thread_identity(std::uint32_t tid, std::string label);

    /// Nanoseconds since the session epoch (monotonic).
    std::uint64_t now_ns() const noexcept;

    /// Appends one event to the calling thread's buffer.
    void record(const TraceEvent& ev);

    /// Snapshot of every recorded span, sorted deterministically:
    /// (start_ns, dur_ns descending, tid, name). The descending-
    /// duration tiebreak puts a parent before children that start on
    /// the same clock tick.
    std::vector<MergedEvent> merged() const;

    /// (tid, label) for every registered thread, sorted by tid.
    std::vector<std::pair<std::uint32_t, std::string>> thread_labels() const;

    /// Events discarded because a per-thread buffer filled up.
    std::uint64_t dropped() const;

private:
    struct ThreadBuffer {
        ThreadBuffer(std::uint32_t tid, std::string label, std::size_t cap)
            : tid(tid), label(std::move(label)), events(cap) {}
        const std::uint32_t tid;
        const std::string label;
        std::vector<TraceEvent> events;  ///< fixed capacity, never resized
        std::atomic<std::size_t> size{0};
        std::atomic<std::uint64_t> dropped{0};
    };

    Tracer() = default;
    ThreadBuffer* register_this_thread();

    mutable std::mutex mutex_;  ///< guards buffers_ / dynamic_tid_ / capacity_
    std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
    std::uint32_t dynamic_tid_ = kDynamicTidBase;
    std::size_t capacity_ = 1u << 17;
    /// Bumped by reset(); invalidates every thread's cached buffer.
    std::atomic<std::uint64_t> generation_{1};
    std::atomic<std::uint64_t> epoch_ns_{0};
};

/// RAII span. Construct names the interval, destruct records it.
/// Cheap no-op when tracing is disabled.
class Span {
public:
    explicit Span(const char* name) noexcept {
        if (!trace_enabled()) return;
        active_ = true;
        ev_.name = name;
        ev_.start_ns = Tracer::global().now_ns();
    }
    ~Span() {
        if (!active_) return;
        ev_.dur_ns = Tracer::global().now_ns() - ev_.start_ns;
        Tracer::global().record(ev_);
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    /// Attaches a string annotation (both arguments must be literals).
    /// The first two calls land in distinct slots; a repeated key —
    /// e.g. re-tagging "status" after a retry — overwrites its slot.
    Span& tag(const char* key, const char* value) noexcept {
        if (!active_) return *this;
        if (ev_.tag_key == nullptr || ev_.tag_key == key) {
            ev_.tag_key = key;
            ev_.tag_val = value;
        } else {
            ev_.tag2_key = key;
            ev_.tag2_val = value;
        }
        return *this;
    }
    /// Attaches a numeric annotation (key must be a literal).
    Span& num(const char* key, double value) noexcept {
        if (active_) {
            ev_.num_key = key;
            ev_.num = value;
        }
        return *this;
    }
    bool active() const noexcept { return active_; }

private:
    TraceEvent ev_{};
    bool active_ = false;
};

} // namespace stsense::obs

#define STSENSE_OBS_CONCAT2(a, b) a##b
#define STSENSE_OBS_CONCAT(a, b) STSENSE_OBS_CONCAT2(a, b)
/// Anonymous scope-level span: `OBS_SPAN("ring.sweep.point");`
#define OBS_SPAN(name) \
    ::stsense::obs::Span STSENSE_OBS_CONCAT(obs_span_, __COUNTER__)(name)
/// Anonymous scope-level span with one string tag attached at open:
/// `OBS_SPAN_TAG("dtm.fleet.step", "mode", "supervised");` — both key
/// and value must be literals, like Span::tag itself.
#define OBS_SPAN_TAG(name, key, value)                                  \
    ::stsense::obs::Span STSENSE_OBS_CONCAT(obs_span_, __LINE__)(name); \
    STSENSE_OBS_CONCAT(obs_span_, __LINE__).tag(key, value)
