#pragma once

/// Post-run trace export: Chrome `chrome://tracing` / Perfetto JSON,
/// plus a per-span-name aggregate table (count / total / mean / p95)
/// in the same JSON shape the exec metrics dump uses, so benches can
/// splice it into their metrics file.

#include "obs/trace.hpp"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace stsense::obs {

/// Summary of every span that shared a name.
struct SpanAggregate {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    double mean_ns = 0.0;
    std::uint64_t p95_ns = 0;  ///< ceil-rank 95th percentile of duration
};

/// Aggregates merged events by name; result sorted by name.
std::vector<SpanAggregate> aggregate_spans(const std::vector<MergedEvent>& evs);

/// Writes the full Chrome trace-event JSON ("X" complete events with
/// microsecond timestamps carrying exact nanosecond precision as three
/// decimals, plus "M" thread-name metadata).
void write_chrome_trace(std::ostream& os, const Tracer& tracer);

/// Convenience: write_chrome_trace to a file. Returns false (and
/// leaves no partial file behind) on I/O failure.
bool write_chrome_trace_file(const std::string& path, const Tracer& tracer);

/// `{"spice.transient":{"count":..,"total_ns":..,"mean_ns":..,"p95_ns":..},..}`
/// — the aggregate table as a JSON object, for splicing into the
/// metrics dump via exec::MetricsRegistry::to_json_with("spans", ...).
std::string spans_json(const Tracer& tracer);

/// One recording session: arms the tracer on construction when a trace
/// path is configured, and on destruction (or finish()) stops tracing
/// and writes the Chrome JSON. The path is the constructor argument if
/// non-empty, else the STSENSE_TRACE environment variable; when both
/// are empty the session is inert and tracing stays off. The optional
/// STSENSE_TRACE_CAP variable overrides the per-thread event capacity.
class TraceSession {
public:
    explicit TraceSession(std::string path = "");
    ~TraceSession();
    TraceSession(const TraceSession&) = delete;
    TraceSession& operator=(const TraceSession&) = delete;

    bool active() const noexcept { return active_; }
    const std::string& path() const noexcept { return path_; }

    /// Stops recording and writes the trace file. Idempotent; returns
    /// true when the file was written (or the session was inert).
    bool finish();

private:
    std::string path_;
    bool active_ = false;
    bool finished_ = false;
};

} // namespace stsense::obs
