#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

namespace stsense::obs {

namespace {

/// Span names and labels are literals under our control, but escape
/// anyway so a malformed label can never corrupt the JSON.
void append_json_string(std::string& out, const std::string& s) {
    out += '"';
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

/// Nanoseconds rendered as microseconds with exactly three decimals:
/// "12.345". Exact (no floating point), so a consumer can recover the
/// integer nanosecond value with round(us * 1000).
void append_us(std::string& out, std::uint64_t ns) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu.%03llu",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned long long>(ns % 1000));
    out += buf;
}

void append_double(std::string& out, double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
}

} // namespace

std::vector<SpanAggregate> aggregate_spans(
    const std::vector<MergedEvent>& evs) {
    struct Acc {
        std::uint64_t total = 0;
        std::vector<std::uint64_t> durs;
    };
    std::map<std::string, Acc> by_name;
    for (const auto& me : evs) {
        auto& acc = by_name[me.ev.name];
        acc.total += me.ev.dur_ns;
        acc.durs.push_back(me.ev.dur_ns);
    }
    std::vector<SpanAggregate> out;
    out.reserve(by_name.size());
    for (auto& [name, acc] : by_name) {
        SpanAggregate agg;
        agg.name = name;
        agg.count = acc.durs.size();
        agg.total_ns = acc.total;
        agg.mean_ns = static_cast<double>(acc.total) /
                      static_cast<double>(acc.durs.size());
        std::sort(acc.durs.begin(), acc.durs.end());
        const std::size_t n = acc.durs.size();
        const std::size_t rank = (95 * n + 99) / 100;  // ceil(0.95 n), 1-based
        agg.p95_ns = acc.durs[rank - 1];
        out.push_back(std::move(agg));
    }
    return out;
}

void write_chrome_trace(std::ostream& os, const Tracer& tracer) {
    const auto events = tracer.merged();
    const auto labels = tracer.thread_labels();

    std::string out;
    out.reserve(events.size() * 96 + 4096);
    out += "{\"traceEvents\":[\n";
    bool first = true;
    for (const auto& [tid, label] : labels) {
        if (!first) out += ",\n";
        first = false;
        out += "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(tid) +
               ",\"name\":\"thread_name\",\"args\":{\"name\":";
        append_json_string(out, label);
        out += "}}";
    }
    for (const auto& me : events) {
        if (!first) out += ",\n";
        first = false;
        out += "{\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(me.tid) +
               ",\"name\":";
        append_json_string(out, me.ev.name);
        out += ",\"cat\":\"stsense\",\"ts\":";
        append_us(out, me.ev.start_ns);
        out += ",\"dur\":";
        append_us(out, me.ev.dur_ns);
        if (me.ev.tag_key != nullptr || me.ev.tag2_key != nullptr ||
            me.ev.num_key != nullptr) {
            out += ",\"args\":{";
            bool first_arg = true;
            auto put_tag = [&](const char* key, const char* val) {
                if (key == nullptr) return;
                if (!first_arg) out += ',';
                first_arg = false;
                append_json_string(out, key);
                out += ':';
                append_json_string(out, val ? val : "");
            };
            put_tag(me.ev.tag_key, me.ev.tag_val);
            put_tag(me.ev.tag2_key, me.ev.tag2_val);
            if (me.ev.num_key != nullptr) {
                if (!first_arg) out += ',';
                append_json_string(out, me.ev.num_key);
                out += ':';
                append_double(out, me.ev.num);
            }
            out += '}';
        }
        out += '}';
    }
    out += "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":" +
           std::to_string(tracer.dropped()) + "}}\n";
    os << out;
}

bool write_chrome_trace_file(const std::string& path, const Tracer& tracer) {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) return false;
    write_chrome_trace(os, tracer);
    os.flush();
    if (!os) {
        os.close();
        std::remove(path.c_str());
        return false;
    }
    return true;
}

std::string spans_json(const Tracer& tracer) {
    const auto aggs = aggregate_spans(tracer.merged());
    std::string out = "{";
    bool first = true;
    for (const auto& agg : aggs) {
        if (!first) out += ',';
        first = false;
        append_json_string(out, agg.name);
        out += ":{\"count\":" + std::to_string(agg.count) +
               ",\"total_ns\":" + std::to_string(agg.total_ns) +
               ",\"mean_ns\":";
        append_double(out, agg.mean_ns);
        out += ",\"p95_ns\":" + std::to_string(agg.p95_ns) + '}';
    }
    out += '}';
    return out;
}

TraceSession::TraceSession(std::string path) : path_(std::move(path)) {
    if (path_.empty()) {
        if (const char* env = std::getenv("STSENSE_TRACE");
            env != nullptr && env[0] != '\0') {
            path_ = env;
        }
    }
    if (path_.empty()) return;
    if (const char* cap = std::getenv("STSENSE_TRACE_CAP");
        cap != nullptr && cap[0] != '\0') {
        const long v = std::strtol(cap, nullptr, 10);
        if (v > 0) {
            Tracer::global().set_capacity_per_thread(
                static_cast<std::size_t>(v));
        }
    }
    Tracer::global().enable();
    active_ = true;
}

TraceSession::~TraceSession() { finish(); }

bool TraceSession::finish() {
    if (finished_) return true;
    finished_ = true;
    if (!active_) return true;
    Tracer::global().disable();
    return write_chrome_trace_file(path_, Tracer::global());
}

} // namespace stsense::obs
