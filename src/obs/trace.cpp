#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>

namespace stsense::obs {

namespace {

/// Identity a thread asked for before its buffer exists. Plain
/// thread_locals: only ever touched by the owning thread.
thread_local std::uint32_t tls_desired_tid = 0;
thread_local std::string tls_desired_label;

/// Cached buffer pointer, invalidated when the tracer's generation
/// moves (reset() between sessions).
struct TlsSlot {
    Tracer* owner = nullptr;
    void* buffer = nullptr;
    std::uint64_t generation = 0;
};
thread_local TlsSlot tls_slot;

std::atomic<std::uint32_t> g_next_pool_tid{1};

std::uint64_t steady_now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

Tracer& Tracer::global() {
    static Tracer tracer;
    return tracer;
}

void Tracer::enable() {
    if (enabled()) return;
    reset();
    epoch_ns_.store(steady_now_ns(), std::memory_order_relaxed);
    detail::g_trace_enabled.store(true, std::memory_order_release);
}

void Tracer::disable() {
    detail::g_trace_enabled.store(false, std::memory_order_release);
}

void Tracer::reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    buffers_.clear();
    dynamic_tid_ = kDynamicTidBase;
    // Release pairs with the acquire in record(): a thread that sees
    // the new generation also sees the cleared registry.
    generation_.fetch_add(1, std::memory_order_release);
}

void Tracer::set_capacity_per_thread(std::size_t events) {
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = events == 0 ? 1 : events;
}

std::size_t Tracer::capacity_per_thread() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return capacity_;
}

std::uint32_t Tracer::reserve_tid_block(std::uint32_t n) {
    return g_next_pool_tid.fetch_add(n, std::memory_order_relaxed);
}

void Tracer::set_thread_identity(std::uint32_t tid, std::string label) {
    tls_desired_tid = tid;
    tls_desired_label = std::move(label);
    // Force re-registration so a recycled pool slot picks up the new
    // identity even if this thread recorded under an old one.
    tls_slot.buffer = nullptr;
}

std::uint64_t Tracer::now_ns() const noexcept {
    return steady_now_ns() - epoch_ns_.load(std::memory_order_relaxed);
}

Tracer::ThreadBuffer* Tracer::register_this_thread() {
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint32_t tid = tls_desired_tid;
    std::string label = tls_desired_label;
    if (tid == 0) {
        tid = dynamic_tid_++;
    }
    if (label.empty()) {
        label = "thread-" + std::to_string(tid);
    }
    buffers_.push_back(
        std::make_unique<ThreadBuffer>(tid, std::move(label), capacity_));
    return buffers_.back().get();
}

void Tracer::record(const TraceEvent& ev) {
    TlsSlot& slot = tls_slot;
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (slot.buffer == nullptr || slot.owner != this || slot.generation != gen) {
        slot.owner = this;
        slot.buffer = register_this_thread();
        slot.generation = gen;
    }
    auto* buf = static_cast<ThreadBuffer*>(slot.buffer);
    const std::size_t n = buf->size.load(std::memory_order_relaxed);
    if (n >= buf->events.size()) {
        buf->dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    buf->events[n] = ev;
    buf->size.store(n + 1, std::memory_order_release);
}

std::vector<MergedEvent> Tracer::merged() const {
    std::vector<MergedEvent> out;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto& buf : buffers_) {
            const std::size_t n = buf->size.load(std::memory_order_acquire);
            for (std::size_t i = 0; i < n; ++i) {
                out.push_back({buf->tid, buf->events[i]});
            }
        }
    }
    std::sort(out.begin(), out.end(),
              [](const MergedEvent& a, const MergedEvent& b) {
                  if (a.ev.start_ns != b.ev.start_ns)
                      return a.ev.start_ns < b.ev.start_ns;
                  // Parent before child when both start on the same tick.
                  if (a.ev.dur_ns != b.ev.dur_ns)
                      return a.ev.dur_ns > b.ev.dur_ns;
                  if (a.tid != b.tid) return a.tid < b.tid;
                  return std::strcmp(a.ev.name, b.ev.name) < 0;
              });
    return out;
}

std::vector<std::pair<std::uint32_t, std::string>>
Tracer::thread_labels() const {
    std::vector<std::pair<std::uint32_t, std::string>> out;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out.reserve(buffers_.size());
        for (const auto& buf : buffers_) {
            out.emplace_back(buf->tid, buf->label);
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::uint64_t Tracer::dropped() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const auto& buf : buffers_) {
        total += buf->dropped.load(std::memory_order_relaxed);
    }
    return total;
}

} // namespace stsense::obs
