#include "baseline/diode_sensor.hpp"

#include "phys/units.hpp"

#include <stdexcept>

namespace stsense::baseline {

DiodeTemperatureSensor::DiodeTemperatureSensor(DiodeSensorConfig config)
    : config_(config),
      adc_(config.adc_bits, config.adc_vmin, config.adc_vmax,
           config.adc_noise_v) {
    if (config_.i_high <= config_.i_low || config_.i_low <= 0.0) {
        throw std::invalid_argument("DiodeTemperatureSensor: need i_high > i_low > 0");
    }
}

std::uint32_t DiodeTemperatureSensor::code_at(double temp_c) const {
    const double v = ptat_voltage(config_.diode, config_.i_high, config_.i_low,
                                  phys::celsius_to_kelvin(temp_c));
    return adc_.convert(v);
}

void DiodeTemperatureSensor::calibrate(double t_low_c, double t_high_c) {
    if (t_high_c <= t_low_c) {
        throw std::invalid_argument("calibrate: t_high must be > t_low");
    }
    const analysis::CalibrationPoint a{t_low_c, static_cast<double>(code_at(t_low_c))};
    const analysis::CalibrationPoint b{t_high_c, static_cast<double>(code_at(t_high_c))};
    cal_ = analysis::LinearCalibration::two_point(a, b);
    calibrated_ = true;
}

DiodeMeasurement DiodeTemperatureSensor::finish(double temp_c,
                                                std::uint32_t code) const {
    if (!calibrated_) {
        throw std::logic_error("DiodeTemperatureSensor: measure before calibrate");
    }
    DiodeMeasurement m;
    m.ptat_v = ptat_voltage(config_.diode, config_.i_high, config_.i_low,
                            phys::celsius_to_kelvin(temp_c));
    m.code = code;
    m.temperature_c = cal_.temperature(static_cast<double>(code));
    return m;
}

DiodeMeasurement DiodeTemperatureSensor::measure(double temp_c) const {
    return finish(temp_c, code_at(temp_c));
}

DiodeMeasurement DiodeTemperatureSensor::measure(double temp_c,
                                                 util::Rng& rng) const {
    const double v = ptat_voltage(config_.diode, config_.i_high, config_.i_low,
                                  phys::celsius_to_kelvin(temp_c));
    return finish(temp_c, adc_.convert(v, rng));
}

} // namespace stsense::baseline
