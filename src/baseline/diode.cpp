#include "baseline/diode.hpp"

#include "phys/units.hpp"

#include <cmath>
#include <stdexcept>

namespace stsense::baseline {

double saturation_current(const DiodeParams& p, double temp_k) {
    if (temp_k <= 0.0) throw std::invalid_argument("diode: temp must be > 0");
    const double vt = phys::thermal_voltage(temp_k);
    const double vt0 = phys::thermal_voltage(p.t0);
    // Is(T) = Is0 * (T/T0)^xti * exp(Eg/Vt0 - Eg/Vt) (per-unit-charge Eg in V).
    return p.is0 * std::pow(temp_k / p.t0, p.xti) *
           std::exp(p.eg_ev / vt0 - p.eg_ev / vt);
}

double forward_voltage(const DiodeParams& p, double current_a, double temp_k) {
    if (current_a <= 0.0) throw std::invalid_argument("diode: current must be > 0");
    const double is = saturation_current(p, temp_k);
    return p.eta * phys::thermal_voltage(temp_k) * std::log(current_a / is);
}

double ptat_voltage(const DiodeParams& p, double i_high, double i_low,
                    double temp_k) {
    if (i_high <= i_low || i_low <= 0.0) {
        throw std::invalid_argument("diode: need i_high > i_low > 0");
    }
    return p.eta * phys::thermal_voltage(temp_k) * std::log(i_high / i_low);
}

} // namespace stsense::baseline
