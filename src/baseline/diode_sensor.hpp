// End-to-end diode temperature sensor: PTAT front-end + ADC + linear
// code-to-temperature map, mirroring the interface of the ring-based
// SmartTemperatureSensor so the comparison bench treats both uniformly.
#pragma once

#include "analysis/calibration.hpp"
#include "baseline/adc.hpp"
#include "baseline/diode.hpp"

#include <cstdint>

namespace stsense::baseline {

/// Configuration of the diode sensor channel.
struct DiodeSensorConfig {
    DiodeParams diode;
    double i_high = 10.0e-6; ///< High bias current [A].
    double i_low = 1.0e-6;   ///< Low bias current [A].
    int adc_bits = 12;
    double adc_vmin = 0.0;
    double adc_vmax = 0.15;  ///< PTAT full scale [V].
    double adc_noise_v = 0.0;
};

/// One measurement outcome.
struct DiodeMeasurement {
    double ptat_v = 0.0;       ///< Analogue front-end output [V].
    std::uint32_t code = 0;    ///< ADC code.
    double temperature_c = 0.0;///< Converted temperature estimate [deg C].
};

class DiodeTemperatureSensor {
public:
    explicit DiodeTemperatureSensor(DiodeSensorConfig config = {});

    /// Two-point calibration at the given reference temperatures (noise-
    /// free calibration conversions, as in a production trim).
    void calibrate(double t_low_c, double t_high_c);

    /// Measures at true junction temperature `temp_c`. Requires
    /// calibrate() first; throws std::logic_error otherwise.
    DiodeMeasurement measure(double temp_c) const;

    /// Measurement with ADC noise drawn from `rng`.
    DiodeMeasurement measure(double temp_c, util::Rng& rng) const;

    const DiodeSensorConfig& config() const { return config_; }
    bool calibrated() const { return calibrated_; }

private:
    std::uint32_t code_at(double temp_c) const;
    DiodeMeasurement finish(double temp_c, std::uint32_t code) const;

    DiodeSensorConfig config_;
    Adc adc_;
    analysis::LinearCalibration cal_;
    bool calibrated_ = false;
};

} // namespace stsense::baseline
