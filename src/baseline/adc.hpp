// Ideal N-bit ADC model with optional input-referred noise, used to
// digitize the diode baseline's analogue output (the conversion step the
// paper identifies as a drawback of analogue sensors in cell-based
// flows).
#pragma once

#include "util/rng.hpp"

#include <cstdint>

namespace stsense::baseline {

/// Uniform quantizer over [v_min, v_max] with 2^bits levels.
class Adc {
public:
    /// Preconditions: 1 <= bits <= 24, v_max > v_min, noise >= 0.
    Adc(int bits, double v_min, double v_max, double noise_v_rms = 0.0);

    /// Converts a voltage to a code; clips outside the input range.
    /// Noise (if configured) is drawn from `rng`.
    std::uint32_t convert(double volts, util::Rng& rng) const;

    /// Noise-free conversion.
    std::uint32_t convert(double volts) const;

    /// Center voltage of a code's quantization bin.
    double code_to_voltage(std::uint32_t code) const;

    int bits() const { return bits_; }
    std::uint32_t max_code() const { return (1u << bits_) - 1; }
    double lsb() const { return lsb_; }

private:
    int bits_;
    double v_min_;
    double v_max_;
    double noise_v_rms_;
    double lsb_;
};

} // namespace stsense::baseline
