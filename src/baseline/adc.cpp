#include "baseline/adc.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace stsense::baseline {

Adc::Adc(int bits, double v_min, double v_max, double noise_v_rms)
    : bits_(bits), v_min_(v_min), v_max_(v_max), noise_v_rms_(noise_v_rms) {
    if (bits < 1 || bits > 24) throw std::invalid_argument("Adc: bits out of [1, 24]");
    if (v_max <= v_min) throw std::invalid_argument("Adc: v_max must be > v_min");
    if (noise_v_rms < 0.0) throw std::invalid_argument("Adc: negative noise");
    lsb_ = (v_max_ - v_min_) / static_cast<double>(1u << bits_);
}

std::uint32_t Adc::convert(double volts, util::Rng& rng) const {
    const double noisy = noise_v_rms_ > 0.0 ? volts + rng.normal(0.0, noise_v_rms_)
                                            : volts;
    return convert(noisy);
}

std::uint32_t Adc::convert(double volts) const {
    const double clipped = std::clamp(volts, v_min_, v_max_);
    const double idx = (clipped - v_min_) / lsb_;
    const std::uint32_t code = static_cast<std::uint32_t>(idx);
    return std::min(code, max_code());
}

double Adc::code_to_voltage(std::uint32_t code) const {
    const std::uint32_t c = std::min(code, max_code());
    return v_min_ + (static_cast<double>(c) + 0.5) * lsb_;
}

} // namespace stsense::baseline
