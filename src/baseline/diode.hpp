// Diode / BJT junction temperature transducer — the classical analogue
// sensor the paper contrasts with (Pentium 4 thermal diode, PowerPC
// Thermal Assist Unit). Implemented so the comparison bench can actually
// run both sensor styles on the same temperature sweep.
//
// Physics: V_D = eta * (kT/q) * ln(I / Is(T)), with the saturation
// current Is(T) = Is0 * (T/T0)^xti * exp(-Eg*q/(k*T) + Eg*q/(k*T0)).
// A single junction gives ~ -1.6 mV/K with mild curvature; the
// difference of two junction voltages at different bias currents is the
// ideally linear PTAT voltage delta_V = eta*(kT/q)*ln(I1/I2).
#pragma once

namespace stsense::baseline {

/// Junction model parameters.
struct DiodeParams {
    double is0 = 1.0e-15;   ///< Saturation current at t0 [A].
    double eta = 1.006;     ///< Ideality factor.
    double xti = 3.0;       ///< Saturation-current temperature exponent.
    double eg_ev = 1.12;    ///< Bandgap [eV].
    double t0 = 300.0;      ///< Reference temperature [K].
};

/// Saturation current at `temp_k` [A].
double saturation_current(const DiodeParams& p, double temp_k);

/// Forward voltage at bias `current_a` and `temp_k` [V].
/// Preconditions: current_a > 0, temp_k > 0.
double forward_voltage(const DiodeParams& p, double current_a, double temp_k);

/// PTAT voltage: V(i_high) - V(i_low) at `temp_k` [V]. Linear in T by
/// construction; the canonical bandgap-sensor core.
double ptat_voltage(const DiodeParams& p, double i_high, double i_low,
                    double temp_k);

} // namespace stsense::baseline
