#include "api/population_spec.hpp"

#include <utility>

namespace stsense {

PopulationSpec& PopulationSpec::technology(phys::Technology tech) {
    config_.tech = std::move(tech);
    return *this;
}

PopulationSpec& PopulationSpec::ring(ring::RingConfig config) {
    config_.ring = std::move(config);
    return *this;
}

PopulationSpec& PopulationSpec::dice(std::uint64_t n) {
    config_.dice = n;
    return *this;
}

PopulationSpec& PopulationSpec::shard(std::size_t size) {
    config_.shard_size = size;
    return *this;
}

PopulationSpec& PopulationSpec::seed(std::uint64_t seed) {
    config_.seed = seed;
    return *this;
}

PopulationSpec& PopulationSpec::corner(phys::Corner corner) {
    config_.corner = corner;
    return *this;
}

PopulationSpec& PopulationSpec::variation(phys::VariationSpec spec) {
    config_.variation = spec;
    return *this;
}

PopulationSpec& PopulationSpec::vth_sigma(double sigma_v) {
    config_.variation.vth_sigma = sigma_v;
    return *this;
}

PopulationSpec& PopulationSpec::kp_sigma(double rel_sigma) {
    config_.variation.kp_rel_sigma = rel_sigma;
    return *this;
}

PopulationSpec& PopulationSpec::supply_sigma(double rel_sigma) {
    config_.variation.vdd_rel_sigma = rel_sigma;
    return *this;
}

PopulationSpec& PopulationSpec::correlated(bool on) {
    config_.variation.correlated_np = on;
    return *this;
}

PopulationSpec& PopulationSpec::mismatch(ring::MismatchSpec spec) {
    config_.mismatch = spec;
    return *this;
}

PopulationSpec& PopulationSpec::aging(double vth_drift_v,
                                      double drive_degradation_rel,
                                      double rate_sigma_ln) {
    config_.aging.vth_drift_v = vth_drift_v;
    config_.aging.drive_degradation_rel = drive_degradation_rel;
    config_.aging.rate_sigma_ln = rate_sigma_ln;
    return *this;
}

PopulationSpec& PopulationSpec::aging(population::AgingSpec spec) {
    config_.aging = spec;
    return *this;
}

PopulationSpec& PopulationSpec::horizon_hours(double hours) {
    config_.horizon_hours = hours;
    return *this;
}

PopulationSpec& PopulationSpec::recalibration(double interval_hours,
                                              double temp_c) {
    config_.recal.policy = interval_hours > 0.0
                               ? population::RecalPolicy::Periodic
                               : population::RecalPolicy::Never;
    config_.recal.interval_hours = interval_hours > 0.0 ? interval_hours : 0.0;
    config_.recal.temp_c = temp_c;
    return *this;
}

PopulationSpec& PopulationSpec::calibration(
    population::CalibrationPolicy policy) {
    config_.calibration = policy;
    return *this;
}

PopulationSpec& PopulationSpec::calibration_temps(double low_c, double high_c,
                                                  double one_point_c) {
    config_.cal_low_c = low_c;
    config_.cal_high_c = high_c;
    config_.cal_one_point_c = one_point_c;
    return *this;
}

PopulationSpec& PopulationSpec::test_temps(std::vector<double> temps_c) {
    config_.test_temps_c = std::move(temps_c);
    return *this;
}

PopulationSpec& PopulationSpec::quantiles(std::vector<double> ps) {
    config_.quantiles = std::move(ps);
    return *this;
}

PopulationSpec& PopulationSpec::yield_limit_c(double limit) {
    config_.yield_limit_c = limit;
    return *this;
}

PopulationSpec& PopulationSpec::gate(digital::GateConfig config) {
    config_.gate = config;
    return *this;
}

PopulationSpec& PopulationSpec::engine(population::PeriodEngine engine) {
    config_.engine = engine;
    return *this;
}

const PopulationSpec& PopulationSpec::validate() const {
    population::validate(config_);
    return *this;
}

population::PopulationConfig PopulationSpec::config() const {
    validate();
    return config_;
}

std::uint64_t PopulationSpec::fingerprint() const {
    validate();
    return population::population_fingerprint(config_);
}

population::PopulationResult PopulationSpec::run(
    const RuntimeOptions& rt, population::ProgressFn on_shard) const {
    rt.validate();
    population::PopulationConfig cfg = config(); // Validates the spec.
    if (cfg.engine == population::PeriodEngine::Spice) {
        cfg.spice = rt.spice_ring_options();
    }

    population::PopulationRuntime prt;
    prt.pool = rt.pool();
    prt.parallel = rt.parallel_enabled();
    prt.checkpoint_path = rt.checkpoint_path();
    if (rt.checkpoint_flush_every() > 0) {
        prt.checkpoint_every =
            static_cast<std::size_t>(rt.checkpoint_flush_every());
    }
    prt.keep_checkpoint = rt.checkpoint_kept();
    prt.cancel = rt.effective_cancel();
    prt.on_shard = std::move(on_shard);
    return population::run_population(cfg, prt);
}

} // namespace stsense
