// stsense::PopulationSpec — the fluent front door of the population
// Monte-Carlo engine.
//
// population::PopulationConfig is the engine's exhaustive description:
// ~25 fields across five sub-structs. Composing one by hand for the
// common studies (sweep a calibration budget, turn one knob) buries the
// intent under plumbing. PopulationSpec is the builder that mirrors
// RuntimeOptions style: chainable setters for the knobs an experiment
// actually varies, one validate() naming the first offending field, and
// projections down to the engine — config() for inspection, run() to
// execute against a RuntimeOptions (which contributes the pool,
// checkpointing, cancellation, and — for the Spice engine — the tuned
// fast-kernel options):
//
//     auto result = stsense::PopulationSpec()
//                       .dice(100000)
//                       .calibration(population::CalibrationPolicy::OnePoint)
//                       .aging(0.03, 0.05)
//                       .horizon_hours(20000)
//                       .recalibration(5000)
//                       .run(stsense::RuntimeOptions().threads(8));
#pragma once

#include "api/runtime_options.hpp"
#include "population/engine.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace stsense {

class PopulationSpec {
public:
    PopulationSpec() = default;

    // ---- fluent knobs ---------------------------------------------------

    /// Nominal process node of the population.
    PopulationSpec& technology(phys::Technology tech);

    /// Ring configuration every die instantiates.
    PopulationSpec& ring(ring::RingConfig config);

    /// Population size (1 .. 10^7; the engine streams, so memory stays
    /// O(shard)).
    PopulationSpec& dice(std::uint64_t n);

    /// Dice per checkpoint shard (the resume granularity).
    PopulationSpec& shard(std::size_t size);

    /// Root seed of every per-die substream.
    PopulationSpec& seed(std::uint64_t seed);

    /// Shared process corner of the whole population.
    PopulationSpec& corner(phys::Corner corner);

    /// Full die-to-die variation spec.
    PopulationSpec& variation(phys::VariationSpec spec);

    /// Shorthand for the two headline variation sigmas.
    PopulationSpec& vth_sigma(double sigma_v);
    PopulationSpec& kp_sigma(double rel_sigma);

    /// Relative supply sigma (0 = ideal supply).
    PopulationSpec& supply_sigma(double rel_sigma);

    /// Draw one deviate for both device types (correlated N/P).
    PopulationSpec& correlated(bool on);

    /// Within-die stage mismatch (drive and Vth per stage).
    PopulationSpec& mismatch(ring::MismatchSpec spec);

    /// Aging law: Vth drift and relative drive loss at t0_hours, with an
    /// optional lognormal per-die rate sigma.
    PopulationSpec& aging(double vth_drift_v, double drive_degradation_rel,
                          double rate_sigma_ln = 0.0);
    PopulationSpec& aging(population::AgingSpec spec);

    /// Lifetime horizon the aged metrics evaluate at.
    PopulationSpec& horizon_hours(double hours);

    /// Periodic one-point recalibration every `interval_hours` at
    /// `temp_c`. interval_hours <= 0 selects RecalPolicy::Never.
    PopulationSpec& recalibration(double interval_hours, double temp_c = 60.0);

    /// Per-die calibration budget.
    PopulationSpec& calibration(population::CalibrationPolicy policy);

    /// Calibration temperatures (two-point low/high, one-point trim).
    PopulationSpec& calibration_temps(double low_c, double high_c,
                                      double one_point_c);

    /// Temperatures the accuracy metrics evaluate at.
    PopulationSpec& test_temps(std::vector<double> temps_c);

    /// Quantiles tracked per metric, each in (0, 1).
    PopulationSpec& quantiles(std::vector<double> ps);

    /// Yield criterion: a die yields when max |error| <= limit.
    PopulationSpec& yield_limit_c(double limit);

    /// Counter gate of every die's smart unit.
    PopulationSpec& gate(digital::GateConfig config);

    /// Period engine (Analytic default; Spice takes its options from
    /// the RuntimeOptions handed to run()).
    PopulationSpec& engine(population::PeriodEngine engine);

    // ---- validation / projection ----------------------------------------

    /// The single validation point: throws std::invalid_argument naming
    /// the first offending field (delegates to population::validate).
    const PopulationSpec& validate() const;

    /// The full engine config this spec describes (validated).
    population::PopulationConfig config() const;

    /// Content fingerprint of config() — the checkpoint/resume key.
    std::uint64_t fingerprint() const;

    /// Runs the study. `rt` contributes pool/parallel, the checkpoint
    /// knobs, the effective cancel token, and (Spice engine only) the
    /// spice ring options; `on_shard` observes live progress after each
    /// folded shard. Arm tracing via rt.trace_session() at the call
    /// site, as with the other workloads.
    population::PopulationResult run(const RuntimeOptions& rt = {},
                                     population::ProgressFn on_shard = {}) const;

private:
    population::PopulationConfig config_;
};

} // namespace stsense
