// stsense::RuntimeOptions — the one place execution knobs live.
//
// Four runtime-config structs grew up independently as the layers did:
// ring::SweepRuntime (pool/cache/fault/checkpoint of one sweep),
// sensor::OptimizerRuntime (the same knobs for candidate fan-out),
// sensor::MonitorConfig (health supervision + redundancy of a scan),
// and spice::TransientOptions (the fast-kernel toggles). Configuring a
// whole experiment meant filling all four by hand and keeping their
// overlapping fields (fault policy, checkpoint path, pool) agreeing.
//
// RuntimeOptions is the builder that owns every knob once, validates
// them in one place, and projects the per-layer structs on demand:
//
//     auto rt = stsense::RuntimeOptions()
//                   .threads(8)
//                   .fault_policy(ring::FaultPolicy::Retry)
//                   .fast_kernel(true)
//                   .checkpoint("run.ckpt")
//                   .trace("run_trace.json");
//     auto session = rt.trace_session();          // arms obs tracing
//     auto sweep = ring::paper_sweep(tech, cfg, engine, rt.spice_ring_options(),
//                                    rt.sweep_runtime());
//
// The per-layer structs remain the real API of their layers; this
// header only aggregates. A RuntimeOptions that created its own pool
// (threads(n) with n > 0) must outlive every projected struct that
// points at it.
#pragma once

#include "exec/thread_pool.hpp"
#include "obs/export.hpp"
#include "ring/spice_ring.hpp"
#include "ring/sweep.hpp"
#include "sensor/monitor.hpp"
#include "sensor/optimizer.hpp"
#include "spice/simulator.hpp"

#include <memory>
#include <optional>
#include <string>

namespace stsense {

class RuntimeOptions {
public:
    RuntimeOptions() = default;

    // ---- fluent knobs ---------------------------------------------------

    /// Worker threads for the parallel paths. 0 (default) uses the
    /// process-global pool (honors STSENSE_THREADS); n > 0 makes this
    /// RuntimeOptions own a dedicated pool of n workers, created
    /// lazily on first projection.
    RuntimeOptions& threads(int n);

    /// false forces every fan-out onto the calling thread (the serial
    /// reference path the determinism tests compare against).
    RuntimeOptions& parallel(bool on);

    /// Whole-sweep memoization through exec::ResultCache.
    RuntimeOptions& use_cache(bool on);

    /// Crash-safe checkpoint/resume for sweeps and optimizer searches.
    /// An empty path (default) disables checkpointing. `every` is the
    /// completed-work flush interval (<= 0 keeps each layer's default);
    /// `keep` retains the file after a completed run.
    RuntimeOptions& checkpoint(std::string path, int every = 0,
                               bool keep = false);

    /// Per-point failure handling of sweeps (and the optimizer's inner
    /// sweeps). Mirrors ring::FaultPolicySpec.
    RuntimeOptions& fault_policy(ring::FaultPolicy policy, int max_retries = 2,
                                 double retry_steps_factor = 2.0);

    /// The tuned fast transient path: batched SoA evaluation + device
    /// bypass + banded LU + contraction-gated reuse + lock-step + early
    /// exit (the SpiceRingOptions::fast() / TransientOptions::fast()
    /// presets). The knobs below override individual kernel features on
    /// top of whichever preset this selects.
    RuntimeOptions& fast_kernel(bool on);

    /// Lane-kernel dispatch for the batched evaluator (Auto probes the
    /// CPU; the STSENSE_SIMD environment variable still wins at resolve
    /// time). Applies to both presets — a no-op unless batch_eval is on.
    RuntimeOptions& simd(util::SimdMode mode);

    /// Lock-step width override: how many sweep points advance through
    /// one shared batched evaluator. 0 (default) keeps the selected
    /// preset's width (1 plain / 8 fast); 1 forces solo; >= 2 opts a
    /// default-kernel run into lock-step.
    RuntimeOptions& lockstep(int width);

    /// Batched-SoA-evaluation override on top of the selected preset
    /// (bitwise identical to the per-device loop, so safe everywhere).
    RuntimeOptions& batch_eval(bool on);

    /// Bordered-band-LU override on top of the selected preset (agrees
    /// with dense to rounding, not bitwise — see TransientOptions).
    RuntimeOptions& banded_lu(bool on);

    /// Chrome-trace output path; empty keeps tracing off unless the
    /// STSENSE_TRACE environment variable names a path.
    RuntimeOptions& trace(std::string path);

    /// Resilient monitor readout (SiteHealth supervision) with the
    /// default health config.
    RuntimeOptions& health(bool on);

    /// Resilient monitor readout with an explicit health config.
    RuntimeOptions& health(sensor::SiteHealthConfig config);

    /// Redundant rings per monitor site (quorum voting; 1 disables).
    RuntimeOptions& redundancy(int replicas);

    /// Cooperative cancellation token for sweeps/searches run through
    /// this builder: projected into SweepRuntime/OptimizerRuntime, so
    /// firing it (from any thread) unwinds the workload at its next
    /// poll point as exec::CancelledError — with checkpoints flushed
    /// consistent for bitwise resume. Default: no token (free).
    RuntimeOptions& cancel(exec::CancelToken token);

    /// End-to-end deadline for sweeps/searches run through this
    /// builder, in wall milliseconds from the *projection* call (the
    /// clock arms when sweep_runtime()/optimizer_runtime() is built,
    /// i.e. at workload launch). Expiry surfaces as the typed
    /// DeadlineExceeded cause: the solver folds it into its per-solve
    /// budget and loop layers unwind at their next poll point.
    /// <= 0 (default) disables.
    RuntimeOptions& deadline_ms(double ms);

    // ---- validation -----------------------------------------------------

    /// The single validation point: every projection below calls this.
    /// Throws std::invalid_argument naming the first offending knob.
    const RuntimeOptions& validate() const;

    // ---- projections onto the per-layer structs -------------------------

    /// Pool/cache/fault/checkpoint knobs of one temperature sweep.
    ring::SweepRuntime sweep_runtime() const;

    /// The same knobs for the optimizer's candidate fan-out. Note the
    /// checkpoint path is shared verbatim — don't run a sweep and a
    /// search against the same path simultaneously.
    sensor::OptimizerRuntime optimizer_runtime() const;

    /// `base` with this builder's health/redundancy knobs applied; the
    /// grid/sensor/calibration fields of `base` pass through untouched.
    sensor::MonitorConfig monitor_config(sensor::MonitorConfig base = {}) const;

    /// Fast-kernel toggles of the transient engine.
    spice::TransientOptions transient_options() const;

    /// SPICE ring-measurement options carrying transient_options().
    ring::SpiceRingOptions spice_ring_options() const;

    /// Arms obs tracing for the configured trace path (or STSENSE_TRACE
    /// when the path is empty); inert when neither is set. The session
    /// writes the trace file when it ends.
    obs::TraceSession trace_session() const;

    /// The pool projections hand out: the dedicated pool when
    /// threads(n > 0) was set (created on first call), else nullptr
    /// (the projected structs then select the global pool).
    exec::ThreadPool* pool() const;

    // ---- introspection (tests, logging) ---------------------------------

    int thread_count() const noexcept { return threads_; }
    bool parallel_enabled() const noexcept { return parallel_; }
    bool cache_enabled() const noexcept { return use_cache_; }
    const std::string& checkpoint_path() const noexcept { return checkpoint_path_; }
    /// Flush interval / retention of the checkpoint knob — exposed so a
    /// session layer (stsense::service) can re-project the same policy
    /// onto per-request checkpoint paths without losing the cadence.
    int checkpoint_flush_every() const noexcept { return checkpoint_every_; }
    bool checkpoint_kept() const noexcept { return keep_checkpoint_; }
    const ring::FaultPolicySpec& fault() const noexcept { return fault_; }
    bool fast_kernel_enabled() const noexcept { return fast_kernel_; }
    util::SimdMode simd_mode() const noexcept { return simd_; }
    int lockstep_width() const noexcept { return lockstep_; }
    const std::string& trace_path() const noexcept { return trace_path_; }
    bool health_enabled() const noexcept { return health_; }
    int redundancy_count() const noexcept { return redundancy_; }
    const exec::CancelToken& cancel_token() const noexcept { return cancel_; }
    double deadline_millis() const noexcept { return deadline_ms_; }
    /// The token a projection hands to its runtime: the configured
    /// token (or a fresh root), deadline-tightened when deadline_ms was
    /// set. Invalid when neither knob is used.
    exec::CancelToken effective_cancel() const;

private:
    int threads_ = 0;
    bool parallel_ = true;
    bool use_cache_ = true;
    std::string checkpoint_path_;
    int checkpoint_every_ = 0;
    bool keep_checkpoint_ = false;
    ring::FaultPolicySpec fault_;
    bool fast_kernel_ = false;
    util::SimdMode simd_ = util::SimdMode::Auto;
    int lockstep_ = 0; ///< 0 = the selected preset's width.
    std::optional<bool> batch_eval_; ///< Unset = the preset's choice.
    std::optional<bool> banded_lu_;  ///< Unset = the preset's choice.
    std::string trace_path_;
    bool health_ = false;
    sensor::SiteHealthConfig health_config_;
    int redundancy_ = 1;
    exec::CancelToken cancel_;
    double deadline_ms_ = 0.0;
    /// Lazily created by pool(); shared so copies of a RuntimeOptions
    /// keep projecting pointers into one live pool.
    mutable std::shared_ptr<exec::ThreadPool> owned_pool_;
};

} // namespace stsense
