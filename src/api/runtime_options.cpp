#include "api/runtime_options.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace stsense {

RuntimeOptions& RuntimeOptions::threads(int n) {
    threads_ = n;
    owned_pool_.reset(); // a different width invalidates any lazy pool
    return *this;
}

RuntimeOptions& RuntimeOptions::parallel(bool on) {
    parallel_ = on;
    return *this;
}

RuntimeOptions& RuntimeOptions::use_cache(bool on) {
    use_cache_ = on;
    return *this;
}

RuntimeOptions& RuntimeOptions::checkpoint(std::string path, int every,
                                           bool keep) {
    checkpoint_path_ = std::move(path);
    checkpoint_every_ = every;
    keep_checkpoint_ = keep;
    return *this;
}

RuntimeOptions& RuntimeOptions::fault_policy(ring::FaultPolicy policy,
                                             int max_retries,
                                             double retry_steps_factor) {
    fault_.policy = policy;
    fault_.max_retries = max_retries;
    fault_.retry_steps_factor = retry_steps_factor;
    return *this;
}

RuntimeOptions& RuntimeOptions::fast_kernel(bool on) {
    fast_kernel_ = on;
    return *this;
}

RuntimeOptions& RuntimeOptions::simd(util::SimdMode mode) {
    simd_ = mode;
    return *this;
}

RuntimeOptions& RuntimeOptions::lockstep(int width) {
    lockstep_ = width;
    return *this;
}

RuntimeOptions& RuntimeOptions::batch_eval(bool on) {
    batch_eval_ = on;
    return *this;
}

RuntimeOptions& RuntimeOptions::banded_lu(bool on) {
    banded_lu_ = on;
    return *this;
}

RuntimeOptions& RuntimeOptions::trace(std::string path) {
    trace_path_ = std::move(path);
    return *this;
}

RuntimeOptions& RuntimeOptions::health(bool on) {
    health_ = on;
    return *this;
}

RuntimeOptions& RuntimeOptions::health(sensor::SiteHealthConfig config) {
    health_ = true;
    health_config_ = config;
    return *this;
}

RuntimeOptions& RuntimeOptions::redundancy(int replicas) {
    redundancy_ = replicas;
    return *this;
}

RuntimeOptions& RuntimeOptions::cancel(exec::CancelToken token) {
    cancel_ = std::move(token);
    return *this;
}

RuntimeOptions& RuntimeOptions::deadline_ms(double ms) {
    deadline_ms_ = ms;
    return *this;
}

exec::CancelToken RuntimeOptions::effective_cancel() const {
    if (deadline_ms_ > 0.0) {
        // Arm the clock now (projection == workload launch). Chained
        // off the configured token when present, so an explicit cancel
        // and the deadline compose.
        return cancel_.child_with_deadline_ms(deadline_ms_);
    }
    return cancel_;
}

const RuntimeOptions& RuntimeOptions::validate() const {
    auto bad = [](const std::string& what) {
        throw std::invalid_argument("RuntimeOptions: " + what);
    };
    if (threads_ < 0) bad("threads must be >= 0 (0 selects the global pool)");
    if (fault_.max_retries < 0) bad("fault max_retries must be >= 0");
    if (!(fault_.retry_steps_factor > 0.0)) {
        bad("fault retry_steps_factor must be > 0");
    }
    if (redundancy_ < 1) bad("redundancy must be >= 1");
    if (lockstep_ < 0) bad("lockstep width must be >= 0 (0 keeps the preset)");
    if (health_) {
        if (health_config_.max_retries < 0) bad("health max_retries must be >= 0");
        if (!(health_config_.temp_min_c < health_config_.temp_max_c)) {
            bad("health plausible band needs temp_min_c < temp_max_c");
        }
    }
    return *this;
}

exec::ThreadPool* RuntimeOptions::pool() const {
    if (threads_ <= 0) return nullptr;
    if (!owned_pool_) {
        owned_pool_ = std::make_shared<exec::ThreadPool>(
            static_cast<std::size_t>(threads_));
    }
    return owned_pool_.get();
}

ring::SweepRuntime RuntimeOptions::sweep_runtime() const {
    validate();
    ring::SweepRuntime rt;
    rt.pool = pool();
    rt.parallel = parallel_;
    rt.use_cache = use_cache_;
    rt.fault = fault_;
    rt.checkpoint_path = checkpoint_path_;
    if (checkpoint_every_ > 0) rt.checkpoint_every = checkpoint_every_;
    rt.keep_checkpoint = keep_checkpoint_;
    rt.cancel = effective_cancel();
    return rt;
}

sensor::OptimizerRuntime RuntimeOptions::optimizer_runtime() const {
    validate();
    sensor::OptimizerRuntime rt;
    rt.pool = pool();
    rt.fault = fault_;
    rt.checkpoint_path = checkpoint_path_;
    if (checkpoint_every_ > 0) rt.checkpoint_every = checkpoint_every_;
    rt.keep_checkpoint = keep_checkpoint_;
    rt.cancel = effective_cancel();
    return rt;
}

sensor::MonitorConfig RuntimeOptions::monitor_config(
    sensor::MonitorConfig base) const {
    validate();
    base.enable_health = health_;
    if (health_) base.health = health_config_;
    base.redundancy = redundancy_;
    return base;
}

spice::TransientOptions RuntimeOptions::transient_options() const {
    validate();
    spice::TransientOptions t = fast_kernel_ ? spice::TransientOptions::fast()
                                             : spice::TransientOptions{};
    // Per-feature overrides sit on top of the preset; every default
    // (Auto / 0 / unset) leaves the preset untouched, so a plain
    // RuntimeOptions still projects the bitwise seed-identical engine.
    t.simd = simd_;
    if (lockstep_ > 0) t.lockstep_width = lockstep_;
    if (batch_eval_.has_value()) t.batch_eval = *batch_eval_;
    if (banded_lu_.has_value()) t.banded_lu = *banded_lu_;
    return t;
}

ring::SpiceRingOptions RuntimeOptions::spice_ring_options() const {
    validate();
    ring::SpiceRingOptions o = fast_kernel_ ? ring::SpiceRingOptions::fast()
                                            : ring::SpiceRingOptions{};
    o.kernel = transient_options();
    return o;
}

obs::TraceSession RuntimeOptions::trace_session() const {
    validate();
    return obs::TraceSession(trace_path_);
}

} // namespace stsense
