#include "service/retry.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <utility>

namespace stsense::service {

bool retryable(ErrorCode code) { return code == ErrorCode::Overloaded; }

std::int64_t request_fingerprint(const std::string& method,
                                 const Json& params) {
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](const std::string& s) {
        for (const char c : s) {
            h ^= static_cast<unsigned char>(c);
            h *= 1099511628211ull;
        }
        h ^= 0xff; // separator: ("ab", "c") != ("a", "bc")
        h *= 1099511628211ull;
    };
    mix(method);
    mix(params.dump());
    return static_cast<std::int64_t>(h & 0x7fffffffffffffffull);
}

double retry_backoff_ms(const RetryPolicy& policy, int retry_index) {
    double backoff = policy.base_ms;
    for (int i = 0; i < retry_index; ++i) backoff *= policy.multiplier;
    return std::min(backoff, policy.max_ms);
}

RetryingClient::RetryingClient(std::shared_ptr<Connection> conn,
                               RetryPolicy policy)
    : conn_(std::move(conn)), policy_(policy), rng_(policy.seed) {}

RetryingClient::CallResult RetryingClient::call(const std::string& method,
                                                const Json& params,
                                                double deadline_ms) {
    // The id IS the request fingerprint: every attempt is byte-identical
    // on the wire, so a server-side spool resumes rather than recomputes.
    Json req = Json::object();
    req.set("id", request_fingerprint(method, params));
    req.set("method", method);
    req.set("params", params);
    if (deadline_ms > 0.0) req.set("deadline_ms", deadline_ms);
    const std::string line = req.dump();
    const std::int64_t id = req.at("id").as_int64();

    CallResult result;
    const int attempts = std::max(policy_.max_attempts, 1);
    for (int attempt = 0; attempt < attempts; ++attempt) {
        ++result.attempts;
        if (!conn_->write_line(line)) {
            throw std::runtime_error("retry: connection closed on write");
        }
        // Wait for our id, skipping subscription events.
        for (;;) {
            std::string in;
            if (!conn_->read_line(in)) {
                throw std::runtime_error("retry: connection closed on read");
            }
            auto parsed = Json::parse(in);
            if (!parsed.value || !parsed.value->is_object()) continue;
            Json& doc = *parsed.value;
            if (doc.at("event").is_string()) continue;
            if (doc.at("id").as_int64(-1) != id) continue;
            result.response = std::move(doc);
            break;
        }
        result.ok = result.response.at("ok").as_bool(false);
        if (result.ok) return result;
        const std::string code =
            result.response.at("error").at("code").as_string();
        if (code != to_string(ErrorCode::Overloaded)) return result;
        if (attempt + 1 >= attempts) return result;

        double sleep_ms = retry_backoff_ms(policy_, attempt);
        if (policy_.jitter > 0.0) {
            const double j = std::clamp(policy_.jitter, 0.0, 1.0);
            sleep_ms *= (1.0 - j) + j * rng_.uniform01();
        }
        ++retries_;
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            std::max(sleep_ms, 0.0)));
    }
    return result;
}

} // namespace stsense::service
