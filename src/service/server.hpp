// service::Server — the resident thermal-telemetry daemon.
//
// One server owns the shared execution runtime (an exec::ThreadPool and
// a cross-request exec::ResultCache) and N die Sessions, and serves
// newline-delimited JSON requests over any Transport (Unix socket for
// real clients, LoopbackTransport for tests and benches). Per
// connection, one reader thread parses requests and routes them through
// the CommandProcessor registry:
//
//   connection -> parse -> registry -> light: inline answer
//                                   -> heavy: FairScheduler -> pool
//
// Admission control is the scheduler's: a saturated client gets a typed
// `overloaded` response, a draining server `shutting-down` — never a
// hang, never a dropped line. Every response carries the request id;
// heavy responses overtake each other freely.
//
// The whole runtime is queryable through the lazily-evaluated object
// model rooted here: `state.pool.queue_depth`, `state.cache.hit_rate`,
// `state.sessions[3].sites[12].health` — each query evaluates exactly
// the subtree it renders (depth-limited, key-filtered), reading live
// atomics and short state locks, so observability stays cheap while
// every worker is busy sweeping.
//
// Shutdown: `shutdown {"mode":"drain"}` (or request_shutdown()) stops
// admissions, lets queued jobs finish, answers everything, then closes
// the transport; mode "now" answers still-queued jobs `shutting-down`
// instead of running them. In-flight sweeps persist per-request
// checkpoints under spool_dir (fingerprint-keyed), so a killed request
// re-issued against a restarted server resumes bitwise.
#pragma once

#include "exec/result_cache.hpp"
#include "exec/thread_pool.hpp"
#include "service/dispatch.hpp"
#include "service/fair_queue.hpp"
#include "service/object_model.hpp"
#include "service/protocol.hpp"
#include "service/session.hpp"
#include "service/transport.hpp"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace stsense::service {

struct ServerConfig {
    /// Pool workers; <= 0 uses exec::ThreadPool::default_thread_count().
    int threads = 0;
    /// Byte budget of the server-owned result cache shared by every
    /// session (cross-request memoization).
    std::size_t cache_bytes = exec::ResultCache::kDefaultByteBudget;
    /// Directory for per-request sweep/optimizer checkpoints; empty
    /// disables checkpointing (and therefore restart-resume).
    std::string spool_dir;
    /// Admission-control and fairness knobs.
    FairScheduler::Limits limits;
    /// Weight new connections start with (hello can raise it).
    int default_client_weight = 1;
};

class Server {
public:
    Server(ServerConfig config, std::vector<SessionSpec> sessions);
    ~Server();
    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Serves `transport` on the calling thread until shutdown. Joins
    /// every connection reader before returning.
    void serve(Transport& transport);

    /// serve() on an internal thread; pair with wait().
    void start(Transport& transport);
    /// Joins the start() thread (no-op when serve wasn't started).
    void wait();

    /// Programmatic shutdown: stops admissions, drains (or, with
    /// `discard_queued`, answers queued jobs `shutting-down` AND fires
    /// the server cancel token so in-flight heavy work unwinds at its
    /// next poll point instead of running to completion — checkpoints
    /// flush consistent on the way out), then closes the transport so
    /// serve() returns. Idempotent.
    void request_shutdown(bool discard_queued = false);

    bool draining() const { return draining_.load(std::memory_order_relaxed); }

    // ---- composition access (examples, benches, tests) ------------------
    exec::ThreadPool& pool() { return *pool_; }
    exec::ResultCache& cache() { return *cache_; }
    FairScheduler& scheduler() { return *scheduler_; }
    CommandProcessor& processor() { return processor_; }
    std::size_t session_count() const { return sessions_.size(); }
    Session& session(std::size_t i) { return *sessions_[i]; }
    const ServerConfig& config() const { return config_; }

    /// Root of the object model (`state.`); stable for the server's
    /// lifetime, safe to query from any thread.
    const ModelPtr& model() const { return root_; }

    /// Root of the cancel hierarchy (server -> client -> request).
    /// Copies share state: firing it cancels every request in flight.
    exec::CancelToken cancel_root() const { return cancel_root_; }

    /// One request handled fully in-process (no transport): parses,
    /// dispatches (heavy methods still go through admission control but
    /// run synchronously), returns the response line. The benches use
    /// this to measure dispatch overhead without socket noise.
    std::string handle_inline(const std::string& line);

    std::uint64_t requests_total() const {
        return requests_.load(std::memory_order_relaxed);
    }
    std::uint64_t errors_total() const {
        return errors_.load(std::memory_order_relaxed);
    }

private:
    void register_builtin_methods();
    ModelPtr build_model() const;

    /// Resolves params["session"] (index or name; default 0).
    Session& resolve_session(const Json& params);

    void reader_loop(int client, std::shared_ptr<Connection> conn);
    void handle_line(int client, const std::shared_ptr<Connection>& conn,
                     const std::string& line);
    /// Runs one request through its handler; returns the response line.
    std::string execute(const CommandProcessor::CommandSpec& spec,
                        const Request& req, RequestContext& ctx);

    // ---- cancellation (server -> client -> request token chain) ----------
    /// The client's token, created as a child of the server root on
    /// first use (serve() registers clients lazily this way too).
    exec::CancelToken client_token(int client);
    /// Builds the per-request token (deadline-armed when the request
    /// carried deadline_ms) and registers it for cancel-by-id.
    exec::CancelToken make_request_token(int client, const Request& req);
    /// Drops a finished request from the cancel registry.
    void finish_request(int client, std::int64_t id);
    /// Fires the Cancelled cause on a registered in-flight request.
    /// `requester >= 0` may only cancel its own requests; a negative
    /// requester (in-process dispatch) may cancel anyone's.
    bool cancel_request(int requester, std::int64_t id);
    /// Disconnect path: fires `cause` on the client's token (cancelling
    /// its in-flight requests through the parent chain) and forgets it.
    void drop_client(int client, exec::CancelCause cause);

    // ---- subscriptions ---------------------------------------------------
    struct Subscription {
        std::weak_ptr<Connection> conn;
        std::string path;
        QueryOptions opt;
        std::string last_rendered; ///< Dedup: push only on change.
    };
    void add_subscription(const std::shared_ptr<Connection>& conn,
                          std::string path, QueryOptions opt);
    /// Re-evaluates every live subscription and pushes changed values.
    void notify_subscribers();

    ServerConfig config_;
    std::unique_ptr<exec::ThreadPool> pool_;
    std::unique_ptr<exec::ResultCache> cache_;
    std::vector<std::unique_ptr<Session>> sessions_;
    std::unique_ptr<FairScheduler> scheduler_;
    CommandProcessor processor_;
    ModelPtr root_;

    std::atomic<bool> draining_{false};

    /// Cancel hierarchy root (valid for the server's lifetime) and the
    /// registries below it. Request tokens live in `active_` only while
    /// the request is queued/executing — the `cancel` method looks them
    /// up by (client, request id); in-flight jobs hold their own copies,
    /// so erasure never invalidates a running poll.
    exec::CancelToken cancel_root_ = exec::CancelToken::make();
    std::mutex cancel_m_;
    std::map<int, exec::CancelToken> client_tokens_;
    std::map<std::pair<int, std::int64_t>, exec::CancelToken> active_;

    std::mutex serve_m_;
    Transport* transport_ = nullptr; ///< Non-null while serve() runs.
    std::vector<std::thread> readers_;
    std::thread serve_thread_;

    std::mutex sub_m_;
    std::vector<Subscription> subscriptions_;
    std::atomic<std::uint64_t> event_seq_{0};

    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> responses_{0};
    std::atomic<std::uint64_t> errors_{0};
};

} // namespace stsense::service
