// service::Server — the resident thermal-telemetry daemon.
//
// One server owns the shared execution runtime (an exec::ThreadPool and
// a cross-request exec::ResultCache) and N die Sessions, and serves
// newline-delimited JSON requests over any Transport (Unix socket for
// real clients, LoopbackTransport for tests and benches). Per
// connection, one reader thread parses requests and routes them through
// the CommandProcessor registry:
//
//   connection -> parse -> registry -> light: inline answer
//                                   -> heavy: FairScheduler -> pool
//
// Admission control is the scheduler's: a saturated client gets a typed
// `overloaded` response, a draining server `shutting-down` — never a
// hang, never a dropped line. Every response carries the request id;
// heavy responses overtake each other freely.
//
// The whole runtime is queryable through the lazily-evaluated object
// model rooted here: `state.pool.queue_depth`, `state.cache.hit_rate`,
// `state.sessions[3].sites[12].health` — each query evaluates exactly
// the subtree it renders (depth-limited, key-filtered), reading live
// atomics and short state locks, so observability stays cheap while
// every worker is busy sweeping.
//
// Shutdown: `shutdown {"mode":"drain"}` (or request_shutdown()) stops
// admissions, lets queued jobs finish, answers everything, then closes
// the transport; mode "now" answers still-queued jobs `shutting-down`
// instead of running them. In-flight sweeps persist per-request
// checkpoints under spool_dir (fingerprint-keyed), so a killed request
// re-issued against a restarted server resumes bitwise.
#pragma once

#include "exec/result_cache.hpp"
#include "exec/thread_pool.hpp"
#include "service/dispatch.hpp"
#include "service/fair_queue.hpp"
#include "service/object_model.hpp"
#include "service/protocol.hpp"
#include "service/session.hpp"
#include "service/transport.hpp"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace stsense::service {

struct ServerConfig {
    /// Pool workers; <= 0 uses exec::ThreadPool::default_thread_count().
    int threads = 0;
    /// Byte budget of the server-owned result cache shared by every
    /// session (cross-request memoization).
    std::size_t cache_bytes = exec::ResultCache::kDefaultByteBudget;
    /// Directory for per-request sweep/optimizer checkpoints; empty
    /// disables checkpointing (and therefore restart-resume).
    std::string spool_dir;
    /// Admission-control and fairness knobs.
    FairScheduler::Limits limits;
    /// Weight new connections start with (hello can raise it).
    int default_client_weight = 1;
};

class Server {
public:
    Server(ServerConfig config, std::vector<SessionSpec> sessions);
    ~Server();
    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Serves `transport` on the calling thread until shutdown. Joins
    /// every connection reader before returning.
    void serve(Transport& transport);

    /// serve() on an internal thread; pair with wait().
    void start(Transport& transport);
    /// Joins the start() thread (no-op when serve wasn't started).
    void wait();

    /// Programmatic shutdown: stops admissions, drains (or, with
    /// `discard_queued`, answers queued jobs `shutting-down`), then
    /// closes the transport so serve() returns. Idempotent.
    void request_shutdown(bool discard_queued = false);

    bool draining() const { return draining_.load(std::memory_order_relaxed); }

    // ---- composition access (examples, benches, tests) ------------------
    exec::ThreadPool& pool() { return *pool_; }
    exec::ResultCache& cache() { return *cache_; }
    FairScheduler& scheduler() { return *scheduler_; }
    CommandProcessor& processor() { return processor_; }
    std::size_t session_count() const { return sessions_.size(); }
    Session& session(std::size_t i) { return *sessions_[i]; }
    const ServerConfig& config() const { return config_; }

    /// Root of the object model (`state.`); stable for the server's
    /// lifetime, safe to query from any thread.
    const ModelPtr& model() const { return root_; }

    /// One request handled fully in-process (no transport): parses,
    /// dispatches (heavy methods still go through admission control but
    /// run synchronously), returns the response line. The benches use
    /// this to measure dispatch overhead without socket noise.
    std::string handle_inline(const std::string& line);

    std::uint64_t requests_total() const {
        return requests_.load(std::memory_order_relaxed);
    }
    std::uint64_t errors_total() const {
        return errors_.load(std::memory_order_relaxed);
    }

private:
    void register_builtin_methods();
    ModelPtr build_model() const;

    /// Resolves params["session"] (index or name; default 0).
    Session& resolve_session(const Json& params);

    void reader_loop(int client, std::shared_ptr<Connection> conn);
    void handle_line(int client, const std::shared_ptr<Connection>& conn,
                     const std::string& line);
    /// Runs one request through its handler; returns the response line.
    std::string execute(const CommandProcessor::CommandSpec& spec,
                        const Request& req, RequestContext& ctx);

    // ---- subscriptions ---------------------------------------------------
    struct Subscription {
        std::weak_ptr<Connection> conn;
        std::string path;
        QueryOptions opt;
        std::string last_rendered; ///< Dedup: push only on change.
    };
    void add_subscription(const std::shared_ptr<Connection>& conn,
                          std::string path, QueryOptions opt);
    /// Re-evaluates every live subscription and pushes changed values.
    void notify_subscribers();

    ServerConfig config_;
    std::unique_ptr<exec::ThreadPool> pool_;
    std::unique_ptr<exec::ResultCache> cache_;
    std::vector<std::unique_ptr<Session>> sessions_;
    std::unique_ptr<FairScheduler> scheduler_;
    CommandProcessor processor_;
    ModelPtr root_;

    std::atomic<bool> draining_{false};

    std::mutex serve_m_;
    Transport* transport_ = nullptr; ///< Non-null while serve() runs.
    std::vector<std::thread> readers_;
    std::thread serve_thread_;

    std::mutex sub_m_;
    std::vector<Subscription> subscriptions_;
    std::atomic<std::uint64_t> event_seq_{0};

    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> responses_{0};
    std::atomic<std::uint64_t> errors_{0};
};

} // namespace stsense::service
