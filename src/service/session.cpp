#include "service/session.hpp"

#include "api/population_spec.hpp"
#include "dtm/fleet.hpp"
#include "exec/metrics.hpp"
#include "obs/trace.hpp"
#include "ring/sweep.hpp"
#include "sensor/optimizer.hpp"
#include "service/protocol.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

namespace stsense::service {

namespace {

/// Deterministic inclusive linspace (the same arithmetic everywhere a
/// grid is built from request params, so fingerprints agree).
std::vector<double> linspace(double lo, double hi, int n) {
    std::vector<double> out;
    out.reserve(static_cast<std::size_t>(n));
    if (n == 1) {
        out.push_back(lo);
        return out;
    }
    for (int i = 0; i < n; ++i) {
        out.push_back(lo + (hi - lo) * static_cast<double>(i) /
                               static_cast<double>(n - 1));
    }
    return out;
}

std::string hex64(std::uint64_t v) {
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return std::string(buf);
}

/// FNV-1a over a string — names optimizer checkpoint files per request.
std::uint64_t fnv1a(const std::string& s) {
    std::uint64_t h = 1469598103934665603ull;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

double require_finite(const Json& params, const char* key, double fallback) {
    const Json& v = params.at(key);
    const double d = v.is_null() ? fallback : v.as_double(std::nan(""));
    if (!std::isfinite(d)) {
        throw ServiceError(ErrorCode::BadParams,
                           std::string("param '") + key +
                               "' must be a finite number");
    }
    return d;
}

int require_int(const Json& params, const char* key, int fallback, int lo,
                int hi) {
    const Json& v = params.at(key);
    if (v.is_null()) return fallback;
    if (!v.is_number()) {
        throw ServiceError(ErrorCode::BadParams,
                           std::string("param '") + key + "' must be a number");
    }
    const int n = v.as_int();
    if (n < lo || n > hi) {
        throw ServiceError(ErrorCode::BadParams,
                           std::string("param '") + key + "' out of range [" +
                               std::to_string(lo) + ", " + std::to_string(hi) +
                               "]");
    }
    return n;
}

} // namespace

Session::Session(int id, SessionSpec spec, exec::ThreadPool* pool,
                 exec::ResultCache* cache, std::string spool_dir)
    : id_(id),
      name_(spec.name.empty() ? "session-" + std::to_string(id) : spec.name),
      spec_(std::move(spec)),
      pool_(pool),
      cache_(cache),
      spool_dir_(std::move(spool_dir)),
      monitor_(spec_.tech, spec_.ring, spec_.floorplan,
               sensor::uniform_sites(spec_.floorplan, spec_.sites_nx,
                                     spec_.sites_ny),
               spec_.runtime.monitor_config(spec_.monitor)) {
    sites_.reserve(monitor_.sites().size());
    for (const auto& site : monitor_.sites()) {
        SiteSnapshot snap;
        snap.name = site.name;
        snap.x = site.x;
        snap.y = site.y;
        sites_.push_back(std::move(snap));
    }
}

Session::~Session() = default;

Json Session::reading_json(const sensor::SiteReading& r) {
    Json j = Json::object();
    j.set("name", r.name);
    j.set("x", r.x);
    j.set("y", r.y);
    j.set("true_c", r.true_c);
    j.set("measured_c", std::isfinite(r.measured_c) ? Json(r.measured_c)
                                                    : Json(nullptr));
    j.set("error_c",
          std::isfinite(r.error_c) ? Json(r.error_c) : Json(nullptr));
    j.set("code", static_cast<std::uint64_t>(r.code));
    j.set("valid", r.valid);
    j.set("health", sensor::to_string(r.health));
    j.set("confidence", sensor::to_string(r.confidence));
    j.set("rings_total", r.rings_total);
    j.set("rings_agreeing", r.rings_agreeing);
    return j;
}

sensor::MapResult Session::scan_locked() {
    OBS_SPAN("service.session.scan");
    auto map = monitor_.scan();
    publish_map(map);
    return map;
}

void Session::publish_map(const sensor::MapResult& map) {
    Json summary = Json::object();
    summary.set("sites", map.sites.size());
    summary.set("invalid_sites", map.invalid_sites);
    summary.set("max_abs_error_c", map.max_abs_error_c);
    summary.set("rms_error_c", map.rms_error_c);
    summary.set("die_peak_c", map.die_peak_c);
    summary.set("scan_time_s", map.scan_time_s);
    summary.set("alarm", map.alarm);
    summary.set("alarm_site", map.alarm_site);
    summary.set("degraded_sites", map.degraded_sites);
    summary.set("quarantined_sites", map.quarantined_sites);
    summary.set("dead_sites", map.dead_sites);
    summary.set("interpolated_sites", map.interpolated_sites);
    summary.set("watchdog_trips", map.watchdog_trips);
    summary.set("readout_retries", map.readout_retries);

    const auto& health = monitor_.health();
    std::lock_guard lock(state_m_);
    last_readings_ = map.sites;
    for (std::size_t i = 0; i < map.sites.size() && i < sites_.size(); ++i) {
        SiteSnapshot& snap = sites_[i];
        const sensor::SiteReading& r = map.sites[i];
        snap.health = r.health;
        snap.confidence = r.confidence;
        snap.last_c = r.measured_c;
        snap.has_reading = r.valid && std::isfinite(r.measured_c);
        if (i < health.size()) {
            const auto& rec = health.record(i);
            snap.faults_total = rec.faults_total;
            snap.strikes = rec.strikes;
        }
    }
    ++scans_;
    summary.set("scan_index", scans_);
    last_map_summary_ = std::move(summary);
}

Json Session::measure_site(const Json& params) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    measures_.fetch_add(1, std::memory_order_relaxed);
    const Json& which = params.at("site");
    const bool fresh = params.at("fresh").as_bool(false);

    std::lock_guard job(job_m_);
    std::size_t index = sites_.size();
    if (which.is_number()) {
        const int i = which.as_int(-1);
        if (i >= 0 && static_cast<std::size_t>(i) < sites_.size()) {
            index = static_cast<std::size_t>(i);
        }
    } else if (which.is_string()) {
        for (std::size_t i = 0; i < sites_.size(); ++i) {
            if (sites_[i].name == which.as_string()) {
                index = i;
                break;
            }
        }
    } else {
        throw ServiceError(ErrorCode::BadParams,
                           "param 'site' must be an index or a site name");
    }
    if (index >= sites_.size()) {
        throw ServiceError(ErrorCode::BadParams,
                           "unknown site: " + which.dump());
    }

    bool need_scan = fresh;
    {
        std::lock_guard lock(state_m_);
        if (last_readings_.size() != sites_.size()) need_scan = true;
    }
    if (need_scan) scan_locked();

    std::lock_guard lock(state_m_);
    Json result = reading_json(last_readings_[index]);
    result.set("session", id_);
    result.set("scan_index", scans_);
    return result;
}

Json Session::thermal_map(const Json&) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    maps_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard job(job_m_);
    const auto map = scan_locked();

    Json readings = Json::array();
    for (const auto& r : map.sites) readings.push_back(reading_json(r));

    std::lock_guard lock(state_m_);
    Json result = last_map_summary_ ? *last_map_summary_ : Json::object();
    result.set("session", id_);
    result.set("readings", std::move(readings));
    return result;
}

Json Session::sweep(const Json& params) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    sweeps_.fetch_add(1, std::memory_order_relaxed);
    const double lo = require_finite(params, "t_min_c", -50.0);
    const double hi = require_finite(params, "t_max_c", 150.0);
    if (hi <= lo) {
        throw ServiceError(ErrorCode::BadParams,
                           "'t_max_c' must exceed 't_min_c'");
    }
    const int points = require_int(params, "points", 17, 2, 4096);
    const std::string engine_name = params.at("engine").as_string("analytic");
    ring::Engine engine = ring::Engine::Analytic;
    if (engine_name == "spice") {
        engine = ring::Engine::Spice;
    } else if (engine_name != "analytic") {
        throw ServiceError(ErrorCode::BadParams,
                           "param 'engine' must be \"analytic\" or \"spice\"");
    }

    const auto temps = linspace(lo, hi, points);
    const auto spice_opt = spec_.runtime.spice_ring_options();

    // Server-owned pool/cache replace whatever the session's
    // RuntimeOptions projected; the checkpoint path is re-keyed per
    // request by the sweep fingerprint so concurrent sweeps never share
    // a spool file and a killed request resumes bitwise on re-issue.
    ring::SweepRuntime rt = spec_.runtime.sweep_runtime();
    rt.pool = pool_;
    rt.cache = cache_;
    const std::uint64_t fp = ring::sweep_fingerprint(
        spec_.tech, spec_.ring, temps, engine, spice_opt, rt.fault);
    if (!spool_dir_.empty()) {
        rt.checkpoint_path = spool_dir_ + "/sweep_" + hex64(fp) + ".ckpt";
        if (spec_.runtime.checkpoint_flush_every() > 0) {
            rt.checkpoint_every = spec_.runtime.checkpoint_flush_every();
        }
        rt.keep_checkpoint = spec_.runtime.checkpoint_kept();
    } else {
        rt.checkpoint_path.clear();
    }

    std::lock_guard job(job_m_);
    OBS_SPAN("service.session.sweep");
    const auto sweep = ring::temperature_sweep(spec_.tech, spec_.ring, temps,
                                               engine, spice_opt, rt);

    Json temps_j = Json::array();
    Json period_j = Json::array();
    Json freq_j = Json::array();
    Json status_j = Json::array();
    for (std::size_t i = 0; i < sweep.temps_c.size(); ++i) {
        temps_j.push_back(sweep.temps_c[i]);
        period_j.push_back(std::isfinite(sweep.period_s[i])
                               ? Json(sweep.period_s[i])
                               : Json(nullptr));
        freq_j.push_back(std::isfinite(sweep.frequency_hz[i])
                             ? Json(sweep.frequency_hz[i])
                             : Json(nullptr));
        status_j.push_back(ring::to_string(sweep.status[i]));
    }

    Json result = Json::object();
    result.set("session", id_);
    result.set("engine", engine_name);
    result.set("fingerprint", hex64(fp));
    result.set("temps_c", std::move(temps_j));
    result.set("period_s", std::move(period_j));
    result.set("frequency_hz", std::move(freq_j));
    result.set("status", std::move(status_j));
    result.set("valid_points", sweep.valid_points());
    result.set("recovered_points", sweep.recovered_points());
    return result;
}

Json Session::optimize(const Json& params) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    optimizes_.fetch_add(1, std::memory_order_relaxed);
    const double lo = require_finite(params, "ratio_lo", 1.0);
    const double hi = require_finite(params, "ratio_hi", 4.0);
    if (!(lo > 0.0) || hi <= lo) {
        throw ServiceError(ErrorCode::BadParams,
                           "need 0 < 'ratio_lo' < 'ratio_hi'");
    }
    const int points = require_int(params, "points", 7, 2, 256);
    int stages = require_int(params, "stages", spec_.ring.stage_count(), 3, 31);
    if (stages % 2 == 0) {
        throw ServiceError(ErrorCode::BadParams,
                           "param 'stages' must be odd (ring oscillator)");
    }

    const auto ratios = linspace(lo, hi, points);

    sensor::OptimizerRuntime rt = spec_.runtime.optimizer_runtime();
    rt.pool = pool_;
    if (!spool_dir_.empty()) {
        Json key = Json::object();
        key.set("ratio_lo", lo);
        key.set("ratio_hi", hi);
        key.set("points", points);
        key.set("stages", stages);
        key.set("session", id_);
        rt.checkpoint_path =
            spool_dir_ + "/opt_" + hex64(fnv1a(key.dump())) + ".ckpt";
        if (spec_.runtime.checkpoint_flush_every() > 0) {
            rt.checkpoint_every = spec_.runtime.checkpoint_flush_every();
        }
        rt.keep_checkpoint = spec_.runtime.checkpoint_kept();
    } else {
        rt.checkpoint_path.clear();
    }

    std::lock_guard job(job_m_);
    OBS_SPAN("service.session.optimize");
    const auto sweep = sensor::ratio_sweep(spec_.tech, cells::CellKind::Inv,
                                           stages, ratios, rt);

    Json points_j = Json::array();
    std::size_t best = 0;
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        Json p = Json::object();
        p.set("ratio", sweep[i].ratio);
        p.set("max_nl_percent", std::isfinite(sweep[i].max_nl_percent)
                                    ? Json(sweep[i].max_nl_percent)
                                    : Json(nullptr));
        p.set("period_27c_s", sweep[i].period_27c_s);
        points_j.push_back(std::move(p));
        if (sweep[i].max_nl_percent < sweep[best].max_nl_percent) best = i;
    }

    Json result = Json::object();
    result.set("session", id_);
    result.set("stages", stages);
    result.set("points", std::move(points_j));
    if (!sweep.empty()) {
        Json best_j = Json::object();
        best_j.set("index", best);
        best_j.set("ratio", sweep[best].ratio);
        best_j.set("max_nl_percent", sweep[best].max_nl_percent);
        result.set("best", std::move(best_j));
    }
    return result;
}

Json Session::dtm_run(const Json& params) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    dtm_runs_.fetch_add(1, std::memory_order_relaxed);

    const bool supervised = params.at("supervised").as_bool(true);
    const double duration = require_finite(params, "duration_s", 0.75);
    const double target = require_finite(params, "target_c", 95.0);
    const double trip = require_finite(params, "trip_c", 110.0);
    const int grid = require_int(params, "grid", 24, 8, 64);
    if (duration <= 0.0 || duration > 30.0) {
        throw ServiceError(ErrorCode::BadParams,
                           "param 'duration_s' out of range (0, 30]");
    }

    const auto options = dtm::ControlOptions()
                             .target(target)
                             .trip(trip)
                             .duration(duration)
                             .supervised(supervised);
    const auto checked = options.try_validate();
    if (!checked.ok()) {
        throw ServiceError(ErrorCode::BadParams, checked.error().message);
    }

    std::lock_guard job(job_m_);
    OBS_SPAN("service.session.dtm_run");

    // Key the cached fleet by every parameter that shapes it. The fleet
    // carries its own monitor and grid; the session's readout ledger
    // never sees these scans.
    Json key = Json::object();
    key.set("supervised", supervised);
    key.set("duration_s", duration);
    key.set("target_c", target);
    key.set("trip_c", trip);
    key.set("grid", grid);
    if (!dtm_fleet_ || dtm_fleet_key_ != key.dump()) {
        const auto layout = dtm::fleet_layout_from_floorplan(spec_.floorplan);
        sensor::MonitorConfig mc = spec_.monitor;
        mc.grid_nx = grid;
        mc.grid_ny = grid;
        mc.enable_health = spec_.runtime.health_enabled();
        auto fleet = std::make_unique<dtm::DtmFleet>(
            spec_.tech, spec_.ring, spec_.floorplan, layout.regions,
            layout.sites, mc, options);
        fleet->tune();
        dtm_fleet_ = std::move(fleet);
        dtm_fleet_key_ = key.dump();
    }
    const auto res = dtm_fleet_->run();

    DtmSnapshot snap;
    snap.supervised = supervised;
    snap.die_peak_c = res.die_peak_c;
    snap.settling_time_s = res.settling_time_s;
    snap.max_overshoot_c = res.max_overshoot_c;
    snap.fault_latches = res.fault_latches;
    snap.tune_solves = res.tune_solves;
    snap.steps = res.steps.size();

    Json regions_j = Json::array();
    for (std::size_t r = 0; r < res.regions.size(); ++r) {
        const auto& rt = res.regions[r];
        DtmRegionSnapshot rs;
        rs.name = rt.name;
        rs.state = dtm::to_string(rt.state);
        rs.fault = dtm::to_string(rt.last_fault);
        rs.u = rt.u;
        rs.true_c = rt.true_c;
        rs.peak_true_c = rt.peak_true_c;
        if (!res.steps.empty()) {
            const auto& last = res.steps.back();
            rs.measured_c = last.measured_c[r];
            rs.has_measurement = std::isfinite(last.measured_c[r]);
            rs.trust = last.trust[r];
        }
        rs.fault_latches = rt.supervisor.fault_latches;
        rs.probes = rt.supervisor.probes;

        Json j = Json::object();
        j.set("name", rs.name);
        j.set("state", rs.state);
        j.set("fault", rs.fault);
        j.set("u", rs.u);
        j.set("true_c", rs.true_c);
        j.set("peak_true_c", rs.peak_true_c);
        j.set("measured_c",
              rs.has_measurement ? Json(rs.measured_c) : Json(nullptr));
        j.set("trust", rs.trust);
        j.set("fault_latches", rs.fault_latches);
        j.set("probes", rs.probes);
        Json model_j = Json::object();
        model_j.set("valid", rt.model.valid);
        model_j.set("gain_c", rt.model.gain_c);
        model_j.set("tau_s", rt.model.tau_s);
        model_j.set("dead_time_s", rt.model.dead_time_s);
        j.set("model", std::move(model_j));
        Json gains_j = Json::object();
        gains_j.set("kp", rt.gains.kp);
        gains_j.set("ki", rt.gains.ki);
        gains_j.set("kd", rt.gains.kd);
        j.set("gains", std::move(gains_j));
        regions_j.push_back(std::move(j));

        snap.regions.push_back(std::move(rs));
    }

    Json result = Json::object();
    result.set("session", id_);
    result.set("supervised", supervised);
    result.set("target_c", target);
    result.set("trip_c", trip);
    result.set("duration_s", duration);
    result.set("steps", snap.steps);
    result.set("die_peak_c", res.die_peak_c);
    result.set("settling_time_s", res.settling_time_s);
    result.set("max_overshoot_c", res.max_overshoot_c);
    result.set("fault_latches", res.fault_latches);
    result.set("tune_solves", res.tune_solves);
    result.set("regions", std::move(regions_j));

    std::lock_guard lock(state_m_);
    last_dtm_ = std::move(snap);
    return result;
}

Json Session::population_run(const Json& params) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    population_runs_.fetch_add(1, std::memory_order_relaxed);

    const int dice = require_int(params, "dice", 10000, 100, 1000000);
    const int shard = require_int(params, "shard", 1024, 16, 65536);
    const int seed = require_int(params, "seed", 1, 0, 1 << 30);
    const std::string cal_name =
        params.at("calibration").as_string("two_point");
    const std::string corner_name = params.at("corner").as_string("TT");
    const double horizon = require_finite(params, "horizon_hours", 10000.0);
    const double recal_interval =
        require_finite(params, "recal_interval_hours", 0.0);
    const double recal_temp = require_finite(params, "recal_temp_c", 60.0);
    const double yield_limit = require_finite(params, "yield_limit_c", 1.0);

    population::CalibrationPolicy cal_policy;
    try {
        cal_policy = population::calibration_policy_from_string(cal_name);
    } catch (const std::invalid_argument& e) {
        throw ServiceError(ErrorCode::BadParams, e.what());
    }
    phys::Corner corner = phys::Corner::TT;
    bool corner_ok = false;
    for (const phys::Corner c : phys::kAllCorners) {
        if (phys::to_string(c) == corner_name) {
            corner = c;
            corner_ok = true;
        }
    }
    if (!corner_ok) {
        throw ServiceError(ErrorCode::BadParams,
                           "param 'corner' must be TT|FF|SS|FS|SF");
    }

    population::PopulationConfig cfg;
    try {
        cfg = stsense::PopulationSpec()
                  .technology(spec_.tech)
                  .ring(spec_.ring)
                  .dice(static_cast<std::uint64_t>(dice))
                  .shard(static_cast<std::size_t>(shard))
                  .seed(static_cast<std::uint64_t>(seed))
                  .corner(corner)
                  .calibration(cal_policy)
                  .horizon_hours(horizon)
                  .recalibration(recal_interval, recal_temp)
                  .yield_limit_c(yield_limit)
                  .config();
    } catch (const std::invalid_argument& e) {
        throw ServiceError(ErrorCode::BadParams, e.what());
    }
    const std::uint64_t fp = population::population_fingerprint(cfg);

    // Server-owned pool; per-request checkpoint keyed by the population
    // fingerprint so a killed request resumes bitwise on re-issue and
    // concurrent studies never share a spool file.
    population::PopulationRuntime rt;
    rt.pool = pool_;
    rt.parallel = spec_.runtime.parallel_enabled();
    if (!spool_dir_.empty()) {
        rt.checkpoint_path = spool_dir_ + "/population_" + hex64(fp) + ".ckpt";
        if (spec_.runtime.checkpoint_flush_every() > 0) {
            rt.checkpoint_every = static_cast<std::size_t>(
                spec_.runtime.checkpoint_flush_every());
        }
        rt.keep_checkpoint = spec_.runtime.checkpoint_kept();
    }
    rt.cancel = spec_.runtime.effective_cancel();

    // Guarded NaN (P^2 is NaN before its first sample) so a snapshot
    // leaf never renders a non-finite number.
    auto qv = [](const population::MetricSummary& m, std::size_t j) {
        if (j >= m.quantiles.size()) return 0.0;
        const double v = m.quantiles[j].value;
        return std::isfinite(v) ? v : 0.0;
    };
    rt.on_shard = [this, cal_name, qv](const population::PopulationProgress& p) {
        // The engine's quantile list is the service default {.5,.9,.99}.
        const auto& fresh =
            p.metrics[static_cast<int>(population::Metric::FreshMaxAbsErrC)];
        const auto& aged =
            p.metrics[static_cast<int>(population::Metric::AgedMaxAbsErrC)];
        const auto& drift =
            p.metrics[static_cast<int>(population::Metric::AgedDriftC)];
        std::lock_guard lock(state_m_);
        PopulationSnapshot snap;
        snap.running = p.dice_done < p.dice_total;
        snap.calibration = cal_name;
        snap.dice_total = p.dice_total;
        snap.dice_done = p.dice_done;
        snap.shard = p.shard_index;
        snap.shards = p.shard_count;
        snap.resumed_dice =
            last_population_ ? last_population_->resumed_dice : 0;
        snap.yield_fresh = p.yield_fresh;
        snap.yield_aged = p.yield_aged;
        snap.fresh_mean_c = fresh.mean;
        snap.fresh_max_c = fresh.max;
        snap.fresh_p50_c = qv(fresh, 0);
        snap.fresh_p90_c = qv(fresh, 1);
        snap.fresh_p99_c = qv(fresh, 2);
        snap.aged_p99_c = qv(aged, 2);
        snap.drift_p50_c = qv(drift, 0);
        last_population_ = std::move(snap);
    };

    std::lock_guard job(job_m_);
    OBS_SPAN("service.session.population_run");

    {
        std::lock_guard lock(state_m_);
        PopulationSnapshot snap;
        snap.running = true;
        snap.calibration = cal_name;
        snap.dice_total = cfg.dice;
        snap.shards = static_cast<std::size_t>(
            (cfg.dice + cfg.shard_size - 1) / cfg.shard_size);
        last_population_ = std::move(snap);
    }

    population::PopulationResult res;
    try {
        res = population::run_population(cfg, rt);
    } catch (...) {
        // Cancellation (typed CancelledError -> "cancelled" wire error)
        // or a fault: mark the snapshot idle, keep the partial telemetry.
        std::lock_guard lock(state_m_);
        if (last_population_) last_population_->running = false;
        throw;
    }

    Json metrics_j = Json::array();
    for (const auto& m : res.metrics) {
        Json mj = Json::object();
        mj.set("name", m.name);
        mj.set("count", m.count);
        mj.set("mean", std::isfinite(m.mean) ? Json(m.mean) : Json(nullptr));
        mj.set("stddev",
               std::isfinite(m.stddev) ? Json(m.stddev) : Json(nullptr));
        mj.set("min", std::isfinite(m.min) ? Json(m.min) : Json(nullptr));
        mj.set("max", std::isfinite(m.max) ? Json(m.max) : Json(nullptr));
        Json q_j = Json::array();
        for (const auto& q : m.quantiles) {
            Json qj = Json::object();
            qj.set("p", q.p);
            qj.set("value",
                   std::isfinite(q.value) ? Json(q.value) : Json(nullptr));
            q_j.push_back(std::move(qj));
        }
        mj.set("quantiles", std::move(q_j));
        metrics_j.push_back(std::move(mj));
    }

    Json result = Json::object();
    result.set("session", id_);
    result.set("dice", res.dice);
    result.set("shards", static_cast<std::uint64_t>(res.shards));
    result.set("shard_size", static_cast<std::uint64_t>(res.shard_size));
    result.set("fingerprint", hex64(res.fingerprint));
    result.set("resumed_dice", res.resumed_dice);
    result.set("calibration", cal_name);
    result.set("corner", corner_name);
    result.set("horizon_hours", horizon);
    result.set("recal_interval_hours", recal_interval);
    result.set("yield_limit_c", yield_limit);
    result.set("yield_fresh", res.yield_fresh);
    result.set("yield_aged", res.yield_aged);
    result.set("metrics", std::move(metrics_j));

    {
        std::lock_guard lock(state_m_);
        if (last_population_) {
            last_population_->running = false;
            last_population_->resumed_dice = res.resumed_dice;
        }
    }
    return result;
}

ModelPtr Session::model() const {
    const Session* self = this;
    const std::size_t n_sites = sites_.size();

    auto counter_leaf = [](const std::atomic<std::uint64_t>& c) {
        return [&c] { return Json(c.load(std::memory_order_relaxed)); };
    };

    // One site's subtree: every leaf re-reads the snapshot under the
    // state mutex, so a query observes a coherent post-scan value
    // without ever touching the job mutex.
    auto site_node = [self](std::size_t i) -> ModelPtr {
        auto field = [self, i](auto read) {
            return leaf([self, i, read] {
                std::lock_guard lock(self->state_m_);
                return read(self->sites_[i]);
            });
        };
        return object({
            {"name", [field] {
                 return field([](const SiteSnapshot& s) { return Json(s.name); });
             }},
            {"x", [field] {
                 return field([](const SiteSnapshot& s) { return Json(s.x); });
             }},
            {"y", [field] {
                 return field([](const SiteSnapshot& s) { return Json(s.y); });
             }},
            {"health", [field] {
                 return field([](const SiteSnapshot& s) {
                     return Json(sensor::to_string(s.health));
                 });
             }},
            {"confidence", [field] {
                 return field([](const SiteSnapshot& s) {
                     return Json(sensor::to_string(s.confidence));
                 });
             }},
            {"last_c", [field] {
                 return field([](const SiteSnapshot& s) {
                     return s.has_reading ? Json(s.last_c) : Json(nullptr);
                 });
             }},
            {"faults_total", [field] {
                 return field([](const SiteSnapshot& s) {
                     return Json(s.faults_total);
                 });
             }},
            {"strikes", [field] {
                 return field(
                     [](const SiteSnapshot& s) { return Json(s.strikes); });
             }},
        });
    };

    auto config_node = [self]() -> ModelPtr {
        return object({
            {"stages", [self] {
                 return fixed_leaf(Json(self->spec_.ring.stage_count()));
             }},
            {"sites_nx",
             [self] { return fixed_leaf(Json(self->spec_.sites_nx)); }},
            {"sites_ny",
             [self] { return fixed_leaf(Json(self->spec_.sites_ny)); }},
            {"health_enabled", [self] {
                 return fixed_leaf(Json(self->spec_.runtime.health_enabled()));
             }},
            {"redundancy", [self] {
                 return fixed_leaf(Json(self->spec_.runtime.redundancy_count()));
             }},
            {"fast_kernel", [self] {
                 return fixed_leaf(
                     Json(self->spec_.runtime.fast_kernel_enabled()));
             }},
            {"fault_policy", [self] {
                 return fixed_leaf(
                     Json(ring::to_string(self->spec_.runtime.fault().policy)));
             }},
        });
    };

    // sessions[i].dtm — the most recent closed-loop run, if any. Every
    // leaf re-reads the published snapshot under the state mutex; the
    // regions array renders empty before the first dtm_run.
    auto dtm_node = [self]() -> ModelPtr {
        auto summary = [self](auto read) {
            return leaf([self, read] {
                std::lock_guard lock(self->state_m_);
                if (!self->last_dtm_) return Json(nullptr);
                return read(*self->last_dtm_);
            });
        };
        auto region_node = [self](std::size_t i) -> ModelPtr {
            auto field = [self, i](auto read) {
                return leaf([self, i, read] {
                    std::lock_guard lock(self->state_m_);
                    if (!self->last_dtm_ ||
                        i >= self->last_dtm_->regions.size()) {
                        return Json(nullptr);
                    }
                    return read(self->last_dtm_->regions[i]);
                });
            };
            return object({
                {"name", [field] {
                     return field([](const DtmRegionSnapshot& r) {
                         return Json(r.name);
                     });
                 }},
                {"state", [field] {
                     return field([](const DtmRegionSnapshot& r) {
                         return Json(r.state);
                     });
                 }},
                {"fault", [field] {
                     return field([](const DtmRegionSnapshot& r) {
                         return Json(r.fault);
                     });
                 }},
                {"u", [field] {
                     return field(
                         [](const DtmRegionSnapshot& r) { return Json(r.u); });
                 }},
                {"true_c", [field] {
                     return field([](const DtmRegionSnapshot& r) {
                         return Json(r.true_c);
                     });
                 }},
                {"peak_true_c", [field] {
                     return field([](const DtmRegionSnapshot& r) {
                         return Json(r.peak_true_c);
                     });
                 }},
                {"measured_c", [field] {
                     return field([](const DtmRegionSnapshot& r) {
                         return r.has_measurement ? Json(r.measured_c)
                                                  : Json(nullptr);
                     });
                 }},
                {"trust", [field] {
                     return field([](const DtmRegionSnapshot& r) {
                         return Json(r.trust);
                     });
                 }},
                {"fault_latches", [field] {
                     return field([](const DtmRegionSnapshot& r) {
                         return Json(r.fault_latches);
                     });
                 }},
                {"probes", [field] {
                     return field([](const DtmRegionSnapshot& r) {
                         return Json(r.probes);
                     });
                 }},
            });
        };
        return object({
            {"runs", [self] {
                 return leaf([self] {
                     return Json(
                         self->dtm_runs_.load(std::memory_order_relaxed));
                 });
             }},
            {"supervised", [summary] {
                 return summary(
                     [](const DtmSnapshot& s) { return Json(s.supervised); });
             }},
            {"die_peak_c", [summary] {
                 return summary(
                     [](const DtmSnapshot& s) { return Json(s.die_peak_c); });
             }},
            {"settling_time_s", [summary] {
                 return summary([](const DtmSnapshot& s) {
                     return Json(s.settling_time_s);
                 });
             }},
            {"max_overshoot_c", [summary] {
                 return summary([](const DtmSnapshot& s) {
                     return Json(s.max_overshoot_c);
                 });
             }},
            {"fault_latches", [summary] {
                 return summary([](const DtmSnapshot& s) {
                     return Json(s.fault_latches);
                 });
             }},
            {"tune_solves", [summary] {
                 return summary(
                     [](const DtmSnapshot& s) { return Json(s.tune_solves); });
             }},
            {"steps", [summary] {
                 return summary(
                     [](const DtmSnapshot& s) { return Json(s.steps); });
             }},
            {"regions", [self, region_node] {
                 return array(
                     [self] {
                         std::lock_guard lock(self->state_m_);
                         return self->last_dtm_
                                    ? self->last_dtm_->regions.size()
                                    : std::size_t{0};
                     },
                     region_node);
             }},
        });
    };

    // sessions[i].kernel — the transient-kernel configuration this
    // session's SPICE work runs with (projected once from the immutable
    // spec) plus the live kernel counters. The counters come from the
    // process-wide metrics registry — the transient engine is shared, so
    // they aggregate across sessions; the config leaves are what make
    // the node per-session.
    auto kernel_node = [self]() -> ModelPtr {
        const spice::TransientOptions k =
            self->spec_.runtime.transient_options();
        const util::SimdLevel dispatch = util::resolve_simd(k.simd);
        auto metric = [](const char* name) {
            return leaf([name] {
                return Json(
                    exec::MetricsRegistry::global().counter(name).value());
            });
        };
        return object({
            {"fast", [self] {
                 return fixed_leaf(
                     Json(self->spec_.runtime.fast_kernel_enabled()));
             }},
            {"batch_eval", [k] { return fixed_leaf(Json(k.batch_eval)); }},
            {"simd", [dispatch] {
                 return fixed_leaf(Json(util::simd_level_name(dispatch)));
             }},
            {"banded_lu", [k] { return fixed_leaf(Json(k.banded_lu)); }},
            {"reuse_lu", [k] { return fixed_leaf(Json(k.reuse_lu)); }},
            {"lockstep_width",
             [k] { return fixed_leaf(Json(k.lockstep_width)); }},
            {"bypass_tol_v", [k] { return fixed_leaf(Json(k.bypass_tol_v)); }},
            {"batch_lanes", [metric] { return metric("spice.eval.batch_lanes"); }},
            {"simd_groups", [metric] { return metric("spice.eval.simd_groups"); }},
            {"bypass_hits", [metric] { return metric("spice.eval.bypass_hits"); }},
            {"banded_factors",
             [metric] { return metric("spice.lu.banded_factors"); }},
            {"refactors", [metric] { return metric("spice.newton.refactor"); }},
            {"lu_reuses", [metric] { return metric("spice.newton.reuse"); }},
        });
    };

    // sessions[i].population — the most recent (or currently running)
    // population study. Leaves re-read the snapshot published by the
    // engine's per-shard callback under the state mutex, so a second
    // client watches dice_done and the running quantiles advance while
    // the run still holds the job mutex.
    auto population_node = [self]() -> ModelPtr {
        auto field = [self](auto read) {
            return leaf([self, read] {
                std::lock_guard lock(self->state_m_);
                if (!self->last_population_) return Json(nullptr);
                return read(*self->last_population_);
            });
        };
        return object({
            {"runs", [self] {
                 return leaf([self] {
                     return Json(self->population_runs_.load(
                         std::memory_order_relaxed));
                 });
             }},
            {"running", [field] {
                 return field([](const PopulationSnapshot& s) {
                     return Json(s.running);
                 });
             }},
            {"calibration", [field] {
                 return field([](const PopulationSnapshot& s) {
                     return Json(s.calibration);
                 });
             }},
            {"dice_total", [field] {
                 return field([](const PopulationSnapshot& s) {
                     return Json(s.dice_total);
                 });
             }},
            {"dice_done", [field] {
                 return field([](const PopulationSnapshot& s) {
                     return Json(s.dice_done);
                 });
             }},
            {"shard", [field] {
                 return field([](const PopulationSnapshot& s) {
                     return Json(static_cast<std::uint64_t>(s.shard));
                 });
             }},
            {"shards", [field] {
                 return field([](const PopulationSnapshot& s) {
                     return Json(static_cast<std::uint64_t>(s.shards));
                 });
             }},
            {"resumed_dice", [field] {
                 return field([](const PopulationSnapshot& s) {
                     return Json(s.resumed_dice);
                 });
             }},
            {"yield_fresh", [field] {
                 return field([](const PopulationSnapshot& s) {
                     return Json(s.yield_fresh);
                 });
             }},
            {"yield_aged", [field] {
                 return field([](const PopulationSnapshot& s) {
                     return Json(s.yield_aged);
                 });
             }},
            {"fresh_mean_c", [field] {
                 return field([](const PopulationSnapshot& s) {
                     return Json(s.fresh_mean_c);
                 });
             }},
            {"fresh_p50_c", [field] {
                 return field([](const PopulationSnapshot& s) {
                     return Json(s.fresh_p50_c);
                 });
             }},
            {"fresh_p90_c", [field] {
                 return field([](const PopulationSnapshot& s) {
                     return Json(s.fresh_p90_c);
                 });
             }},
            {"fresh_p99_c", [field] {
                 return field([](const PopulationSnapshot& s) {
                     return Json(s.fresh_p99_c);
                 });
             }},
            {"fresh_max_c", [field] {
                 return field([](const PopulationSnapshot& s) {
                     return Json(s.fresh_max_c);
                 });
             }},
            {"aged_p99_c", [field] {
                 return field([](const PopulationSnapshot& s) {
                     return Json(s.aged_p99_c);
                 });
             }},
            {"drift_p50_c", [field] {
                 return field([](const PopulationSnapshot& s) {
                     return Json(s.drift_p50_c);
                 });
             }},
        });
    };

    return object({
        {"id", [self] { return fixed_leaf(Json(self->id_)); }},
        {"name", [self] { return fixed_leaf(Json(self->name_)); }},
        {"requests",
         [self, counter_leaf] { return leaf(counter_leaf(self->requests_)); }},
        {"sweeps",
         [self, counter_leaf] { return leaf(counter_leaf(self->sweeps_)); }},
        {"maps",
         [self, counter_leaf] { return leaf(counter_leaf(self->maps_)); }},
        {"measures",
         [self, counter_leaf] { return leaf(counter_leaf(self->measures_)); }},
        {"optimizes",
         [self, counter_leaf] { return leaf(counter_leaf(self->optimizes_)); }},
        {"dtm_runs",
         [self, counter_leaf] { return leaf(counter_leaf(self->dtm_runs_)); }},
        {"population_runs",
         [self, counter_leaf] {
             return leaf(counter_leaf(self->population_runs_));
         }},
        {"scans", [self] {
             return leaf([self] {
                 std::lock_guard lock(self->state_m_);
                 return Json(self->scans_);
             });
         }},
        {"config", config_node},
        {"sites", [self, n_sites, site_node] {
             return array([n_sites] { return n_sites; },
                          [site_node](std::size_t i) { return site_node(i); });
         }},
        {"last_map", [self] {
             return leaf([self] {
                 std::lock_guard lock(self->state_m_);
                 return self->last_map_summary_ ? *self->last_map_summary_
                                                : Json(nullptr);
             });
         }},
        {"dtm", dtm_node},
        {"population", population_node},
        {"kernel", kernel_node},
    });
}

} // namespace stsense::service
