// service transports — how request/response lines reach the server.
//
// The server is transport-agnostic: it speaks to a Connection (blocking
// line reads, thread-safe line writes) and accepts Connections from a
// Transport. Two implementations:
//
//   * LoopbackTransport — an in-process pair of line queues. Tests,
//     benches, and the example's demo mode run the full protocol stack
//     (framing, dispatch, fair queue, drain) with zero OS dependencies
//     and no real socket, so the loopback smoke can run under the
//     sanitizer matrix.
//   * UnixSocketTransport — AF_UNIX stream socket for the resident
//     daemon. One connection per accepted client; line framing over the
//     byte stream.
//
// Lifetime contract: shutdown() unblocks accept() (returning nullptr)
// and close()s every connection the transport handed out, so server
// threads blocked in read_line() observe end-of-stream and exit.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

namespace stsense::service {

/// One bidirectional line-oriented peer link.
class Connection {
public:
    virtual ~Connection() = default;

    /// Blocks for the next line (without the trailing '\n'); false on
    /// end-of-stream (peer closed or transport shut down).
    virtual bool read_line(std::string& out) = 0;

    /// Writes one line (terminator appended). Thread-safe — responses
    /// and subscription events are written from pool workers and reader
    /// threads concurrently. Returns false once the peer is gone.
    virtual bool write_line(const std::string& line) = 0;

    /// Half-close: wakes blocked readers on both ends.
    virtual void close() = 0;
};

class Transport {
public:
    virtual ~Transport() = default;

    /// Blocks for the next client; nullptr once shut down.
    virtual std::shared_ptr<Connection> accept() = 0;

    /// Stops accepting and closes every open connection.
    virtual void shutdown() = 0;
};

/// In-process transport. connect() hands the client its endpoint and
/// queues the server endpoint for accept().
class LoopbackTransport : public Transport {
public:
    LoopbackTransport();
    ~LoopbackTransport() override;

    /// Client side of a fresh connection (thread-safe).
    std::shared_ptr<Connection> connect();

    std::shared_ptr<Connection> accept() override;
    void shutdown() override;

private:
    struct Impl;
    std::shared_ptr<Impl> impl_;
};

/// AF_UNIX stream-socket transport (the daemon's front door).
class UnixSocketTransport : public Transport {
public:
    /// Binds and listens on `path` (an existing stale socket file is
    /// unlinked first). Throws std::runtime_error on socket errors.
    explicit UnixSocketTransport(std::string path, int backlog = 16);
    ~UnixSocketTransport() override;

    std::shared_ptr<Connection> accept() override;
    void shutdown() override;

    const std::string& path() const { return path_; }

    /// Client-side connect to a listening daemon; nullptr on failure.
    static std::shared_ptr<Connection> dial(const std::string& path);

private:
    struct Impl;
    std::string path_;
    std::shared_ptr<Impl> impl_;
};

} // namespace stsense::service
