// service retry — client-side re-submit with jittered backoff.
//
// Admission control answers a saturated client with a typed
// `overloaded` error instead of queueing unboundedly; the polite client
// response is to back off and re-submit. This helper packages that
// loop:
//
//   * exponential backoff with multiplicative growth and a cap,
//     jittered by a seeded util::Rng so synchronized clients decorrelate
//     deterministically (the same seed replays the same sleep schedule);
//   * idempotent re-submits: the wire id is derived from a fingerprint
//     of (method, params), so every attempt sends byte-identical lines.
//     A server that checkpointed partial work under its spool dir
//     resumes the re-issued request bitwise instead of recomputing it;
//   * one outstanding request per helper: call() blocks until the
//     response with its id arrives, skipping subscription events and
//     unrelated responses are not expected (do not share the connection
//     with concurrently pending calls).
//
// Only `overloaded` is retried. `deadline-unmet` is terminal by
// construction (an end-to-end deadline that lapsed will not un-lapse),
// and `cancelled`/`shutting-down` mean someone upstream decided the
// work should not run.
#pragma once

#include "service/json.hpp"
#include "service/protocol.hpp"
#include "service/transport.hpp"
#include "util/rng.hpp"

#include <cstdint>
#include <memory>
#include <string>

namespace stsense::service {

struct RetryPolicy {
    /// Total attempts, the first submit included. <= 1 disables retry.
    int max_attempts = 4;
    /// Backoff before the first re-submit, milliseconds.
    double base_ms = 5.0;
    /// Growth factor per further re-submit.
    double multiplier = 2.0;
    /// Backoff cap, milliseconds.
    double max_ms = 250.0;
    /// Fraction of each backoff that is uniformly randomized: the sleep
    /// is backoff * (1 - jitter + jitter * u), u ~ U[0,1). 0 = none.
    double jitter = 0.5;
    /// Seed of the jitter stream — fixed seed, replayable schedule.
    std::uint64_t seed = 0x57a7e15eedULL;
};

/// True when a re-submit of the identical request can succeed
/// (currently: Overloaded only).
bool retryable(ErrorCode code);

/// Deterministic idempotency key over (method, params) — FNV-1a folded
/// to a non-negative int63 so it is usable as the wire id directly.
std::int64_t request_fingerprint(const std::string& method,
                                 const Json& params);

/// The backoff (ms, pre-jitter) before re-submit number `retry_index`
/// (0-based). Exposed for tests pinning the schedule.
double retry_backoff_ms(const RetryPolicy& policy, int retry_index);

class RetryingClient {
public:
    struct CallResult {
        Json response;    ///< Full final response object.
        int attempts = 0; ///< Submits performed (>= 1).
        bool ok = false;  ///< response["ok"].
    };

    explicit RetryingClient(std::shared_ptr<Connection> conn,
                            RetryPolicy policy = {});

    /// Sends `method`/`params` (with a wire deadline when
    /// `deadline_ms` > 0), retrying retryable() rejections with
    /// jittered exponential backoff up to policy.max_attempts. Returns
    /// the final response — ok, or the last error. Throws
    /// std::runtime_error when the connection closes mid-call.
    CallResult call(const std::string& method, const Json& params,
                    double deadline_ms = 0.0);

    /// Re-submits performed across the helper's lifetime.
    std::uint64_t retries() const { return retries_; }

private:
    std::shared_ptr<Connection> conn_;
    RetryPolicy policy_;
    util::Rng rng_;
    std::uint64_t retries_ = 0;
};

} // namespace stsense::service
