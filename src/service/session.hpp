// service::Session — one die under management.
//
// A session is the unit of multi-tenancy of the telemetry service: it
// owns a die's technology card, ring configuration, floorplan, sensor
// placement, and — crucially — the *stateful* runtime pieces that must
// persist across requests: the ThermalMonitor with its
// SiteHealthSupervisor ledger (quarantine, backoff, recovery walk the
// epochs forward scan over scan) and the RuntimeOptions that project
// every per-layer runtime struct.
//
// Requests against one session serialize on the session's job mutex
// (the supervisor is a single ledger; two concurrent scans would race
// it); requests against different sessions run concurrently on the
// server's shared pool. The session publishes a lazily-evaluated object
// model subtree (sessions[i].sites[j].health, .last_map, .config) that
// readers evaluate without touching the job mutex — queries never block
// behind a running sweep.
//
// Determinism contract, inherited from the layers below: the same
// request against the same session state yields bitwise the same result
// regardless of client interleaving, thread count, or a kill/resume
// cycle through the per-request checkpoint (spool_dir).
#pragma once

#include "api/runtime_options.hpp"
#include "sensor/monitor.hpp"
#include "service/object_model.hpp"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace stsense::dtm {
class DtmFleet;
}

namespace stsense::service {

/// Everything needed to stand up one die session. The defaults are the
/// paper configuration (5-inverter ring on the demo floorplan, 3x3
/// sensor sites) — examples/thermal_mapping.cpp is the style reference.
struct SessionSpec {
    std::string name;
    phys::Technology tech = phys::cmos350();
    ring::RingConfig ring =
        ring::RingConfig::uniform(cells::CellKind::Inv, 5, 2.75);
    thermal::Floorplan floorplan = thermal::demo_floorplan();
    int sites_nx = 3;
    int sites_ny = 3;
    /// Monitor base (grid resolution, gate, calibration points); the
    /// health/redundancy knobs are overlaid from `runtime`.
    sensor::MonitorConfig monitor;
    /// The unified knob surface: health, redundancy, fast kernel, fault
    /// policy, cache, checkpoint cadence. The session projects this
    /// onto SweepRuntime / OptimizerRuntime / MonitorConfig, overriding
    /// the pool and cache with the server's shared ones.
    stsense::RuntimeOptions runtime;
};

class Session {
public:
    /// `pool`/`cache` are the server's shared runtime; `spool_dir`
    /// (empty = no checkpointing) is where per-request sweep/optimizer
    /// checkpoints live so a restarted server can resume them.
    Session(int id, SessionSpec spec, exec::ThreadPool* pool,
            exec::ResultCache* cache, std::string spool_dir);
    ~Session(); // out of line: dtm::DtmFleet is forward-declared here

    int id() const { return id_; }
    const std::string& name() const { return name_; }
    std::size_t site_count() const { return monitor_.sites().size(); }

    // ---- request handlers (serialized on the job mutex) -----------------

    /// {"site": index | name, "fresh": bool} -> one SiteReading. Uses
    /// the cached map when available unless fresh is set.
    Json measure_site(const Json& params);

    /// {} -> full thermal map summary (always runs a fresh scan).
    Json thermal_map(const Json& params);

    /// {"t_min_c","t_max_c","points","engine":"analytic"|"spice"}
    /// -> the period/frequency series at full (round-trip) precision.
    /// Checkpointed under spool_dir keyed by the sweep fingerprint, so a
    /// killed request resumes bitwise on re-issue.
    Json sweep(const Json& params);

    /// {"ratio_lo","ratio_hi","points","stages"} -> ranked ratio sweep
    /// (the Fig. 2 optimization axis) with the best point called out.
    Json optimize(const Json& params);

    /// {"supervised","duration_s","target_c","trip_c","grid"} -> one
    /// supervised closed-loop DTM fleet run over this session's die:
    /// autotune (cached across repeat requests with identical params),
    /// run, and report per-region controller/supervisor telemetry. The
    /// fleet owns a private monitor; the session's readout ledger is
    /// untouched. Publishes the outcome for sessions[i].dtm queries.
    Json dtm_run(const Json& params);

    /// {"dice","shard","seed","calibration","horizon_hours",
    ///  "recal_interval_hours","recal_temp_c","yield_limit_c","corner"}
    /// -> one population Monte-Carlo study over this session's die
    /// design: sharded, streaming-statistics, checkpointed under
    /// spool_dir keyed by the population fingerprint (a killed request
    /// resumes bitwise on re-issue). Publishes a live snapshot after
    /// every folded shard for sessions[i].population queries — a second
    /// client can watch dice_done / running quantiles mid-run.
    Json population_run(const Json& params);

    // ---- object model ----------------------------------------------------

    /// The sessions[i] subtree. Leaves read the session's published
    /// state under the state mutex — never the job mutex.
    ModelPtr model() const;

    // ---- introspection ---------------------------------------------------
    std::uint64_t requests() const { return requests_.load(std::memory_order_relaxed); }

private:
    /// Runs a scan and publishes its summary; requires job_m_ held.
    sensor::MapResult scan_locked();
    /// Copies the scan outcome into the query-visible snapshot.
    void publish_map(const sensor::MapResult& map);

    static Json reading_json(const sensor::SiteReading& r);

    const int id_;
    const std::string name_;
    SessionSpec spec_;
    exec::ThreadPool* pool_;
    exec::ResultCache* cache_;
    const std::string spool_dir_;

    /// Serializes heavy work (the supervisor ledger is one state
    /// machine; scans must not interleave).
    std::mutex job_m_;
    sensor::ThermalMonitor monitor_;

    /// Lazily built closed-loop DTM fleet (guarded by job_m_). Keyed by
    /// the request params that shape it: a repeat request with the same
    /// key reuses the tuned fleet (runs reset their own state), so only
    /// the first call per parameter set pays the autotune solves.
    std::unique_ptr<dtm::DtmFleet> dtm_fleet_;
    std::string dtm_fleet_key_;

    /// Query-visible state, guarded by state_m_ only — object-model
    /// reads never wait on a running job.
    mutable std::mutex state_m_;
    struct SiteSnapshot {
        std::string name;
        double x = 0.0;
        double y = 0.0;
        sensor::SiteState health = sensor::SiteState::Healthy;
        sensor::SiteConfidence confidence = sensor::SiteConfidence::Measured;
        double last_c = 0.0;
        bool has_reading = false;
        std::uint64_t faults_total = 0;
        int strikes = 0;
    };
    std::vector<SiteSnapshot> sites_;
    std::vector<sensor::SiteReading> last_readings_;
    std::optional<Json> last_map_summary_;
    std::uint64_t scans_ = 0;

    /// Query-visible outcome of the most recent dtm_run: strings (not
    /// dtm enums) so the object-model leaves render without holding any
    /// dtm type, and the header stays free of dtm includes.
    struct DtmRegionSnapshot {
        std::string name;
        std::string state;
        std::string fault;
        double u = 0.0;
        double true_c = 0.0;
        double measured_c = 0.0;
        bool has_measurement = false;
        double trust = 0.0;
        double peak_true_c = 0.0;
        std::uint64_t fault_latches = 0;
        std::uint64_t probes = 0;
    };
    struct DtmSnapshot {
        bool supervised = true;
        double die_peak_c = 0.0;
        double settling_time_s = -1.0;
        double max_overshoot_c = 0.0;
        std::uint64_t fault_latches = 0;
        std::uint64_t tune_solves = 0;
        std::uint64_t steps = 0;
        std::vector<DtmRegionSnapshot> regions;
    };
    std::optional<DtmSnapshot> last_dtm_;

    /// Query-visible state of the most recent population_run, updated
    /// live from the engine's per-shard progress callback (under
    /// state_m_ only): queries observe dice_done, the shard index, and
    /// the running quantiles while the job mutex is held by the run.
    struct PopulationSnapshot {
        bool running = false;
        std::string calibration;
        std::uint64_t dice_total = 0;
        std::uint64_t dice_done = 0;
        std::size_t shard = 0;  ///< Shards folded so far.
        std::size_t shards = 0; ///< Total shards.
        std::uint64_t resumed_dice = 0;
        double yield_fresh = 0.0;
        double yield_aged = 0.0;
        double fresh_mean_c = 0.0;
        double fresh_p50_c = 0.0;
        double fresh_p90_c = 0.0;
        double fresh_p99_c = 0.0;
        double fresh_max_c = 0.0;
        double aged_p99_c = 0.0;
        double drift_p50_c = 0.0;
    };
    std::optional<PopulationSnapshot> last_population_;

    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> sweeps_{0};
    std::atomic<std::uint64_t> maps_{0};
    std::atomic<std::uint64_t> measures_{0};
    std::atomic<std::uint64_t> optimizes_{0};
    std::atomic<std::uint64_t> dtm_runs_{0};
    std::atomic<std::uint64_t> population_runs_{0};
};

} // namespace stsense::service
