// service::CommandProcessor — the method registry of the telemetry
// service (the RepRapFirmware GCodeBuffer/command-table idiom, JSON
// flavored): every wire method is one registered entry naming its
// handler and its *weight class*.
//
// Light methods (query, ping, sessions, subscribe, shutdown...) execute
// inline on the connection's reader thread — they only read atomics or
// take short state locks, so they stay responsive even when every pool
// worker is busy with sweeps. Heavy methods (measure_site, thermal_map,
// sweep, optimize) are submitted through the FairScheduler and answer
// out of order; the dispatcher is what turns an admission rejection into
// a typed Overloaded/ShuttingDown response instead of a hang.
//
// The registry itself is deliberately dumb — name -> {weight, handler} —
// so the server composes it from lambdas over its own state and the
// tests can register toy methods (e.g. the deterministic `burn` load
// generator) without touching the server.
#pragma once

#include "exec/cancel.hpp"
#include "service/json.hpp"
#include "service/transport.hpp"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace stsense::service {

/// Per-request data the server hands a handler.
struct RequestContext {
    int client = -1;           ///< FairScheduler client id of the connection.
    std::int64_t request_id = 0;
    /// The requesting connection — subscribe-style handlers register it
    /// for pushes. May be null for in-process (loopback-free) dispatch.
    std::shared_ptr<Connection> connection;
    /// Per-request cancel token (child of the client's token, deadline-
    /// armed when the request carried deadline_ms). The dispatcher
    /// installs it as the ambient CancelScope around the handler, so
    /// every poll point below — sweep dispatch, optimizer candidates,
    /// Newton iterations — observes a fired cancel or expired deadline.
    /// Invalid (default) for light methods: polling stays free.
    exec::CancelToken cancel;
};

using Handler = std::function<Json(const Json& params, RequestContext& ctx)>;

class CommandProcessor {
public:
    struct CommandSpec {
        bool heavy = false; ///< true: route through the fair scheduler.
        Handler handler;
    };

    /// Registers (or replaces) a method.
    void register_method(const std::string& name, bool heavy, Handler handler);

    /// nullptr when the method is unknown.
    const CommandSpec* find(const std::string& name) const;

    /// Registered method names, sorted (the `help` payload).
    std::vector<std::string> methods() const;

private:
    std::map<std::string, CommandSpec> commands_;
};

} // namespace stsense::service
