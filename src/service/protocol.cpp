#include "service/protocol.hpp"

#include <cmath>

namespace stsense::service {

const char* to_string(ErrorCode code) {
    switch (code) {
        case ErrorCode::MalformedRequest: return "malformed-request";
        case ErrorCode::UnknownMethod: return "unknown-method";
        case ErrorCode::BadParams: return "bad-params";
        case ErrorCode::UnknownSession: return "unknown-session";
        case ErrorCode::UnknownPath: return "unknown-path";
        case ErrorCode::Overloaded: return "overloaded";
        case ErrorCode::ShuttingDown: return "shutting-down";
        case ErrorCode::Internal: return "internal";
        case ErrorCode::Cancelled: return "cancelled";
        case ErrorCode::DeadlineUnmet: return "deadline-unmet";
    }
    return "unknown";
}

Request parse_request(const std::string& line) {
    JsonParseResult parsed = Json::parse(line);
    if (!parsed.value) {
        throw ServiceError(ErrorCode::MalformedRequest, parsed.error);
    }
    const Json& doc = *parsed.value;
    if (!doc.is_object()) {
        throw ServiceError(ErrorCode::MalformedRequest,
                           "request must be a JSON object");
    }
    if (!doc.at("id").is_number()) {
        throw ServiceError(ErrorCode::MalformedRequest,
                           "request needs a numeric \"id\"");
    }
    const double id_raw = doc.at("id").as_double();
    if (std::floor(id_raw) != id_raw || id_raw < -9.2233720368547758e18 ||
        id_raw > 9.2233720368547758e18) {
        throw ServiceError(ErrorCode::MalformedRequest,
                           "\"id\" must be an integer");
    }
    if (!doc.at("method").is_string() ||
        doc.at("method").as_string().empty()) {
        throw ServiceError(ErrorCode::MalformedRequest,
                           "request needs a non-empty string \"method\"");
    }
    Request req;
    req.id = doc.at("id").as_int64();
    req.method = doc.at("method").as_string();
    const Json& params = doc.at("params");
    if (params.is_object()) {
        req.params = params;
    } else if (params.is_null()) {
        req.params = Json::object();
    } else {
        throw ServiceError(ErrorCode::MalformedRequest,
                           "\"params\" must be an object when present");
    }
    const Json& deadline = doc.at("deadline_ms");
    if (!deadline.is_null()) {
        if (!deadline.is_number()) {
            throw ServiceError(ErrorCode::MalformedRequest,
                               "\"deadline_ms\" must be a number");
        }
        const double ms = deadline.as_double();
        if (!std::isfinite(ms) || ms < 0.0) {
            throw ServiceError(ErrorCode::MalformedRequest,
                               "\"deadline_ms\" must be finite and >= 0");
        }
        req.deadline_ms = ms;
    }
    return req;
}

std::string make_ok_response(std::int64_t id, Json result) {
    Json doc = Json::object();
    doc.set("id", id);
    doc.set("ok", true);
    doc.set("result", std::move(result));
    return doc.dump();
}

std::string make_error_response(std::int64_t id, ErrorCode code,
                                const std::string& message) {
    Json err = Json::object();
    err.set("code", to_string(code));
    err.set("message", message);
    Json doc = Json::object();
    doc.set("id", id);
    doc.set("ok", false);
    doc.set("error", std::move(err));
    return doc.dump();
}

std::string make_event(std::uint64_t seq, const std::string& path, Json value) {
    Json doc = Json::object();
    doc.set("event", "update");
    doc.set("seq", seq);
    doc.set("path", path);
    doc.set("value", std::move(value));
    return doc.dump();
}

} // namespace stsense::service
