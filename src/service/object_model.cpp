#include "service/object_model.hpp"

#include <cctype>

namespace stsense::service {

namespace {

class LeafNode final : public ModelNode {
public:
    explicit LeafNode(std::function<Json()> read) : read_(std::move(read)) {}
    bool is_leaf() const override { return true; }
    Json value() const override { return read_(); }

private:
    std::function<Json()> read_;
};

class ObjectNode final : public ModelNode {
public:
    explicit ObjectNode(std::vector<std::pair<std::string, ChildFactory>> children)
        : children_(std::move(children)) {}

    std::vector<std::string> keys() const override {
        std::vector<std::string> out;
        out.reserve(children_.size());
        for (const auto& [name, factory] : children_) out.push_back(name);
        return out;
    }

    ModelPtr child(const std::string& key) const override {
        for (const auto& [name, factory] : children_) {
            if (name == key) return factory();
        }
        return nullptr;
    }

private:
    std::vector<std::pair<std::string, ChildFactory>> children_;
};

class ArrayNode final : public ModelNode {
public:
    ArrayNode(std::function<std::size_t()> count,
              std::function<ModelPtr(std::size_t)> at)
        : count_(std::move(count)), at_(std::move(at)) {}

    bool is_array() const override { return true; }
    std::size_t length() const override { return count_(); }
    ModelPtr element(std::size_t index) const override {
        return index < count_() ? at_(index) : nullptr;
    }

private:
    std::function<std::size_t()> count_;
    std::function<ModelPtr(std::size_t)> at_;
};

/// Renders `node` to Json, honoring the depth budget and key filter.
/// `depth_left` counts container levels still allowed to open.
Json render(const ModelNode& node, int depth_left, const std::string& filter) {
    if (node.is_leaf()) return node.value();
    if (depth_left <= 0) return Json(QueryOptions::kTruncated);
    if (node.is_array()) {
        Json out = Json::array();
        const std::size_t n = node.length();
        for (std::size_t i = 0; i < n; ++i) {
            const ModelPtr el = node.element(i);
            out.push_back(el ? render(*el, depth_left - 1, filter)
                             : Json(nullptr));
        }
        return out;
    }
    Json out = Json::object();
    for (const auto& key : node.keys()) {
        if (!filter.empty() && !wildcard_match(filter, key)) continue;
        const ModelPtr ch = node.child(key);
        if (!ch) continue;
        out.set(key, render(*ch, depth_left - 1, filter));
    }
    return out;
}

} // namespace

ModelPtr leaf(std::function<Json()> read) {
    return std::make_shared<LeafNode>(std::move(read));
}

ModelPtr fixed_leaf(Json value) {
    return std::make_shared<LeafNode>(
        [v = std::move(value)] { return v; });
}

ModelPtr object(std::vector<std::pair<std::string, ChildFactory>> children) {
    return std::make_shared<ObjectNode>(std::move(children));
}

ModelPtr array(std::function<std::size_t()> count,
               std::function<ModelPtr(std::size_t)> at) {
    return std::make_shared<ArrayNode>(std::move(count), std::move(at));
}

bool wildcard_match(const std::string& pattern, const std::string& text) {
    // Iterative '*' matcher with backtracking to the last star.
    std::size_t p = 0;
    std::size_t t = 0;
    std::size_t star = std::string::npos;
    std::size_t mark = 0;
    while (t < text.size()) {
        if (p < pattern.size() && (pattern[p] == text[t])) {
            ++p;
            ++t;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            mark = t;
        } else if (star != std::string::npos) {
            p = star + 1;
            t = ++mark;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*') ++p;
    return p == pattern.size();
}

bool parse_model_path(const std::string& path, std::vector<std::string>& out,
                      std::string& error) {
    out.clear();
    std::size_t i = 0;
    const std::size_t n = path.size();
    auto ident = [&]() -> bool {
        const std::size_t start = i;
        while (i < n && (std::isalnum(static_cast<unsigned char>(path[i])) ||
                         path[i] == '_')) {
            ++i;
        }
        if (i == start) {
            error = "expected a name at offset " + std::to_string(start);
            return false;
        }
        out.push_back(path.substr(start, i - start));
        return true;
    };
    // Leading identifier (optional "state" root alias, dropped below).
    if (n == 0) return true;
    if (!ident()) return false;
    if (out.back() == "state") out.pop_back();
    while (i < n) {
        if (path[i] == '.') {
            ++i;
            if (!ident()) return false;
        } else if (path[i] == '[') {
            ++i;
            const std::size_t start = i;
            while (i < n && std::isdigit(static_cast<unsigned char>(path[i]))) ++i;
            if (i == start || i >= n || path[i] != ']') {
                error = "expected [index] at offset " + std::to_string(start);
                return false;
            }
            out.push_back("[" + path.substr(start, i - start) + "]");
            ++i;
        } else {
            error = std::string("unexpected '") + path[i] + "' at offset " +
                    std::to_string(i);
            return false;
        }
    }
    return true;
}

QueryResult query_model(const ModelPtr& root, const std::string& path,
                        const QueryOptions& opt) {
    QueryResult result;
    if (!root) {
        result.error = "no object model";
        return result;
    }
    std::vector<std::string> segments;
    std::string parse_error;
    if (!parse_model_path(path, segments, parse_error)) {
        result.error = "bad path '" + path + "': " + parse_error;
        return result;
    }
    ModelPtr node = root;
    std::string where = "state";
    for (const auto& seg : segments) {
        ModelPtr next;
        if (seg.size() >= 2 && seg.front() == '[') {
            const std::size_t index = static_cast<std::size_t>(
                std::stoull(seg.substr(1, seg.size() - 2)));
            if (!node->is_array()) {
                result.error = where + " is not an array";
                return result;
            }
            next = node->element(index);
            if (!next) {
                result.error = where + seg + " is out of range (length " +
                               std::to_string(node->length()) + ")";
                return result;
            }
            where += seg;
        } else {
            next = node->child(seg);
            if (!next) {
                result.error = "no key '" + seg + "' under " + where;
                return result;
            }
            where += "." + seg;
        }
        node = std::move(next);
    }
    result.ok = true;
    result.value = render(*node, opt.depth < 0 ? 0 : opt.depth, opt.filter);
    return result;
}

} // namespace stsense::service
