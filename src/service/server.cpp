#include "service/server.hpp"

#include "exec/metrics.hpp"
#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>
#include <utility>

namespace stsense::service {

namespace {

/// Best-effort id recovery from a line that failed request parsing, so
/// even a malformed-request error correlates when it can.
std::int64_t salvage_id(const std::string& line) {
    auto parsed = Json::parse(line);
    if (parsed.value && parsed.value->is_object() &&
        parsed.value->at("id").is_number()) {
        return parsed.value->at("id").as_int64();
    }
    return 0;
}

/// True only while FairScheduler::drain's discard callback is replaying
/// a queued-but-undispatched job on the drainer's thread. Thread-local
/// on purpose: a job the scheduler already dispatched to a pool worker
/// must run to completion even when shutdown lands mid-flight — a
/// global flag would race the worker into discarding admitted work.
thread_local bool t_discarding = false;

} // namespace

Server::Server(ServerConfig config, std::vector<SessionSpec> sessions)
    : config_(std::move(config)) {
    const int threads = config_.threads > 0
                            ? config_.threads
                            : exec::ThreadPool::default_thread_count();
    pool_ = std::make_unique<exec::ThreadPool>(threads);
    cache_ = std::make_unique<exec::ResultCache>(
        config_.cache_bytes, &exec::MetricsRegistry::global(),
        "service.cache");
    sessions_.reserve(sessions.size());
    for (std::size_t i = 0; i < sessions.size(); ++i) {
        sessions_.push_back(std::make_unique<Session>(
            static_cast<int>(i), std::move(sessions[i]), pool_.get(),
            cache_.get(), config_.spool_dir));
    }
    scheduler_ = std::make_unique<FairScheduler>(*pool_, config_.limits);
    register_builtin_methods();
    root_ = build_model();
}

Server::~Server() {
    request_shutdown(/*discard_queued=*/true);
    wait();
    // Readers of a serve() running on a caller thread were joined by
    // serve() itself; the scheduler is already drained.
}

// --------------------------------------------------------------- serving

void Server::serve(Transport& transport) {
    {
        std::lock_guard lock(serve_m_);
        transport_ = &transport;
    }
    for (;;) {
        auto conn = transport.accept();
        if (!conn) break;
        const int client = scheduler_->add_client(config_.default_client_weight);
        std::lock_guard lock(serve_m_);
        readers_.emplace_back(&Server::reader_loop, this, client,
                              std::move(conn));
    }
    std::vector<std::thread> readers;
    {
        std::lock_guard lock(serve_m_);
        readers.swap(readers_);
        transport_ = nullptr;
    }
    for (auto& t : readers) {
        if (t.joinable()) t.join();
    }
}

void Server::start(Transport& transport) {
    serve_thread_ = std::thread([this, &transport] { serve(transport); });
}

void Server::wait() {
    if (serve_thread_.joinable()) serve_thread_.join();
}

void Server::request_shutdown(bool discard_queued) {
    draining_.store(true, std::memory_order_relaxed);
    if (discard_queued) {
        // Immediate teardown: in-flight heavy work unwinds at its next
        // poll point (checkpoints flush consistent), so drain() below
        // waits milliseconds, not sweep-lengths.
        cancel_root_.cancel(exec::CancelCause::Shutdown);
        // Queued-but-undispatched jobs replay via on_discard under the
        // thread-local discard flag and answer `shutting-down` without
        // doing their work; already-dispatched jobs finish normally.
        scheduler_->drain(/*discard_queued=*/true,
                          [](std::function<void()> job) {
                              t_discarding = true;
                              job();
                              t_discarding = false;
                          });
    } else {
        scheduler_->drain(/*discard_queued=*/false);
    }
    std::lock_guard lock(serve_m_);
    if (transport_) transport_->shutdown();
}

void Server::reader_loop(int client, std::shared_ptr<Connection> conn) {
    std::string line;
    while (conn->read_line(line)) {
        if (line.find_first_not_of(" \t\r\n") == std::string::npos) continue;
        handle_line(client, conn, line);
    }
    conn->close();
    // End-of-stream: the peer is gone and nothing can deliver its
    // answers. Cancel whatever it still has queued or in flight so
    // pool workers stop burning on undeliverable work.
    drop_client(client, exec::CancelCause::Disconnected);
}

// ----------------------------------------------------------- cancellation

exec::CancelToken Server::client_token(int client) {
    std::lock_guard lock(cancel_m_);
    auto it = client_tokens_.find(client);
    if (it == client_tokens_.end()) {
        it = client_tokens_.emplace(client, cancel_root_.child()).first;
    }
    return it->second;
}

exec::CancelToken Server::make_request_token(int client, const Request& req) {
    exec::CancelToken parent =
        client >= 0 ? client_token(client) : cancel_root_;
    exec::CancelToken token = req.deadline_ms > 0.0
                                  ? parent.child_with_deadline_ms(req.deadline_ms)
                                  : parent.child();
    std::lock_guard lock(cancel_m_);
    active_[{client, req.id}] = token;
    return token;
}

void Server::finish_request(int client, std::int64_t id) {
    std::lock_guard lock(cancel_m_);
    active_.erase({client, id});
}

bool Server::cancel_request(int requester, std::int64_t id) {
    exec::CancelToken token;
    {
        std::lock_guard lock(cancel_m_);
        const auto it = active_.find({requester, id});
        if (it != active_.end()) {
            token = it->second;
        } else if (requester < 0) {
            for (const auto& [key, t] : active_) {
                if (key.second == id) {
                    token = t;
                    break;
                }
            }
        }
    }
    if (!token.valid()) return false;
    token.cancel(exec::CancelCause::Cancelled);
    return true;
}

void Server::drop_client(int client, exec::CancelCause cause) {
    exec::CancelToken token;
    {
        std::lock_guard lock(cancel_m_);
        const auto it = client_tokens_.find(client);
        if (it != client_tokens_.end()) {
            token = it->second;
            client_tokens_.erase(it);
        }
        // Registry entries die with the client; running jobs keep their
        // own token copies, which observe the parent's cause below.
        active_.erase(
            active_.lower_bound(
                {client, std::numeric_limits<std::int64_t>::min()}),
            active_.upper_bound(
                {client, std::numeric_limits<std::int64_t>::max()}));
    }
    if (token.valid()) token.cancel(cause);
}

void Server::handle_line(int client, const std::shared_ptr<Connection>& conn,
                         const std::string& line) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    exec::MetricsRegistry::global().counter("service.requests").add();

    Request req;
    try {
        req = parse_request(line);
    } catch (const ServiceError& e) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        exec::MetricsRegistry::global().counter("service.errors").add();
        conn->write_line(
            make_error_response(salvage_id(line), e.code(), e.what()));
        return;
    }

    const auto* spec = processor_.find(req.method);
    if (!spec) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        exec::MetricsRegistry::global().counter("service.errors").add();
        conn->write_line(make_error_response(req.id, ErrorCode::UnknownMethod,
                                             "unknown method: " + req.method));
        return;
    }

    RequestContext ctx;
    ctx.client = client;
    ctx.request_id = req.id;
    ctx.connection = conn;

    if (!spec->heavy) {
        conn->write_line(execute(*spec, req, ctx));
        // A shutdown request must see its own response before the
        // transport goes down; the transport close happens here, after
        // the write, not inside the handler.
        if (req.method == "shutdown") {
            std::lock_guard lock(serve_m_);
            if (transport_) transport_->shutdown();
        }
        return;
    }

    ctx.cancel = make_request_token(client, req);
    const auto verdict = scheduler_->submit(
        client,
        [this, spec, req, ctx, conn]() mutable {
            if (t_discarding) {
                finish_request(ctx.client, req.id);
                errors_.fetch_add(1, std::memory_order_relaxed);
                conn->write_line(make_error_response(
                    req.id, ErrorCode::ShuttingDown,
                    "server is shutting down; request not executed"));
                return;
            }
            // Unregister before the response goes out: a client that has
            // read the answer must see `cancelled: false` for this id,
            // never a stale registry hit on finished work.
            const std::string response = execute(*spec, req, ctx);
            finish_request(ctx.client, req.id);
            conn->write_line(response);
            notify_subscribers();
        },
        ctx.cancel);
    switch (verdict) {
    case FairScheduler::Admit::Ok:
        break;
    case FairScheduler::Admit::ClientSaturated:
        finish_request(client, req.id);
        errors_.fetch_add(1, std::memory_order_relaxed);
        exec::MetricsRegistry::global().counter("service.rejected").add();
        conn->write_line(make_error_response(
            req.id, ErrorCode::Overloaded,
            "client request limit reached; retry after a response"));
        break;
    case FairScheduler::Admit::QueueFull:
        finish_request(client, req.id);
        errors_.fetch_add(1, std::memory_order_relaxed);
        exec::MetricsRegistry::global().counter("service.rejected").add();
        conn->write_line(make_error_response(
            req.id, ErrorCode::Overloaded,
            "server queue is full; retry later"));
        break;
    case FairScheduler::Admit::Draining:
        finish_request(client, req.id);
        errors_.fetch_add(1, std::memory_order_relaxed);
        conn->write_line(make_error_response(
            req.id, ErrorCode::ShuttingDown,
            "server is draining; no new work admitted"));
        break;
    case FairScheduler::Admit::DeadlineUnmet:
        finish_request(client, req.id);
        errors_.fetch_add(1, std::memory_order_relaxed);
        conn->write_line(make_error_response(
            req.id, ErrorCode::DeadlineUnmet,
            "deadline_ms already expired at admission; request shed"));
        break;
    }
}

std::string Server::execute(const CommandProcessor::CommandSpec& spec,
                            const Request& req, RequestContext& ctx) {
    OBS_SPAN("service.request");
    // The request token governs every poll point below the handler —
    // sweep dispatch, optimizer candidates, Newton iterations. No-op
    // (and free) for light methods, whose token is invalid.
    exec::CancelScope cancel_scope(ctx.cancel);
    try {
        const exec::CancelCause queued_cause =
            ctx.cancel.valid() ? ctx.cancel.poll() : exec::CancelCause::None;
        if (queued_cause != exec::CancelCause::None &&
            queued_cause != exec::CancelCause::Shutdown) {
            // Fired while queued (deadline lapsed, cancel method,
            // disconnect): answer without starting the heavy work.
            // Shutdown is excluded: mode-now discards *queued* jobs via
            // the drain path, and a job the scheduler already dispatched
            // is contracted to begin — its own poll points unwind it.
            exec::MetricsRegistry::global().counter("service.shed.queued").add();
            throw exec::CancelledError(queued_cause);
        }
        Json result = spec.handler(req.params, ctx);
        responses_.fetch_add(1, std::memory_order_relaxed);
        return make_ok_response(req.id, std::move(result));
    } catch (const exec::CancelledError& e) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        exec::MetricsRegistry::global().counter("service.cancelled").add();
        if (e.cause == exec::CancelCause::DeadlineExceeded) {
            return make_error_response(
                req.id, ErrorCode::DeadlineUnmet,
                "deadline_ms exceeded mid-computation; completed work "
                "is checkpointed where a spool dir is configured");
        }
        return make_error_response(
            req.id, ErrorCode::Cancelled,
            std::string("request cancelled (") + exec::to_string(e.cause) +
                "); completed work is checkpointed where a spool dir "
                "is configured");
    } catch (const ServiceError& e) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        exec::MetricsRegistry::global().counter("service.errors").add();
        return make_error_response(req.id, e.code(), e.what());
    } catch (const std::exception& e) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        exec::MetricsRegistry::global().counter("service.errors").add();
        return make_error_response(req.id, ErrorCode::Internal, e.what());
    } catch (...) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        exec::MetricsRegistry::global().counter("service.errors").add();
        return make_error_response(req.id, ErrorCode::Internal,
                                   "handler failed");
    }
}

std::string Server::handle_inline(const std::string& line) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    Request req;
    try {
        req = parse_request(line);
    } catch (const ServiceError& e) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        return make_error_response(salvage_id(line), e.code(), e.what());
    }
    const auto* spec = processor_.find(req.method);
    if (!spec) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        return make_error_response(req.id, ErrorCode::UnknownMethod,
                                   "unknown method: " + req.method);
    }
    if (spec->heavy && draining_.load(std::memory_order_relaxed)) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        return make_error_response(req.id, ErrorCode::ShuttingDown,
                                   "server is draining; no new work admitted");
    }
    RequestContext ctx;
    ctx.request_id = req.id;
    // Synchronous dispatch still honors a wire deadline; there is no
    // cancel-by-id window (nothing queues), so the token skips the
    // registry.
    if (spec->heavy && req.deadline_ms > 0.0) {
        ctx.cancel = cancel_root_.child_with_deadline_ms(req.deadline_ms);
    }
    return execute(*spec, req, ctx);
}

// ----------------------------------------------------------- subscriptions

void Server::add_subscription(const std::shared_ptr<Connection>& conn,
                              std::string path, QueryOptions opt) {
    std::lock_guard lock(sub_m_);
    subscriptions_.push_back(
        Subscription{conn, std::move(path), std::move(opt), std::string()});
}

void Server::notify_subscribers() {
    std::lock_guard lock(sub_m_);
    auto it = subscriptions_.begin();
    while (it != subscriptions_.end()) {
        auto conn = it->conn.lock();
        if (!conn) {
            it = subscriptions_.erase(it);
            continue;
        }
        auto res = query_model(root_, it->path, it->opt);
        if (!res.ok) {
            ++it;
            continue;
        }
        std::string rendered = res.value.dump();
        if (rendered == it->last_rendered) {
            ++it;
            continue;
        }
        const auto seq = event_seq_.fetch_add(1, std::memory_order_relaxed);
        if (!conn->write_line(make_event(seq, it->path, std::move(res.value)))) {
            it = subscriptions_.erase(it);
            continue;
        }
        it->last_rendered = std::move(rendered);
        ++it;
    }
}

// ------------------------------------------------------------- dispatch

Session& Server::resolve_session(const Json& params) {
    const Json& which = params.at("session");
    if (which.is_null()) {
        if (sessions_.empty()) {
            throw ServiceError(ErrorCode::UnknownSession, "no sessions");
        }
        return *sessions_[0];
    }
    if (which.is_number()) {
        const int i = which.as_int(-1);
        if (i >= 0 && static_cast<std::size_t>(i) < sessions_.size()) {
            return *sessions_[static_cast<std::size_t>(i)];
        }
    } else if (which.is_string()) {
        for (auto& s : sessions_) {
            if (s->name() == which.as_string()) return *s;
        }
    } else {
        throw ServiceError(ErrorCode::BadParams,
                           "param 'session' must be an index or a name");
    }
    throw ServiceError(ErrorCode::UnknownSession,
                       "unknown session: " + which.dump());
}

void Server::register_builtin_methods() {
    // ---- light methods: answered inline on the reader thread ----------
    processor_.register_method(
        "ping", /*heavy=*/false,
        [](const Json&, RequestContext&) -> Json {
            Json j = Json::object();
            j.set("pong", true);
            return j;
        });

    processor_.register_method(
        "hello", /*heavy=*/false,
        [this](const Json& params, RequestContext& ctx) -> Json {
            int weight = config_.default_client_weight;
            if (params.contains("weight")) {
                if (!params.at("weight").is_number()) {
                    throw ServiceError(ErrorCode::BadParams,
                                       "param 'weight' must be a number");
                }
                weight = std::clamp(params.at("weight").as_int(1), 1, 64);
                if (ctx.client >= 0) {
                    scheduler_->set_weight(ctx.client, weight);
                }
            }
            Json j = Json::object();
            j.set("server", "stsense-telemetry");
            j.set("version", 1);
            j.set("client", ctx.client);
            j.set("weight", weight);
            j.set("sessions", sessions_.size());
            return j;
        });

    processor_.register_method(
        "sessions", /*heavy=*/false,
        [this](const Json&, RequestContext&) -> Json {
            Json arr = Json::array();
            for (const auto& s : sessions_) {
                Json j = Json::object();
                j.set("id", s->id());
                j.set("name", s->name());
                j.set("sites", s->site_count());
                j.set("requests", s->requests());
                arr.push_back(std::move(j));
            }
            return arr;
        });

    processor_.register_method(
        "query", /*heavy=*/false,
        [this](const Json& params, RequestContext&) -> Json {
            QueryOptions opt;
            opt.depth = std::clamp(params.at("depth").as_int(opt.depth), 0, 64);
            opt.filter = params.at("filter").as_string();
            const std::string& path = params.at("path").as_string();
            auto res = query_model(root_, path, opt);
            if (!res.ok) {
                throw ServiceError(ErrorCode::UnknownPath, res.error);
            }
            Json j = Json::object();
            j.set("path", path);
            j.set("value", std::move(res.value));
            return j;
        });

    processor_.register_method(
        "subscribe", /*heavy=*/false,
        [this](const Json& params, RequestContext& ctx) -> Json {
            if (!ctx.connection) {
                throw ServiceError(ErrorCode::BadParams,
                                   "subscribe requires a connection");
            }
            QueryOptions opt;
            opt.depth = std::clamp(params.at("depth").as_int(opt.depth), 0, 64);
            opt.filter = params.at("filter").as_string();
            const std::string& path = params.at("path").as_string();
            auto res = query_model(root_, path, opt);
            if (!res.ok) {
                throw ServiceError(ErrorCode::UnknownPath, res.error);
            }
            add_subscription(ctx.connection, path, opt);
            Json j = Json::object();
            j.set("subscribed", path);
            j.set("value", std::move(res.value));
            return j;
        });

    processor_.register_method(
        "help", /*heavy=*/false,
        [this](const Json&, RequestContext&) -> Json {
            Json arr = Json::array();
            for (const auto& name : processor_.methods()) arr.push_back(name);
            Json j = Json::object();
            j.set("methods", std::move(arr));
            return j;
        });

    // Cancels one of the caller's in-flight heavy requests by id. Light
    // on purpose: it must land while every pool worker is busy with the
    // very work being cancelled. `cancelled: false` means the id was
    // not in flight — already answered, or never admitted; racing a
    // completion is normal, not an error.
    processor_.register_method(
        "cancel", /*heavy=*/false,
        [this](const Json& params, RequestContext& ctx) -> Json {
            if (!params.at("request").is_number()) {
                throw ServiceError(
                    ErrorCode::BadParams,
                    "param 'request' must be the id of the request to cancel");
            }
            const std::int64_t id = params.at("request").as_int64();
            const bool hit = cancel_request(ctx.client, id);
            Json j = Json::object();
            j.set("request", id);
            j.set("cancelled", hit);
            return j;
        });

    processor_.register_method(
        "shutdown", /*heavy=*/false,
        [this](const Json& params, RequestContext&) -> Json {
            const std::string mode = params.at("mode").as_string("drain");
            if (mode != "drain" && mode != "now") {
                throw ServiceError(ErrorCode::BadParams,
                                   "param 'mode' must be \"drain\" or \"now\"");
            }
            draining_.store(true, std::memory_order_relaxed);
            if (mode == "now") {
                // Same contract as request_shutdown(discard): running
                // work unwinds at its next poll point, queued work is
                // answered `shutting-down` without executing.
                cancel_root_.cancel(exec::CancelCause::Shutdown);
                scheduler_->drain(/*discard_queued=*/true,
                                  [](std::function<void()> job) {
                                      t_discarding = true;
                                      job();
                                      t_discarding = false;
                                  });
            } else {
                scheduler_->drain(/*discard_queued=*/false);
            }
            Json j = Json::object();
            j.set("draining", true);
            j.set("mode", mode);
            j.set("completed", scheduler_->completed());
            return j;
        });

    // ---- heavy methods: admission-controlled, pool-executed ------------
    processor_.register_method(
        "measure_site", /*heavy=*/true,
        [this](const Json& params, RequestContext&) -> Json {
            return resolve_session(params).measure_site(params);
        });
    processor_.register_method(
        "thermal_map", /*heavy=*/true,
        [this](const Json& params, RequestContext&) -> Json {
            return resolve_session(params).thermal_map(params);
        });
    processor_.register_method(
        "sweep", /*heavy=*/true,
        [this](const Json& params, RequestContext&) -> Json {
            return resolve_session(params).sweep(params);
        });
    processor_.register_method(
        "optimize", /*heavy=*/true,
        [this](const Json& params, RequestContext&) -> Json {
            return resolve_session(params).optimize(params);
        });
    processor_.register_method(
        "dtm_run", /*heavy=*/true,
        [this](const Json& params, RequestContext&) -> Json {
            return resolve_session(params).dtm_run(params);
        });
    processor_.register_method(
        "population_run", /*heavy=*/true,
        [this](const Json& params, RequestContext&) -> Json {
            return resolve_session(params).population_run(params);
        });
    // Deterministic load generator: occupies one scheduler slot for a
    // fixed wall time. The saturation tests use it to make admission
    // rejection reproducible; it does no session work. The sleep is
    // sliced so a deadline or cancel lands within one slice, not after
    // the full burn — burn is the demo's deterministic "slow request".
    processor_.register_method(
        "burn", /*heavy=*/true,
        [](const Json& params, RequestContext&) -> Json {
            const int ms = std::clamp(params.at("ms").as_int(10), 0, 2000);
            const auto& token = exec::CancelScope::current();
            const auto end = std::chrono::steady_clock::now() +
                             std::chrono::milliseconds(ms);
            while (std::chrono::steady_clock::now() < end) {
                if (token.valid()) token.check();
                std::this_thread::sleep_for(std::chrono::milliseconds(2));
            }
            Json j = Json::object();
            j.set("burned_ms", ms);
            return j;
        });
}

// ----------------------------------------------------------- object model

ModelPtr Server::build_model() const {
    const Server* self = this;

    auto service_node = [self]() -> ModelPtr {
        return object({
            {"name", [] { return fixed_leaf(Json("stsense-telemetry")); }},
            {"version", [] { return fixed_leaf(Json(1)); }},
            {"draining", [self] {
                 return leaf([self] {
                     return Json(self->draining_.load(std::memory_order_relaxed));
                 });
             }},
            {"requests", [self] {
                 return leaf([self] {
                     return Json(self->requests_.load(std::memory_order_relaxed));
                 });
             }},
            {"responses", [self] {
                 return leaf([self] {
                     return Json(
                         self->responses_.load(std::memory_order_relaxed));
                 });
             }},
            {"errors", [self] {
                 return leaf([self] {
                     return Json(self->errors_.load(std::memory_order_relaxed));
                 });
             }},
            {"spool_dir",
             [self] { return fixed_leaf(Json(self->config_.spool_dir)); }},
        });
    };

    auto pool_node = [self]() -> ModelPtr {
        return object({
            {"size", [self] { return fixed_leaf(Json(self->pool_->size())); }},
            {"queue_depth", [self] {
                 return leaf([self] { return Json(self->pool_->queue_depth()); });
             }},
            {"inflight", [self] {
                 return leaf([self] { return Json(self->pool_->inflight()); });
             }},
            {"tasks_executed", [self] {
                 return leaf(
                     [self] { return Json(self->pool_->tasks_executed()); });
             }},
            {"tasks_stolen", [self] {
                 return leaf(
                     [self] { return Json(self->pool_->tasks_stolen()); });
             }},
        });
    };

    auto cache_node = [self]() -> ModelPtr {
        auto stat = [self](auto read) {
            return leaf([self, read] { return read(self->cache_->stats()); });
        };
        return object({
            {"entries", [stat] {
                 return stat([](const exec::ResultCache::Stats& s) {
                     return Json(s.entries);
                 });
             }},
            {"bytes", [stat] {
                 return stat([](const exec::ResultCache::Stats& s) {
                     return Json(s.bytes);
                 });
             }},
            {"hits", [stat] {
                 return stat([](const exec::ResultCache::Stats& s) {
                     return Json(s.hits);
                 });
             }},
            {"misses", [stat] {
                 return stat([](const exec::ResultCache::Stats& s) {
                     return Json(s.misses);
                 });
             }},
            {"evictions", [stat] {
                 return stat([](const exec::ResultCache::Stats& s) {
                     return Json(s.evictions);
                 });
             }},
            {"hit_rate", [stat] {
                 return stat([](const exec::ResultCache::Stats& s) {
                     return Json(s.hit_rate());
                 });
             }},
            {"byte_budget", [self] {
                 return fixed_leaf(Json(self->cache_->byte_budget()));
             }},
        });
    };

    auto scheduler_node = [self]() -> ModelPtr {
        return object({
            {"queued", [self] {
                 return leaf([self] { return Json(self->scheduler_->queued()); });
             }},
            {"executing", [self] {
                 return leaf(
                     [self] { return Json(self->scheduler_->executing()); });
             }},
            {"completed", [self] {
                 return leaf(
                     [self] { return Json(self->scheduler_->completed()); });
             }},
            {"rejected", [self] {
                 return leaf(
                     [self] { return Json(self->scheduler_->rejected()); });
             }},
        });
    };

    const std::size_t n_sessions = sessions_.size();
    auto sessions_node = [self, n_sessions]() -> ModelPtr {
        return array([n_sessions] { return n_sessions; },
                     [self](std::size_t i) -> ModelPtr {
                         return self->sessions_[i]->model();
                     });
    };

    // Request-lifecycle counters, read live from the global registry so
    // `query path:"metrics"` shows cancellation and shedding activity.
    // Keys are the registry names verbatim; dots keep them out of the
    // path grammar, so this node is read whole, never element-wise.
    auto metrics_node = []() -> ModelPtr {
        auto count = [](const char* name) {
            return leaf([name] {
                return Json(
                    exec::MetricsRegistry::global().counter(name).value());
            });
        };
        std::vector<std::pair<std::string, ChildFactory>> children;
        for (const char* name :
             {"exec.cancel.fired", "exec.cancel.tasks_skipped",
              "exec.cancel.sweeps", "exec.cancel.optimizes",
              "service.cancelled", "service.shed.deadline",
              "service.shed.queued"}) {
            children.emplace_back(name, [count, name] { return count(name); });
        }
        return object(std::move(children));
    };

    return object({
        {"service", service_node},
        {"pool", pool_node},
        {"cache", cache_node},
        {"scheduler", scheduler_node},
        {"metrics", metrics_node},
        {"sessions", sessions_node},
    });
}

} // namespace stsense::service
