#include "service/fair_queue.hpp"

#include "exec/metrics.hpp"
#include "obs/trace.hpp"

#include <algorithm>
#include <iterator>
#include <utility>
#include <vector>

namespace stsense::service {

FairScheduler::FairScheduler(exec::ThreadPool& pool, Limits limits)
    : pool_(pool), limits_(limits), group_(pool) {}

FairScheduler::~FairScheduler() {
    // Discard whatever is still queued; block until dispatched jobs
    // finished (the TaskGroup member would join them anyway, but by then
    // the counters they update would be destroyed).
    drain(/*discard_queued=*/true);
}

int FairScheduler::add_client(int weight) {
    std::lock_guard lock(m_);
    const int id = next_client_++;
    Client c;
    c.weight = std::clamp(weight, 1, 64);
    c.quantum_left = c.weight;
    clients_.emplace(id, std::move(c));
    return id;
}

void FairScheduler::set_weight(int client, int weight) {
    std::lock_guard lock(m_);
    const auto it = clients_.find(client);
    if (it == clients_.end()) return;
    it->second.weight = std::clamp(weight, 1, 64);
    it->second.quantum_left =
        std::min(it->second.quantum_left, it->second.weight);
}

FairScheduler::Admit FairScheduler::submit(int client,
                                           std::function<void()> job,
                                           const exec::CancelToken& token) {
    // Infeasibility shed, before any queue slot is taken: a request
    // whose deadline has already passed (or whose token already fired)
    // cannot answer in time no matter how fast the pool drains.
    if (token.valid() && token.poll() != exec::CancelCause::None) {
        std::lock_guard lock(m_);
        ++rejected_;
        exec::MetricsRegistry::global().counter("service.shed.deadline").add();
        return Admit::DeadlineUnmet;
    }
    std::lock_guard lock(m_);
    if (draining_) {
        ++rejected_;
        return Admit::Draining;
    }
    const auto it = clients_.find(client);
    if (it == clients_.end()) {
        ++rejected_;
        return Admit::ClientSaturated;
    }
    Client& c = it->second;
    const std::size_t client_inflight = c.queue.size() + c.executing;
    if (limits_.max_inflight_per_client > 0 &&
        client_inflight >= static_cast<std::size_t>(limits_.max_inflight_per_client)) {
        ++rejected_;
        return Admit::ClientSaturated;
    }
    if (limits_.max_queued_per_client > 0 &&
        c.queue.size() >= static_cast<std::size_t>(limits_.max_queued_per_client)) {
        ++rejected_;
        return Admit::ClientSaturated;
    }
    if (limits_.max_queued_total > 0 &&
        queued_ >= static_cast<std::size_t>(limits_.max_queued_total)) {
        ++rejected_;
        return Admit::QueueFull;
    }
    c.queue.push_back(std::move(job));
    ++queued_;
    exec::MetricsRegistry::global().gauge("service.queue.depth").set(
        static_cast<double>(queued_));
    pump_locked();
    return Admit::Ok;
}

void FairScheduler::pump_locked() {
    const std::size_t max_concurrency =
        limits_.max_concurrency > 0
            ? static_cast<std::size_t>(limits_.max_concurrency)
            : static_cast<std::size_t>(pool_.size());
    while (executing_ < max_concurrency && queued_ > 0) {
        // Weighted round-robin: serve the cursor client while it has
        // work and quantum; moving the cursor regrants the next
        // client's quantum (= its weight).
        std::size_t moves = 0;
        const std::size_t n_clients = clients_.size();
        bool dispatched = false;
        while (moves <= n_clients) {
            auto it = clients_.lower_bound(cursor_);
            if (it == clients_.end()) it = clients_.begin();
            Client& c = it->second;
            if (!c.queue.empty() && c.quantum_left > 0) {
                auto job = std::move(c.queue.front());
                c.queue.pop_front();
                --queued_;
                ++executing_;
                ++c.executing;
                --c.quantum_left;
                const int id = it->first;
                group_.run([this, id, job = std::move(job)]() mutable {
                    run_job(id, std::move(job));
                });
                dispatched = true;
                break;
            }
            auto next = std::next(it);
            if (next == clients_.end()) next = clients_.begin();
            cursor_ = next->first;
            next->second.quantum_left = next->second.weight;
            ++moves;
        }
        if (!dispatched) break; // every client drained
    }
    exec::MetricsRegistry::global().gauge("service.queue.depth").set(
        static_cast<double>(queued_));
}

void FairScheduler::run_job(int client, std::function<void()> job) {
    {
        OBS_SPAN("service.job");
        try {
            job();
        } catch (...) {
            // Server job wrappers answer the client themselves; an
            // exception escaping one is a bug, but it must not poison
            // the scheduler's books or take down a worker batch.
            exec::MetricsRegistry::global()
                .counter("service.jobs.uncaught")
                .add();
        }
    }
    bool idle = false;
    {
        std::lock_guard lock(m_);
        const auto it = clients_.find(client);
        if (it != clients_.end() && it->second.executing > 0) {
            --it->second.executing;
        }
        --executing_;
        ++completed_;
        pump_locked();
        idle = queued_ == 0 && executing_ == 0;
    }
    exec::MetricsRegistry::global().counter("service.jobs.completed").add();
    if (idle) idle_cv_.notify_all();
}

void FairScheduler::drain(
    bool discard_queued,
    const std::function<void(std::function<void()>)>& on_discard) {
    std::vector<std::function<void()>> discarded;
    {
        std::lock_guard lock(m_);
        draining_ = true;
        if (discard_queued) {
            for (auto& [id, c] : clients_) {
                while (!c.queue.empty()) {
                    discarded.push_back(std::move(c.queue.front()));
                    c.queue.pop_front();
                    --queued_;
                }
            }
        }
    }
    for (auto& job : discarded) {
        if (on_discard) on_discard(std::move(job));
    }
    std::unique_lock lock(m_);
    idle_cv_.wait(lock, [&] { return queued_ == 0 && executing_ == 0; });
}

bool FairScheduler::draining() const {
    std::lock_guard lock(m_);
    return draining_;
}

void FairScheduler::wait_idle() {
    std::unique_lock lock(m_);
    idle_cv_.wait(lock, [&] { return queued_ == 0 && executing_ == 0; });
}

std::size_t FairScheduler::queued() const {
    std::lock_guard lock(m_);
    return queued_;
}

std::size_t FairScheduler::executing() const {
    std::lock_guard lock(m_);
    return executing_;
}

std::uint64_t FairScheduler::completed() const {
    std::lock_guard lock(m_);
    return completed_;
}

std::uint64_t FairScheduler::rejected() const {
    std::lock_guard lock(m_);
    return rejected_;
}

std::size_t FairScheduler::inflight(int client) const {
    std::lock_guard lock(m_);
    const auto it = clients_.find(client);
    if (it == clients_.end()) return 0;
    return it->second.queue.size() + it->second.executing;
}

} // namespace stsense::service
