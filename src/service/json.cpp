#include "service/json.hpp"

#include "util/csv.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace stsense::service {

namespace {

const Json& null_json() {
    static const Json v;
    return v;
}

} // namespace

const std::string& Json::empty_string() {
    static const std::string s;
    return s;
}

std::size_t Json::size() const {
    if (is_array()) return arr_.size();
    if (is_object()) return obj_.size();
    return 0;
}

const Json& Json::at(std::size_t index) const {
    if (!is_array()) return null_json();
    return index < arr_.size() ? arr_[index] : null_json();
}

const Json& Json::at(const std::string& key) const {
    if (!is_object()) return null_json();
    const auto it = std::lower_bound(
        obj_.begin(), obj_.end(), key,
        [](const auto& pair, const std::string& k) { return pair.first < k; });
    return (it != obj_.end() && it->first == key) ? it->second : null_json();
}

bool Json::contains(const std::string& key) const {
    if (!is_object()) return false;
    const auto it = std::lower_bound(
        obj_.begin(), obj_.end(), key,
        [](const auto& pair, const std::string& k) { return pair.first < k; });
    return it != obj_.end() && it->first == key;
}

void Json::push_back(Json v) {
    if (!is_array()) {
        kind_ = Kind::Array;
        arr_.clear();
        obj_.clear();
    }
    arr_.push_back(std::move(v));
}

Json& Json::set(const std::string& key, Json v) {
    if (!is_object()) {
        kind_ = Kind::Object;
        arr_.clear();
        obj_.clear();
    }
    const auto it = std::lower_bound(
        obj_.begin(), obj_.end(), key,
        [](const auto& pair, const std::string& k) { return pair.first < k; });
    if (it != obj_.end() && it->first == key) {
        it->second = std::move(v);
        return it->second;
    }
    return obj_.emplace(it, key, std::move(v))->second;
}

const Json::Array& Json::items() const {
    static const Array empty;
    return is_array() ? arr_ : empty;
}

const Json::Object& Json::members() const {
    static const Object empty;
    return is_object() ? obj_ : empty;
}

bool operator==(const Json& a, const Json& b) {
    if (a.kind_ != b.kind_) return false;
    switch (a.kind_) {
        case Json::Kind::Null: return true;
        case Json::Kind::Bool: return a.bool_ == b.bool_;
        case Json::Kind::Number: return a.num_ == b.num_;
        case Json::Kind::String: return a.str_ == b.str_;
        case Json::Kind::Array: return a.arr_ == b.arr_;
        case Json::Kind::Object: return a.obj_ == b.obj_;
    }
    return false;
}

std::string json_quote(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(c));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
    return out;
}

std::string Json::dump() const {
    struct Visitor {
        std::string out;
        void walk(const Json& j) {
            if (j.is_null()) {
                out += "null";
            } else if (j.is_bool()) {
                out += j.as_bool() ? "true" : "false";
            } else if (j.is_number()) {
                const double d = j.as_double();
                // JSON has no NaN/Inf literal; the object model maps an
                // unmeasured value to null rather than invalid bytes.
                if (std::isfinite(d)) {
                    out += util::format_double(d);
                } else {
                    out += "null";
                }
            } else if (j.is_string()) {
                out += json_quote(j.as_string());
            } else if (j.is_array()) {
                out += '[';
                bool first = true;
                for (const auto& item : j.items()) {
                    if (!first) out += ',';
                    first = false;
                    walk(item);
                }
                out += ']';
            } else {
                out += '{';
                bool first = true;
                for (const auto& [key, value] : j.members()) {
                    if (!first) out += ',';
                    first = false;
                    out += json_quote(key);
                    out += ':';
                    walk(value);
                }
                out += '}';
            }
        }
    } v;
    v.walk(*this);
    return std::move(v.out);
}

// ------------------------------------------------------------------ parser

namespace {

/// Recursive-descent parser over one immutable buffer. Every failure
/// path records (message, offset) and unwinds via the ok flag — no
/// exceptions, no partial values escaping.
class Parser {
public:
    Parser(const std::string& text, std::size_t max_depth)
        : s_(text), max_depth_(max_depth) {}

    JsonParseResult run() {
        JsonParseResult result;
        Json value;
        if (!parse_value(value, 0)) {
            result.error = error_ + " at offset " + std::to_string(pos_);
            return result;
        }
        skip_ws();
        if (pos_ != s_.size()) {
            result.error = "trailing characters at offset " + std::to_string(pos_);
            return result;
        }
        result.value = std::move(value);
        return result;
    }

private:
    void skip_ws() {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                s_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool fail(const char* message) {
        error_ = message;
        return false;
    }

    bool literal(const char* word, Json value, Json& out) {
        const std::size_t len = std::string(word).size();
        if (s_.compare(pos_, len, word) != 0) return fail("invalid literal");
        pos_ += len;
        out = std::move(value);
        return true;
    }

    bool parse_value(Json& out, std::size_t depth) {
        if (depth > max_depth_) return fail("nesting too deep");
        skip_ws();
        if (pos_ >= s_.size()) return fail("unexpected end of input");
        switch (s_[pos_]) {
            case 'n': return literal("null", Json(nullptr), out);
            case 't': return literal("true", Json(true), out);
            case 'f': return literal("false", Json(false), out);
            case '"': return parse_string(out);
            case '[': return parse_array(out, depth);
            case '{': return parse_object(out, depth);
            default: return parse_number(out);
        }
    }

    bool parse_string(Json& out) {
        std::string value;
        if (!parse_raw_string(value)) return false;
        out = Json(std::move(value));
        return true;
    }

    bool parse_raw_string(std::string& out) {
        ++pos_; // opening quote
        out.clear();
        while (pos_ < s_.size()) {
            const char c = s_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                if (pos_ + 1 >= s_.size()) return fail("bad escape");
                const char e = s_[pos_ + 1];
                pos_ += 2;
                switch (e) {
                    case '"': out += '"'; break;
                    case '\\': out += '\\'; break;
                    case '/': out += '/'; break;
                    case 'b': out += '\b'; break;
                    case 'f': out += '\f'; break;
                    case 'n': out += '\n'; break;
                    case 'r': out += '\r'; break;
                    case 't': out += '\t'; break;
                    case 'u': {
                        if (pos_ + 4 > s_.size()) return fail("bad \\u escape");
                        unsigned code = 0;
                        for (int i = 0; i < 4; ++i) {
                            const char h = s_[pos_ + static_cast<std::size_t>(i)];
                            code <<= 4;
                            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
                            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
                            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
                            else return fail("bad \\u escape");
                        }
                        pos_ += 4;
                        // UTF-8 encode the BMP code point (surrogate pairs
                        // degrade to two 3-byte sequences; the protocol is
                        // ASCII in practice).
                        if (code < 0x80) {
                            out += static_cast<char>(code);
                        } else if (code < 0x800) {
                            out += static_cast<char>(0xC0 | (code >> 6));
                            out += static_cast<char>(0x80 | (code & 0x3F));
                        } else {
                            out += static_cast<char>(0xE0 | (code >> 12));
                            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                            out += static_cast<char>(0x80 | (code & 0x3F));
                        }
                        break;
                    }
                    default: return fail("bad escape");
                }
                continue;
            }
            if (static_cast<unsigned char>(c) < 0x20) {
                return fail("control character in string");
            }
            out += c;
            ++pos_;
        }
        return fail("unterminated string");
    }

    bool parse_number(Json& out) {
        const std::size_t start = pos_;
        if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
        bool digits = false;
        auto eat_digits = [&] {
            while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
                ++pos_;
                digits = true;
            }
        };
        eat_digits();
        if (pos_ < s_.size() && s_[pos_] == '.') {
            ++pos_;
            eat_digits();
        }
        if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
            const bool had = digits;
            digits = false;
            eat_digits();
            digits = digits && had;
        }
        if (!digits) {
            pos_ = start;
            return fail("invalid number");
        }
        const std::string token = s_.substr(start, pos_ - start);
        char* end = nullptr;
        // strtod, not std::stod: no exceptions, and subnormals round-trip
        // (the same reason the checkpoint loader uses it).
        const double value = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0') {
            pos_ = start;
            return fail("invalid number");
        }
        out = Json(value);
        return true;
    }

    bool parse_array(Json& out, std::size_t depth) {
        ++pos_; // '['
        Json::Array items;
        skip_ws();
        if (pos_ < s_.size() && s_[pos_] == ']') {
            ++pos_;
            out = Json(std::move(items));
            return true;
        }
        for (;;) {
            Json item;
            if (!parse_value(item, depth + 1)) return false;
            items.push_back(std::move(item));
            skip_ws();
            if (pos_ >= s_.size()) return fail("unterminated array");
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == ']') {
                ++pos_;
                out = Json(std::move(items));
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool parse_object(Json& out, std::size_t depth) {
        ++pos_; // '{'
        Json members = Json::object();
        skip_ws();
        if (pos_ < s_.size() && s_[pos_] == '}') {
            ++pos_;
            out = std::move(members);
            return true;
        }
        for (;;) {
            skip_ws();
            if (pos_ >= s_.size() || s_[pos_] != '"') return fail("expected key");
            std::string key;
            if (!parse_raw_string(key)) return false;
            skip_ws();
            if (pos_ >= s_.size() || s_[pos_] != ':') return fail("expected ':'");
            ++pos_;
            Json value;
            if (!parse_value(value, depth + 1)) return false;
            members.set(key, std::move(value));
            skip_ws();
            if (pos_ >= s_.size()) return fail("unterminated object");
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == '}') {
                ++pos_;
                out = std::move(members);
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    const std::string& s_;
    std::size_t pos_ = 0;
    std::size_t max_depth_;
    std::string error_ = "parse error";
};

} // namespace

JsonParseResult Json::parse(const std::string& text, std::size_t max_depth) {
    return Parser(text, max_depth).run();
}

} // namespace stsense::service
