#include "service/transport.hpp"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

namespace stsense::service {

// ------------------------------------------------------------- loopback

namespace {

/// One direction of a loopback link: a queue of complete lines.
struct LinePipe {
    std::mutex m;
    std::condition_variable cv;
    std::deque<std::string> lines;
    bool closed = false;

    void push(std::string line) {
        {
            std::lock_guard lock(m);
            if (closed) return;
            lines.push_back(std::move(line));
        }
        cv.notify_all();
    }

    bool pop(std::string& out) {
        std::unique_lock lock(m);
        cv.wait(lock, [&] { return closed || !lines.empty(); });
        if (lines.empty()) return false; // closed and drained
        out = std::move(lines.front());
        lines.pop_front();
        return true;
    }

    void close() {
        {
            std::lock_guard lock(m);
            closed = true;
        }
        cv.notify_all();
    }
};

/// One endpoint: reads from `rx`, writes into `tx`.
class LoopbackConnection final : public Connection {
public:
    LoopbackConnection(std::shared_ptr<LinePipe> rx, std::shared_ptr<LinePipe> tx)
        : rx_(std::move(rx)), tx_(std::move(tx)) {}
    ~LoopbackConnection() override { close(); }

    bool read_line(std::string& out) override { return rx_->pop(out); }

    bool write_line(const std::string& line) override {
        {
            std::lock_guard lock(tx_->m);
            if (tx_->closed) return false;
            tx_->lines.push_back(line);
        }
        tx_->cv.notify_all();
        return true;
    }

    void close() override {
        rx_->close();
        tx_->close();
    }

private:
    std::shared_ptr<LinePipe> rx_;
    std::shared_ptr<LinePipe> tx_;
};

} // namespace

struct LoopbackTransport::Impl {
    std::mutex m;
    std::condition_variable cv;
    std::deque<std::shared_ptr<Connection>> pending;
    std::vector<std::weak_ptr<Connection>> handed_out;
    bool down = false;
};

LoopbackTransport::LoopbackTransport() : impl_(std::make_shared<Impl>()) {}

LoopbackTransport::~LoopbackTransport() { shutdown(); }

std::shared_ptr<Connection> LoopbackTransport::connect() {
    auto to_server = std::make_shared<LinePipe>();
    auto to_client = std::make_shared<LinePipe>();
    auto client = std::make_shared<LoopbackConnection>(to_client, to_server);
    auto server = std::make_shared<LoopbackConnection>(to_server, to_client);
    {
        std::lock_guard lock(impl_->m);
        if (impl_->down) {
            client->close();
            return client; // immediately end-of-stream
        }
        impl_->pending.push_back(server);
        impl_->handed_out.push_back(server);
        impl_->handed_out.push_back(client);
    }
    impl_->cv.notify_all();
    return client;
}

std::shared_ptr<Connection> LoopbackTransport::accept() {
    std::unique_lock lock(impl_->m);
    impl_->cv.wait(lock, [&] { return impl_->down || !impl_->pending.empty(); });
    if (impl_->pending.empty()) return nullptr;
    auto conn = std::move(impl_->pending.front());
    impl_->pending.pop_front();
    return conn;
}

void LoopbackTransport::shutdown() {
    std::vector<std::weak_ptr<Connection>> open;
    {
        std::lock_guard lock(impl_->m);
        impl_->down = true;
        open.swap(impl_->handed_out);
        impl_->pending.clear();
    }
    impl_->cv.notify_all();
    for (auto& weak : open) {
        if (auto conn = weak.lock()) conn->close();
    }
}

// ---------------------------------------------------------- unix socket

namespace {

/// Connection over one stream fd with internal line buffering.
///
/// Robustness contract: reads and writes retry EINTR (a signal landing
/// mid-syscall must not tear a line), writes resume after partial
/// sends, and every send is bounded by a wall-clock timeout
/// (SO_SNDTIMEO) — a peer that stops draining its socket stalls only
/// its own connection for kWriteTimeout, never a pool worker forever.
class FdConnection final : public Connection {
public:
    static constexpr std::chrono::seconds kWriteTimeout{5};

    explicit FdConnection(int fd) : fd_(fd) {
        timeval tv{};
        tv.tv_sec = static_cast<long>(kWriteTimeout.count());
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    ~FdConnection() override { close(); }

    bool read_line(std::string& out) override {
        std::lock_guard lock(read_m_);
        for (;;) {
            const auto pos = buffer_.find('\n');
            if (pos != std::string::npos) {
                out = buffer_.substr(0, pos);
                buffer_.erase(0, pos + 1);
                if (!out.empty() && out.back() == '\r') out.pop_back();
                return true;
            }
            char chunk[4096];
            const ssize_t n = ::recv(fd_.load(), chunk, sizeof(chunk), 0);
            if (n < 0 && errno == EINTR) continue;
            if (n <= 0) {
                // Last unterminated fragment is dropped by design: a
                // half-written request must not be half-parsed.
                return false;
            }
            buffer_.append(chunk, static_cast<std::size_t>(n));
        }
    }

    bool write_line(const std::string& line) override {
        std::lock_guard lock(write_m_);
        std::string framed = line;
        framed += '\n';
        std::size_t sent = 0;
        while (sent < framed.size()) {
            const ssize_t n = ::send(fd_.load(), framed.data() + sent,
                                     framed.size() - sent, MSG_NOSIGNAL);
            if (n < 0 && errno == EINTR) continue; // retry, nothing sent
            // 0, a timeout (EAGAIN after SO_SNDTIMEO), or a hard error:
            // the line cannot complete — the peer sees a torn tail only
            // if bytes already went out, and then drops it at framing.
            if (n <= 0) return false;
            sent += static_cast<std::size_t>(n);
        }
        return true;
    }

    void close() override {
        const int fd = fd_.exchange(-1);
        if (fd >= 0) {
            ::shutdown(fd, SHUT_RDWR);
            ::close(fd);
        }
    }

private:
    std::atomic<int> fd_;
    std::mutex read_m_;
    std::mutex write_m_;
    std::string buffer_;
};

} // namespace

struct UnixSocketTransport::Impl {
    std::atomic<int> listen_fd{-1};
    std::mutex m;
    std::vector<std::weak_ptr<Connection>> handed_out;
};

UnixSocketTransport::UnixSocketTransport(std::string path, int backlog)
    : path_(std::move(path)), impl_(std::make_shared<Impl>()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path_.size() >= sizeof(addr.sun_path)) {
        throw std::runtime_error("socket path too long: " + path_);
    }
    std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("socket() failed");
    ::unlink(path_.c_str()); // stale socket from a previous run
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        throw std::runtime_error("bind(" + path_ + ") failed");
    }
    if (::listen(fd, backlog) != 0) {
        ::close(fd);
        throw std::runtime_error("listen(" + path_ + ") failed");
    }
    impl_->listen_fd.store(fd);
}

UnixSocketTransport::~UnixSocketTransport() {
    shutdown();
    ::unlink(path_.c_str());
}

std::shared_ptr<Connection> UnixSocketTransport::accept() {
    const int fd = impl_->listen_fd.load();
    if (fd < 0) return nullptr;
    const int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) return nullptr; // listen socket closed during shutdown
    auto conn = std::make_shared<FdConnection>(client);
    std::lock_guard lock(impl_->m);
    impl_->handed_out.push_back(conn);
    return conn;
}

void UnixSocketTransport::shutdown() {
    const int fd = impl_->listen_fd.exchange(-1);
    if (fd >= 0) {
        ::shutdown(fd, SHUT_RDWR);
        ::close(fd);
    }
    std::vector<std::weak_ptr<Connection>> open;
    {
        std::lock_guard lock(impl_->m);
        open.swap(impl_->handed_out);
    }
    for (auto& weak : open) {
        if (auto conn = weak.lock()) conn->close();
    }
}

std::shared_ptr<Connection> UnixSocketTransport::dial(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) return nullptr;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return nullptr;
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        return nullptr;
    }
    return std::make_shared<FdConnection>(fd);
}

} // namespace stsense::service
