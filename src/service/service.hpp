// stsense::service — the resident thermal-telemetry daemon, in one
// include: JSON value/wire types, the lazily-evaluated object model,
// the command registry, transports (Unix socket + in-process loopback),
// fair queuing with admission control, per-die sessions, and the server
// composing them.
//
//     service::ServerConfig cfg;
//     cfg.threads = 4;
//     service::Server server(cfg, {die0_spec, die1_spec});
//     service::LoopbackTransport loop;
//     server.start(loop);
//     auto conn = loop.connect();
//     conn->write_line(R"({"id":1,"method":"thermal_map",
//                          "params":{"session":0}})");
#pragma once

#include "service/json.hpp"         // IWYU pragma: export
#include "service/object_model.hpp" // IWYU pragma: export
#include "service/protocol.hpp"     // IWYU pragma: export
#include "service/transport.hpp"    // IWYU pragma: export
#include "service/dispatch.hpp"     // IWYU pragma: export
#include "service/fair_queue.hpp"   // IWYU pragma: export
#include "service/session.hpp"      // IWYU pragma: export
#include "service/server.hpp"       // IWYU pragma: export
