// service::Json — the one JSON value type of the telemetry service.
//
// The wire protocol (protocol.hpp) is newline-delimited JSON, and the
// object model (object_model.hpp) renders live runtime state as JSON, so
// the service layer needs both directions: a writer whose doubles
// round-trip bitwise (util::format_double, the same shortest-round-trip
// formatting the checkpoint layer relies on) and a parser that treats
// arbitrary client bytes as hostile input — malformed text, truncated
// lines, and nesting bombs must come back as a parse error, never as a
// crash or unbounded recursion.
//
// Objects keep their key/value pairs sorted, so dump() output is
// deterministic: equal values serialize to equal bytes, which is what
// the drain/resume parity tests and the response-schema checker assert
// against. (The storage is a sorted vector rather than std::map: Json
// is incomplete inside its own definition, and standard containers
// other than vector don't guarantee incomplete-type support.)
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace stsense::service {

struct JsonParseResult;

class Json {
public:
    using Array = std::vector<Json>;
    /// Sorted by key; set() keeps the invariant (last write wins).
    using Object = std::vector<std::pair<std::string, Json>>;

    Json() = default;
    Json(std::nullptr_t) {}                                    // NOLINT(google-explicit-constructor)
    Json(bool b) : kind_(Kind::Bool), bool_(b) {}              // NOLINT
    Json(double d) : kind_(Kind::Number), num_(d) {}           // NOLINT
    Json(int i) : kind_(Kind::Number), num_(i) {}              // NOLINT
    Json(std::int64_t i)                                       // NOLINT
        : kind_(Kind::Number), num_(static_cast<double>(i)) {}
    Json(std::uint64_t u)                                      // NOLINT
        : kind_(Kind::Number), num_(static_cast<double>(u)) {}
    Json(const char* s) : kind_(Kind::String), str_(s) {}      // NOLINT
    Json(std::string s) : kind_(Kind::String), str_(std::move(s)) {} // NOLINT
    Json(Array a) : kind_(Kind::Array), arr_(std::move(a)) {}  // NOLINT

    static Json array() { return Json(Array{}); }
    static Json object() {
        Json j;
        j.kind_ = Kind::Object;
        return j;
    }

    bool is_null() const { return kind_ == Kind::Null; }
    bool is_bool() const { return kind_ == Kind::Bool; }
    bool is_number() const { return kind_ == Kind::Number; }
    bool is_string() const { return kind_ == Kind::String; }
    bool is_array() const { return kind_ == Kind::Array; }
    bool is_object() const { return kind_ == Kind::Object; }

    bool as_bool(bool fallback = false) const {
        return is_bool() ? bool_ : fallback;
    }
    double as_double(double fallback = 0.0) const {
        return is_number() ? num_ : fallback;
    }
    int as_int(int fallback = 0) const {
        return is_number() ? static_cast<int>(num_) : fallback;
    }
    std::int64_t as_int64(std::int64_t fallback = 0) const {
        return is_number() ? static_cast<std::int64_t>(num_) : fallback;
    }
    const std::string& as_string(const std::string& fallback = empty_string()) const {
        return is_string() ? str_ : fallback;
    }

    /// Array/object access. Non-container values behave as empty.
    std::size_t size() const;
    const Json& at(std::size_t index) const;       ///< Null when out of range.
    const Json& at(const std::string& key) const;  ///< Null when absent.
    bool contains(const std::string& key) const;

    /// Mutating helpers (coerce this value into the container kind).
    void push_back(Json v);
    Json& set(const std::string& key, Json v);

    const Array& items() const;    ///< Empty for non-arrays.
    const Object& members() const; ///< Empty for non-objects (sorted).

    /// Compact serialization (no whitespace). Doubles use
    /// util::format_double: shortest text that round-trips bitwise.
    std::string dump() const;

    /// Structural equality (objects compare as sorted sequences).
    friend bool operator==(const Json& a, const Json& b);

    /// Parses one JSON document; trailing non-whitespace is an error.
    /// Nesting deeper than `max_depth` is rejected (a hostile client
    /// must not be able to recurse the parser off the stack).
    static JsonParseResult parse(const std::string& text,
                                 std::size_t max_depth = 64);

private:
    enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

    static const std::string& empty_string();

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    Array arr_;
    Object obj_;
};

/// A parsed document or the reason it was rejected.
struct JsonParseResult {
    std::optional<Json> value; ///< Engaged iff the input parsed.
    std::string error;         ///< Diagnostic with byte offset otherwise.
};

/// JSON string escaping (quotes included), shared with the exporters.
std::string json_quote(const std::string& s);

} // namespace stsense::service
