// service::ObjectModel — a hierarchical, lazily-evaluated view of live
// runtime state.
//
// Modeled on RepRapFirmware's ObjectModel report/query machinery: the
// server does not snapshot its world into one giant document per query.
// Instead it exposes a virtual tree whose nodes are *recipes* — a leaf
// holds a closure that reads the live value when (and only when) the
// query renders it, and a container holds factories that materialize a
// child only when the query path or the report descends into it. A query
// for `state.sessions[3].sites[12].health` therefore touches exactly one
// session and one site; the other N-1 sessions are never evaluated.
//
// Report shaping follows the same firmware idiom:
//   * a *depth* limit stops the rendering: containers below the limit
//     render as the truncation marker "..." (so a shallow query over a
//     huge tree stays cheap and bounded);
//   * a *filter* wildcard ("hit*", "*_c") prunes object keys at every
//     rendered level — clients fetch the fields they care about, not the
//     whole record.
//
// Thread-safety is the provider's problem by design: closures read
// atomics or take the owning component's state lock. The tree structure
// itself is immutable once built.
#pragma once

#include "service/json.hpp"

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace stsense::service {

class ModelNode;
using ModelPtr = std::shared_ptr<const ModelNode>;

/// One node of the virtual tree. Exactly one of the three shapes:
/// a leaf (value()), an object (keys()/child(key)), or an array
/// (length()/element(i)).
class ModelNode {
public:
    virtual ~ModelNode() = default;

    virtual bool is_leaf() const { return false; }
    virtual bool is_array() const { return false; }

    /// Leaf evaluation — reads the live value. Leaf nodes only.
    virtual Json value() const { return Json(nullptr); }

    /// Object child names, in render order. Object nodes only.
    virtual std::vector<std::string> keys() const { return {}; }
    /// Materializes one object child; nullptr when the key is unknown.
    virtual ModelPtr child(const std::string& /*key*/) const { return nullptr; }

    /// Array length / element. Array nodes only.
    virtual std::size_t length() const { return 0; }
    virtual ModelPtr element(std::size_t /*index*/) const { return nullptr; }
};

/// Leaf from a value-reading closure.
ModelPtr leaf(std::function<Json()> read);
/// Leaf holding a constant.
ModelPtr fixed_leaf(Json value);

/// Object node from (name, child-factory) pairs; factories run lazily,
/// once per query that descends into the child.
using ChildFactory = std::function<ModelPtr()>;
ModelPtr object(std::vector<std::pair<std::string, ChildFactory>> children);

/// Array node: `count` is re-read per query, `at` materializes one
/// element on demand.
ModelPtr array(std::function<std::size_t()> count,
               std::function<ModelPtr(std::size_t)> at);

/// How a query renders the selected subtree.
struct QueryOptions {
    /// Containers more than `depth` levels below the selected node
    /// render as the truncation marker. depth 0 renders the node itself
    /// as a marker unless it is a leaf.
    int depth = 4;
    /// Wildcard ('*' matches any run) applied to object keys at every
    /// rendered level; empty matches everything. Keys that fail the
    /// filter are omitted (but the path segments already named in the
    /// query are exempt — you can always address a node explicitly).
    std::string filter;
    static constexpr const char* kTruncated = "...";
};

/// Outcome of resolving a path against the tree.
struct QueryResult {
    bool ok = false;
    Json value;        ///< Rendered subtree when ok.
    std::string error; ///< Which segment failed otherwise.
};

/// Simple '*' wildcard match (exposed for tests).
bool wildcard_match(const std::string& pattern, const std::string& text);

/// Splits an object-model path into segments. Grammar:
///   path  := [ "state" ] ( "." ident | "[" digits "]" )*
/// i.e. "state.sessions[3].sites[12].health", "pool.queue_depth",
/// "sessions[0]". An empty path (or bare "state") selects the root.
/// Returns false on syntax errors ("sessions[", "a..b", "x[y]").
bool parse_model_path(const std::string& path, std::vector<std::string>& out,
                      std::string& error);

/// Resolves `path` from `root` and renders the selected subtree under
/// `opt`. Unknown keys / out-of-range indices fail with the offending
/// segment named; rendering never throws.
QueryResult query_model(const ModelPtr& root, const std::string& path,
                        const QueryOptions& opt = {});

} // namespace stsense::service
