#include "service/dispatch.hpp"

#include <utility>

namespace stsense::service {

void CommandProcessor::register_method(const std::string& name, bool heavy,
                                       Handler handler) {
    commands_[name] = CommandSpec{heavy, std::move(handler)};
}

const CommandProcessor::CommandSpec*
CommandProcessor::find(const std::string& name) const {
    const auto it = commands_.find(name);
    return it == commands_.end() ? nullptr : &it->second;
}

std::vector<std::string> CommandProcessor::methods() const {
    std::vector<std::string> out;
    out.reserve(commands_.size());
    for (const auto& [name, spec] : commands_) out.push_back(name);
    return out;
}

} // namespace stsense::service
