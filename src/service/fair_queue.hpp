// service::FairScheduler — admission control + weighted fair queuing of
// client jobs onto the shared exec::ThreadPool.
//
// Heavy requests (sweeps, thermal maps, optimizer runs) do not go
// straight to the pool: a client that pipelines a thousand sweeps would
// monopolize every worker and starve everyone else. Instead each client
// owns a FIFO of pending jobs and the scheduler releases at most
// `max_concurrency` jobs into the pool at once, choosing the next job by
// *weighted round-robin*: each visit of the release cursor grants a
// client up to `weight` consecutive dispatches before moving on, so a
// weight-3 client gets 3x the service rate of a weight-1 client under
// contention and exactly its demand when the pool is idle.
//
// Admission is bounded on three axes, each rejection typed Overloaded
// (never a silent hang):
//   * per-client inflight (queued + executing) cap,
//   * per-client queue cap,
//   * global queue cap.
//
// A job may carry a cancel token. A token whose deadline has already
// expired at submit is shed with the typed DeadlineUnmet verdict before
// any queue slot or pool time is spent on it; a token that fires while
// the job is queued is the dispatcher's problem (the server's job
// wrapper answers it without doing the heavy work).
//
// Dispatch order is deterministic given the arrival order: the cursor
// walks clients in registration order and jobs in FIFO order — the
// determinism tests pin this down with max_concurrency = 1.
#pragma once

#include "exec/thread_pool.hpp"

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>

namespace stsense::service {

class FairScheduler {
public:
    struct Limits {
        /// Max queued + executing jobs one client may have. <= 0: unbounded.
        int max_inflight_per_client = 8;
        /// Max queued jobs one client may have. <= 0: unbounded.
        int max_queued_per_client = 32;
        /// Max queued jobs across all clients. <= 0: unbounded.
        int max_queued_total = 128;
        /// Jobs released into the pool at once; <= 0 uses the pool width.
        int max_concurrency = 0;
    };

    enum class Admit {
        Ok,               ///< Queued (and possibly already dispatched).
        ClientSaturated,  ///< Per-client inflight or queue cap hit.
        QueueFull,        ///< Global queue cap hit.
        Draining,         ///< drain() began; no new jobs.
        DeadlineUnmet,    ///< Token deadline already expired; job shed.
    };

    FairScheduler(exec::ThreadPool& pool, Limits limits);
    ~FairScheduler();
    FairScheduler(const FairScheduler&) = delete;
    FairScheduler& operator=(const FairScheduler&) = delete;

    /// Registers a client and returns its id. `weight` is clamped to
    /// [1, 64].
    int add_client(int weight = 1);
    void set_weight(int client, int weight);

    /// Queues `job` for `client`. On Admit::Ok the job will run on the
    /// pool (possibly before submit returns). Any other verdict means
    /// the job was NOT queued and the caller must answer the client.
    /// `token` (optional) is the request's cancel token: a deadline
    /// already expired at submit sheds the job (DeadlineUnmet) instead
    /// of wasting a queue slot on work that cannot answer in time.
    Admit submit(int client, std::function<void()> job,
                 const exec::CancelToken& token = {});

    /// Stops admissions. `discard_queued` pops every not-yet-dispatched
    /// job and hands it to `on_discard` (so the server can answer
    /// ShuttingDown) instead of running it. Blocks until every
    /// dispatched job finished. Idempotent.
    void drain(bool discard_queued = false,
               const std::function<void(std::function<void()>)>& on_discard = {});

    bool draining() const;

    /// Blocks until no job is queued or executing (admissions stay open).
    void wait_idle();

    // ---- live counters for the object model -----------------------------
    std::size_t queued() const;
    std::size_t executing() const;
    std::uint64_t completed() const;
    std::uint64_t rejected() const;
    std::size_t inflight(int client) const;

private:
    struct Client {
        int weight = 1;
        int quantum_left = 1;              ///< Dispatches left this visit.
        std::deque<std::function<void()>> queue;
        std::size_t executing = 0;
    };

    /// Releases queued jobs into the pool while below max_concurrency.
    /// Requires m_ held; may be re-entered from job completions.
    void pump_locked();
    void run_job(int client, std::function<void()> job);

    exec::ThreadPool& pool_;
    Limits limits_;
    mutable std::mutex m_;
    std::condition_variable idle_cv_;
    std::map<int, Client> clients_;
    int next_client_ = 0;
    /// Weighted round-robin cursor: id of the client served next.
    int cursor_ = 0;
    std::size_t queued_ = 0;
    std::size_t executing_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t rejected_ = 0;
    bool draining_ = false;
    exec::TaskGroup group_;
};

} // namespace stsense::service
