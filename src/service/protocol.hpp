// service wire protocol — newline-delimited JSON requests/responses.
//
// One request per line, one response line per request (plus unsolicited
// event lines for subscriptions):
//
//   -> {"id":7,"method":"sweep","params":{"session":1,"points":17}}
//   <- {"id":7,"ok":true,"result":{...}}
//   <- {"id":8,"ok":false,"error":{"code":"overloaded","message":"..."}}
//   <- {"event":"update","seq":3,"path":"pool.queue_depth","value":2}
//
// Responses may arrive out of request order (heavy jobs overtake each
// other on the pool); the id is the correlation key. Every failure is a
// *typed* error response — malformed bytes, unknown methods, bad
// params, admission rejections, and handler faults all map onto
// ErrorCode values, never onto a dropped connection or a crash.
#pragma once

#include "service/json.hpp"

#include <cstdint>
#include <stdexcept>
#include <string>

namespace stsense::service {

/// Why a request failed. The enum string (to_string) is the wire form.
enum class ErrorCode {
    MalformedRequest, ///< Line was not a JSON object with id/method.
    UnknownMethod,    ///< Method name not in the command registry.
    BadParams,        ///< Params missing/mistyped for the method.
    UnknownSession,   ///< "session" does not name a live session.
    UnknownPath,      ///< Object-model path did not resolve.
    Overloaded,       ///< Admission control rejected the request.
    ShuttingDown,     ///< Server is draining; no new work admitted.
    Internal,         ///< Handler failed (solver fault, injected kill...).
    Cancelled,        ///< Request cancelled (cancel method, disconnect).
    DeadlineUnmet,    ///< deadline_ms expired (shed or mid-computation).
};

const char* to_string(ErrorCode code);

/// Typed failure a command handler raises; the dispatcher converts it
/// into the matching error response.
class ServiceError : public std::runtime_error {
public:
    ServiceError(ErrorCode code, const std::string& message)
        : std::runtime_error(message), code_(code) {}
    ErrorCode code() const { return code_; }

private:
    ErrorCode code_;
};

/// One parsed request.
struct Request {
    std::int64_t id = 0;
    std::string method;
    Json params; ///< Object; empty object when the client sent none.
    /// Optional end-to-end deadline, wall milliseconds from receipt.
    /// 0 = none. The server arms a cancel-token deadline from it:
    /// expiry before dispatch sheds the request (`deadline-unmet`),
    /// expiry mid-computation unwinds it at the next poll point.
    double deadline_ms = 0.0;
};

/// Parses one wire line into a Request. Throws ServiceError
/// (MalformedRequest) naming what is wrong; never crashes on hostile
/// bytes (the JSON parser is depth- and format-checked).
Request parse_request(const std::string& line);

/// Response/event constructors (already-serialized lines).
std::string make_ok_response(std::int64_t id, Json result);
std::string make_error_response(std::int64_t id, ErrorCode code,
                                const std::string& message);
std::string make_event(std::uint64_t seq, const std::string& path, Json value);

} // namespace stsense::service
