// Aligned console tables for bench output. Every bench prints the
// paper-shaped series through this so the artifacts look uniform.
#pragma once

#include <string>
#include <vector>

namespace stsense::util {

/// Builds a fixed-column text table and renders it with aligned columns.
///
///     Table t({"ratio", "max |NL| (%)"});
///     t.add_row({"1.75", "0.31"});
///     std::cout << t.render();
class Table {
public:
    explicit Table(std::vector<std::string> headers);

    /// Appends a row; must have exactly as many cells as headers.
    void add_row(std::vector<std::string> cells);

    /// Convenience: formats doubles with the given precision.
    void add_row_numeric(const std::vector<double>& values, int precision = 4);

    std::size_t row_count() const { return rows_.size(); }

    /// Renders with a header rule and one space of padding per side.
    std::string render() const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Formats `v` with fixed `precision` decimals.
std::string fixed(double v, int precision = 4);

/// Formats `v` in engineering-friendly scientific notation.
std::string sci(double v, int precision = 3);

} // namespace stsense::util
