// Deterministic pseudo-random number generation for reproducible
// Monte-Carlo experiments.
//
// All randomness in the library flows through util::Rng so that every
// experiment is reproducible from a single 64-bit seed. The generator is
// xoshiro256** (Blackman & Vigna), which is small, fast, and has no
// observable statistical defects at the scale used here.
#pragma once

#include <array>
#include <cstdint>

namespace stsense::util {

/// xoshiro256** pseudo-random generator with convenience distributions.
///
/// Satisfies the essentials of UniformRandomBitGenerator so it can also
/// be handed to <random> distributions if ever needed.
class Rng {
public:
    using result_type = std::uint64_t;

    /// Seeds the generator. Identical seeds yield identical streams.
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~std::uint64_t{0}; }

    /// Next raw 64-bit value.
    std::uint64_t operator()();

    /// Uniform double in [0, 1).
    double uniform01();

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi);

    /// Standard normal via Box–Muller (cached spare for efficiency).
    double normal();

    /// Normal with the given mean and standard deviation.
    double normal(double mean, double sigma);

    /// Uniform integer in [0, n). Precondition: n > 0.
    std::uint64_t below(std::uint64_t n);

    /// Splits off an independent stream (useful for per-sensor RNGs).
    /// Stateful: advances this generator, so the derived stream depends
    /// on how many values were drawn before the call.
    Rng split();

    /// Derives the independent stream number `stream_id` from this
    /// generator's *current state* without advancing it.
    ///
    /// Guarantee (the basis of deterministic parallel Monte-Carlo): for
    /// a fixed parent state, split(i) is a pure function of i — the same
    /// (seed, stream_id) pair always yields the same stream, regardless
    /// of thread count, scheduling, or the order trials execute in. Give
    /// trial i the stream split(i) and a parallel run draws exactly the
    /// numbers the serial run draws. Distinct stream_ids yield streams
    /// decorrelated by splitmix64 mixing of (state, stream_id).
    Rng split(std::uint64_t stream_id) const;

private:
    std::array<std::uint64_t, 4> state_{};
    double spare_ = 0.0;
    bool has_spare_ = false;
};

} // namespace stsense::util
