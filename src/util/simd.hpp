// util::simd — runtime SIMD capability probe and dispatch policy.
//
// The batched device evaluator (spice::DeviceBatch) carries two code
// paths for its hot restamp/mask arithmetic: portable scalar and AVX2.
// Which one runs is decided *at runtime* from the CPU the process
// actually landed on, so one binary serves every x86-64 machine — and
// the choice can be pinned for testing through the STSENSE_SIMD
// environment variable (the tier-1 parity suite runs the whole test
// set once per dispatch to prove the paths bitwise-identical).
//
// The contract both paths must honor: identical results bit for bit.
// The vector path therefore performs exactly the scalar expressions in
// exactly the scalar association — in particular the AVX2 translation
// unit is compiled with -ffp-contract=off so GCC cannot fuse its
// mul+add intrinsics into FMAs (an FMA rounds once where mul+add
// rounds twice, which would break parity). FMA support is still probed
// and reported, but no value-critical math uses it.
#pragma once

namespace stsense::util {

/// What the CPU offers (probed once, cached).
struct SimdCaps {
    bool sse42 = false;
    bool avx2 = false;
    bool fma = false;
    bool avx512f = false;
};

/// Instruction-set level a kernel actually dispatches to.
enum class SimdLevel {
    Scalar,
    Avx2,
};

/// Dispatch request carried by the option structs: Auto picks the best
/// probed level, the others force one (forcing a level the CPU lacks
/// silently degrades to Scalar — the scalar path is always correct).
enum class SimdMode {
    Auto,
    ForceScalar,
    ForceAvx2,
};

/// CPU capability probe (cached after the first call; never throws).
const SimdCaps& simd_caps();

/// Resolves a requested mode against the probed caps and the
/// STSENSE_SIMD environment override. Precedence: environment variable
/// beats the mode argument beats the probe — so a CI lane can pin
/// `STSENSE_SIMD=scalar` without touching any call site.
SimdLevel resolve_simd(SimdMode mode = SimdMode::Auto);

/// Parses a STSENSE_SIMD-style string ("scalar", "avx2", "auto", case
/// sensitive by design — these are machine-written CI values). Returns
/// false and leaves `out` untouched for anything else (including
/// nullptr/empty, which mean "no override").
bool parse_simd_override(const char* value, SimdMode& out);

/// Human-readable level name ("scalar" / "avx2") for logs and benches.
const char* simd_level_name(SimdLevel level);

} // namespace stsense::util
