#include "util/ascii_plot.hpp"

#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace stsense::util {

namespace {

constexpr char kSeriesMarks[] = {'*', '+', 'o', 'x', '#', '@'};

struct Range {
    double lo;
    double hi;
};

Range find_range(std::span<const double> v) {
    auto [mn, mx] = std::minmax_element(v.begin(), v.end());
    double lo = *mn;
    double hi = *mx;
    if (hi - lo < 1e-300) { // Flat series: open a symmetric band.
        lo -= 0.5;
        hi += 0.5;
    }
    return {lo, hi};
}

} // namespace

std::string ascii_plot_multi(std::span<const double> x,
                             const std::vector<std::vector<double>>& series,
                             const std::vector<std::string>& names,
                             const PlotOptions& opt) {
    if (x.empty() || series.empty()) {
        throw std::invalid_argument("ascii_plot: empty data");
    }
    for (const auto& s : series) {
        if (s.size() != x.size()) {
            throw std::invalid_argument("ascii_plot: series size mismatch");
        }
    }
    const int w = std::max(16, opt.width);
    const int h = std::max(4, opt.height);

    Range xr = find_range(x);
    double ylo = series[0][0];
    double yhi = series[0][0];
    for (const auto& s : series) {
        Range r = find_range(s);
        ylo = std::min(ylo, r.lo);
        yhi = std::max(yhi, r.hi);
    }
    if (yhi - ylo < 1e-300) {
        ylo -= 0.5;
        yhi += 0.5;
    }

    std::vector<std::string> canvas(static_cast<std::size_t>(h), std::string(static_cast<std::size_t>(w), ' '));
    for (std::size_t si = 0; si < series.size(); ++si) {
        const char mark = kSeriesMarks[si % std::size(kSeriesMarks)];
        for (std::size_t i = 0; i < x.size(); ++i) {
            double fx = (x[i] - xr.lo) / (xr.hi - xr.lo);
            double fy = (series[si][i] - ylo) / (yhi - ylo);
            if (!std::isfinite(fx) || !std::isfinite(fy)) continue;
            int cx = static_cast<int>(std::lround(fx * (w - 1)));
            int cy = static_cast<int>(std::lround((1.0 - fy) * (h - 1)));
            cx = std::clamp(cx, 0, w - 1);
            cy = std::clamp(cy, 0, h - 1);
            canvas[static_cast<std::size_t>(cy)][static_cast<std::size_t>(cx)] = mark;
        }
    }

    std::ostringstream os;
    if (!opt.y_label.empty()) os << opt.y_label << '\n';
    os << fixed(yhi, 4) << " +" << std::string(static_cast<std::size_t>(w), '-') << "+\n";
    for (const auto& line : canvas) {
        os << std::string(fixed(yhi, 4).size(), ' ') << " |" << line << "|\n";
    }
    os << fixed(ylo, 4) << " +" << std::string(static_cast<std::size_t>(w), '-') << "+\n";
    os << std::string(fixed(ylo, 4).size(), ' ') << "  " << fixed(xr.lo, 2)
       << std::string(static_cast<std::size_t>(std::max(1, w - 16)), ' ') << fixed(xr.hi, 2) << '\n';
    if (!opt.x_label.empty()) os << std::string(fixed(ylo, 4).size() + 2, ' ') << opt.x_label << '\n';
    if (!names.empty()) {
        os << "  legend:";
        for (std::size_t si = 0; si < names.size() && si < series.size(); ++si) {
            os << "  (" << kSeriesMarks[si % std::size(kSeriesMarks)] << ") " << names[si];
        }
        os << '\n';
    }
    return os.str();
}

std::string ascii_plot(std::span<const double> x, std::span<const double> y,
                       const PlotOptions& opt) {
    return ascii_plot_multi(x, {std::vector<double>(y.begin(), y.end())}, {}, opt);
}

} // namespace stsense::util
