#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace stsense::util {

std::string fixed(double v, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    return buf;
}

std::string sci(double v, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*e", precision, v);
    return buf;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
    if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

void Table::add_row(std::vector<std::string> cells) {
    if (cells.size() != headers_.size()) {
        throw std::invalid_argument("Table: row width mismatch");
    }
    rows_.push_back(std::move(cells));
}

void Table::add_row_numeric(const std::vector<double>& values, int precision) {
    std::vector<std::string> cells;
    cells.reserve(values.size());
    for (double v : values) cells.push_back(fixed(v, precision));
    add_row(std::move(cells));
}

std::string Table::render() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            width[c] = std::max(width[c], row[c].size());
        }
    }

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << (c ? " | " : "");
            os << cells[c];
            os << std::string(width[c] - cells[c].size(), ' ');
        }
        os << '\n';
    };
    emit(headers_);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        os << (c ? "-+-" : "") << std::string(width[c], '-');
    }
    os << '\n';
    for (const auto& row : rows_) emit(row);
    return os.str();
}

} // namespace stsense::util
