#include "util/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace stsense::util {

namespace {

// splitmix64: seeds the xoshiro state from a single 64-bit value.
std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t Rng::operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double Rng::uniform01() {
    // 53 top bits -> double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform01();
}

double Rng::normal() {
    if (has_spare_) {
        has_spare_ = false;
        return spare_;
    }
    // Box–Muller; u1 in (0,1] so log() is finite.
    double u1 = 1.0 - uniform01();
    double u2 = uniform01();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * std::numbers::pi * u2;
    spare_ = r * std::sin(theta);
    has_spare_ = true;
    return r * std::cos(theta);
}

double Rng::normal(double mean, double sigma) {
    return mean + sigma * normal();
}

std::uint64_t Rng::below(std::uint64_t n) {
    if (n == 0) throw std::invalid_argument("Rng::below: n must be > 0");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = max() - max() % n;
    std::uint64_t v = (*this)();
    while (v >= limit) v = (*this)();
    return v % n;
}

Rng Rng::split() {
    return Rng((*this)());
}

Rng Rng::split(std::uint64_t stream_id) const {
    // Fold the state snapshot and the stream id through splitmix64; the
    // derived seed (and thus the stream) is a pure function of both, and
    // the parent state is left untouched.
    std::uint64_t sm = stream_id ^ 0xa0761d6478bd642fULL;
    std::uint64_t seed = splitmix64(sm);
    for (const std::uint64_t word : state_) {
        sm ^= word;
        seed ^= splitmix64(sm);
    }
    return Rng(seed);
}

} // namespace stsense::util
