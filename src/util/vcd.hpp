// VCD (Value Change Dump) writer — the standard waveform interchange
// format, so both the analog ring waveforms (as real variables) and the
// smart unit's digital activity (as wires) can be inspected in any
// off-the-shelf viewer.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace stsense::util {

/// Streams a VCD file: declare variables, then emit time-ordered value
/// changes. Times are integer multiples of the declared timescale.
class VcdWriter {
public:
    /// `timescale` must be a valid VCD timescale string, e.g. "1ps".
    VcdWriter(const std::string& path, const std::string& timescale,
              const std::string& scope = "stsense");

    /// Declares a 1-bit wire; returns its handle. Only valid before the
    /// first time() call.
    int add_wire(const std::string& name);

    /// Declares a real-valued variable (analog trace).
    int add_real(const std::string& name);

    /// Advances time (monotonically non-decreasing; equal times merge).
    void time(std::uint64_t t);

    /// Emits value changes at the current time.
    void change_wire(int id, bool value);
    /// Marks a wire unknown ('x'), e.g. an uninitialized flip-flop.
    void change_wire_unknown(int id);
    void change_real(int id, double value);

    /// Finishes the header if no time() was ever called, flushes.
    void finish();

    std::size_t variable_count() const { return codes_.size(); }

private:
    void ensure_header_closed();
    void check_id(int id) const;

    std::ofstream out_;
    std::vector<std::string> codes_;
    bool header_closed_ = false;
    bool has_time_ = false;
    std::uint64_t current_time_ = 0;
};

} // namespace stsense::util
