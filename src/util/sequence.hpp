// Small numeric sequence helpers shared by sweeps and benches.
#pragma once

#include <stdexcept>
#include <vector>

namespace stsense::util {

/// n evenly spaced values from lo to hi inclusive. Precondition: n >= 2.
inline std::vector<double> linspace(double lo, double hi, int n) {
    if (n < 2) throw std::invalid_argument("linspace: n must be >= 2");
    std::vector<double> v(static_cast<std::size_t>(n));
    const double step = (hi - lo) / (n - 1);
    for (int i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = lo + step * i;
    v.back() = hi; // Exact endpoint despite rounding.
    return v;
}

/// Values lo, lo+step, ... not exceeding hi (inclusive within tolerance).
inline std::vector<double> arange(double lo, double hi, double step) {
    if (step <= 0) throw std::invalid_argument("arange: step must be > 0");
    std::vector<double> v;
    const double eps = step * 1e-9;
    for (double x = lo; x <= hi + eps; x += step) v.push_back(x);
    return v;
}

} // namespace stsense::util
