#include "util/simd.hpp"

#include <cstdlib>
#include <cstring>

namespace stsense::util {

namespace {

SimdCaps probe_caps() {
    SimdCaps caps;
#if defined(__x86_64__) || defined(__i386__)
    caps.sse42 = __builtin_cpu_supports("sse4.2");
    caps.avx2 = __builtin_cpu_supports("avx2");
    caps.fma = __builtin_cpu_supports("fma");
    caps.avx512f = __builtin_cpu_supports("avx512f");
#endif
    return caps;
}

} // namespace

const SimdCaps& simd_caps() {
    static const SimdCaps caps = probe_caps();
    return caps;
}

bool parse_simd_override(const char* value, SimdMode& out) {
    if (value == nullptr || *value == '\0') return false;
    if (std::strcmp(value, "scalar") == 0) {
        out = SimdMode::ForceScalar;
        return true;
    }
    if (std::strcmp(value, "avx2") == 0) {
        out = SimdMode::ForceAvx2;
        return true;
    }
    if (std::strcmp(value, "auto") == 0) {
        out = SimdMode::Auto;
        return true;
    }
    return false;
}

SimdLevel resolve_simd(SimdMode mode) {
    SimdMode effective = mode;
    SimdMode env_mode;
    if (parse_simd_override(std::getenv("STSENSE_SIMD"), env_mode)) {
        effective = env_mode;
    }
    switch (effective) {
        case SimdMode::ForceScalar:
            return SimdLevel::Scalar;
        case SimdMode::ForceAvx2:
        case SimdMode::Auto:
            // Forcing AVX2 on a CPU without it degrades to scalar: the
            // scalar path is always available and always correct, and
            // the two are bitwise-identical by contract anyway.
            return simd_caps().avx2 ? SimdLevel::Avx2 : SimdLevel::Scalar;
    }
    return SimdLevel::Scalar;
}

const char* simd_level_name(SimdLevel level) {
    switch (level) {
        case SimdLevel::Avx2: return "avx2";
        case SimdLevel::Scalar: break;
    }
    return "scalar";
}

} // namespace stsense::util
