// stsense::Expected<T, E> — the library-wide error carrier.
//
// Three error surfaces grew independently before this header existed:
// spice::Result<T>/SimError (solver failures), the sensor's try_*
// readout paths (reusing spice::Result), and the monitor's per-ring
// readout verdicts (ad-hoc SiteFault bookkeeping). They all express the
// same contract — "a value, or a classified failure" — so they now
// share this one template. The old spice names survive as thin aliases
// in spice/sim_error.hpp.
//
// Expected deliberately mirrors the subset of std::expected (C++23,
// unavailable at our language level) the codebase actually uses, plus
// the domain bridge the old spice::Result had: take_or_throw() raises
// the *domain's* exception type via the ErrorTraits customization
// point, so throwing wrappers at any layer keep their historical
// exception contracts without this header knowing about them.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace stsense {

/// What went wrong, library-wide. The first five kinds mirror the
/// classic SPICE failure modes; the later ones cover the measurement
/// and readout layers. Aliased as spice::SimErrorKind.
enum class ErrorKind {
    NonConvergence,   ///< Newton exhausted its iterations on every rung.
    SingularMatrix,   ///< LU factorization hit a zero pivot.
    NonFiniteState,   ///< NaN/Inf appeared in a solution or conversion.
    StepLimit,        ///< Iteration/step budget exceeded.
    DeadlineExceeded, ///< Per-solve wall-clock budget exceeded.
    MissingSignal,    ///< Requested probe/trace does not exist.
    NotCalibrated,    ///< Readout requested before the converter was trimmed.
    OutOfRange,       ///< Value outside the plausible/configured band.
    Cancelled,        ///< Cooperative cancellation fired mid-computation.
};

inline const char* to_string(ErrorKind kind) {
    switch (kind) {
        case ErrorKind::NonConvergence: return "non-convergence";
        case ErrorKind::SingularMatrix: return "singular-matrix";
        case ErrorKind::NonFiniteState: return "non-finite-state";
        case ErrorKind::StepLimit: return "step-limit";
        case ErrorKind::DeadlineExceeded: return "deadline-exceeded";
        case ErrorKind::MissingSignal: return "missing-signal";
        case ErrorKind::NotCalibrated: return "not-calibrated";
        case ErrorKind::OutOfRange: return "out-of-range";
        case ErrorKind::Cancelled: return "cancelled";
    }
    return "unknown";
}

/// One classified failure. Aliased as spice::SimError; the solver
/// fields (time_s, newton_iters) are inert for non-solver errors.
struct Error {
    ErrorKind kind = ErrorKind::NonConvergence;
    std::string message;
    double time_s = -1.0;    ///< Transient time of the failure; -1 for DC.
    long newton_iters = 0;   ///< Iterations burned before giving up.

    std::string to_string() const {
        std::string out = stsense::to_string(kind);
        out += ": ";
        out += message;
        if (time_s >= 0.0) out += " (t = " + std::to_string(time_s) + " s)";
        return out;
    }
};

/// Customization point: how take_or_throw() turns an E into the
/// domain's exception. The default wraps E::to_string() (or, failing
/// that, nothing useful — specialize for your error type). spice
/// specializes this for Error to throw SimException, preserving the
/// historical catch sites.
template <typename E>
struct ErrorTraits {
    [[noreturn]] static void raise(E error) {
        throw std::runtime_error(error.to_string());
    }
};

/// Either a value or a classified error. Implicitly constructible from
/// both (matching the old spice::Result ergonomics, where `return e;`
/// inside a Result-returning function is the idiomatic failure path).
template <typename T, typename E = Error>
class Expected {
public:
    using value_type = T;
    using error_type = E;

    Expected(T value) : v_(std::move(value)) {}   // NOLINT(google-explicit-constructor)
    Expected(E error) : v_(std::move(error)) {}   // NOLINT(google-explicit-constructor)

    bool ok() const { return std::holds_alternative<T>(v_); }
    explicit operator bool() const { return ok(); }

    T& value() { return std::get<T>(v_); }
    const T& value() const { return std::get<T>(v_); }
    E& error() { return std::get<E>(v_); }
    const E& error() const { return std::get<E>(v_); }

    /// value() or a fallback; never throws.
    T value_or(T fallback) const {
        return ok() ? std::get<T>(v_) : std::move(fallback);
    }

    /// Unwraps, raising the domain exception (ErrorTraits<E>::raise) on
    /// error — the bridge the throwing compatibility wrappers use.
    T take_or_throw() && {
        if (!ok()) ErrorTraits<E>::raise(std::get<E>(std::move(v_)));
        return std::get<T>(std::move(v_));
    }

private:
    std::variant<T, E> v_;
};

} // namespace stsense
