// Terminal line plots. Fig. 1 of the paper is a transient waveform; the
// bench reproduces it as an ASCII plot so the artifact is visible
// directly in the console log (and additionally as CSV).
#pragma once

#include <span>
#include <string>
#include <vector>

namespace stsense::util {

/// Options controlling the character canvas.
struct PlotOptions {
    int width = 72;      ///< Canvas width in characters (>= 16).
    int height = 16;     ///< Canvas height in characters (>= 4).
    char mark = '*';     ///< Glyph used for data points.
    std::string x_label; ///< Printed under the x axis.
    std::string y_label; ///< Printed above the plot.
};

/// Renders y(x) as a scatter/line plot on a character canvas with simple
/// axes and min/max annotations. x and y must be the same size and
/// non-empty; otherwise throws std::invalid_argument.
std::string ascii_plot(std::span<const double> x, std::span<const double> y,
                       const PlotOptions& opt = {});

/// Renders multiple series on one canvas; series i uses marks[i % marks.size()].
std::string ascii_plot_multi(std::span<const double> x,
                             const std::vector<std::vector<double>>& series,
                             const std::vector<std::string>& names,
                             const PlotOptions& opt = {});

} // namespace stsense::util
