#include "util/csv.hpp"

#include <charconv>
#include <stdexcept>

namespace stsense::util {

std::string format_double(double v) {
    char buf[64];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
    if (ec != std::errc{}) return "nan";
    return std::string(buf, ptr);
}

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
    if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

void CsvWriter::header(std::initializer_list<std::string_view> names) {
    std::vector<std::string> fields;
    fields.reserve(names.size());
    for (auto n : names) fields.emplace_back(n);
    header(fields);
}

void CsvWriter::header(const std::vector<std::string>& names) {
    if (header_written_ || rows_ > 0) {
        throw std::logic_error("CsvWriter: header must be first and unique");
    }
    write_fields(names);
    header_written_ = true;
}

void CsvWriter::row(std::initializer_list<double> values) {
    row(std::vector<double>(values));
}

void CsvWriter::row(const std::vector<double>& values) {
    std::vector<std::string> fields;
    fields.reserve(values.size());
    for (double v : values) fields.push_back(format_double(v));
    write_fields(fields);
    ++rows_;
}

void CsvWriter::row_text(const std::vector<std::string>& values) {
    write_fields(values);
    ++rows_;
}

void CsvWriter::write_fields(const std::vector<std::string>& fields) {
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i) out_ << ',';
        out_ << fields[i];
    }
    out_ << '\n';
}

} // namespace stsense::util
