// Minimal CSV writer used by benches and examples to dump series that
// can be re-plotted externally (the console output remains the primary
// artifact; CSV is a convenience).
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace stsense::util {

/// Streams rows into a CSV file. Values are formatted with enough
/// precision to round-trip doubles.
class CsvWriter {
public:
    /// Opens `path` for writing; throws std::runtime_error on failure.
    explicit CsvWriter(const std::string& path);

    /// Writes the header row. Call at most once, before any data row.
    void header(std::initializer_list<std::string_view> names);
    void header(const std::vector<std::string>& names);

    /// Writes one data row of doubles.
    void row(std::initializer_list<double> values);
    void row(const std::vector<double>& values);

    /// Writes one data row of preformatted strings.
    void row_text(const std::vector<std::string>& values);

    /// Number of data rows written so far.
    std::size_t rows_written() const { return rows_; }

private:
    void write_fields(const std::vector<std::string>& fields);

    std::ofstream out_;
    std::size_t rows_ = 0;
    bool header_written_ = false;
};

/// Formats a double compactly but losslessly (shortest round-trip).
std::string format_double(double v);

} // namespace stsense::util
