#include "util/cli.hpp"

#include <cstdlib>
#include <stdexcept>

namespace stsense::util {

Cli::Cli(int argc, const char* const* argv) {
    if (argc > 0) program_ = argv[0];
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) == 0) {
            auto eq = arg.find('=');
            if (eq == std::string::npos) {
                options_[arg.substr(2)] = "true";
            } else {
                options_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
            }
        } else {
            positional_.push_back(std::move(arg));
        }
    }
}

bool Cli::has(const std::string& key) const {
    return options_.count(key) > 0;
}

std::string Cli::get(const std::string& key, const std::string& fallback) const {
    auto it = options_.find(key);
    return it == options_.end() ? fallback : it->second;
}

double Cli::get(const std::string& key, double fallback) const {
    auto it = options_.find(key);
    if (it == options_.end()) return fallback;
    try {
        return std::stod(it->second);
    } catch (const std::exception&) {
        throw std::invalid_argument("Cli: option --" + key + " expects a number, got '" + it->second + "'");
    }
}

int Cli::get(const std::string& key, int fallback) const {
    auto it = options_.find(key);
    if (it == options_.end()) return fallback;
    try {
        return std::stoi(it->second);
    } catch (const std::exception&) {
        throw std::invalid_argument("Cli: option --" + key + " expects an integer, got '" + it->second + "'");
    }
}

} // namespace stsense::util
