#include "util/vcd.hpp"

#include <stdexcept>

namespace stsense::util {

namespace {

/// VCD identifier codes: printable ASCII 33..126, shortest-first.
std::string code_for(std::size_t index) {
    std::string code;
    std::size_t n = index;
    do {
        code.push_back(static_cast<char>(33 + n % 94));
        n /= 94;
    } while (n > 0);
    return code;
}

} // namespace

VcdWriter::VcdWriter(const std::string& path, const std::string& timescale,
                     const std::string& scope)
    : out_(path) {
    if (!out_) throw std::runtime_error("VcdWriter: cannot open " + path);
    out_ << "$date stsense $end\n"
         << "$version stsense VcdWriter $end\n"
         << "$timescale " << timescale << " $end\n"
         << "$scope module " << scope << " $end\n";
}

int VcdWriter::add_wire(const std::string& name) {
    if (header_closed_) throw std::logic_error("VcdWriter: header already closed");
    codes_.push_back(code_for(codes_.size()));
    out_ << "$var wire 1 " << codes_.back() << " " << name << " $end\n";
    return static_cast<int>(codes_.size()) - 1;
}

int VcdWriter::add_real(const std::string& name) {
    if (header_closed_) throw std::logic_error("VcdWriter: header already closed");
    codes_.push_back(code_for(codes_.size()));
    out_ << "$var real 64 " << codes_.back() << " " << name << " $end\n";
    return static_cast<int>(codes_.size()) - 1;
}

void VcdWriter::ensure_header_closed() {
    if (!header_closed_) {
        out_ << "$upscope $end\n$enddefinitions $end\n";
        header_closed_ = true;
    }
}

void VcdWriter::time(std::uint64_t t) {
    ensure_header_closed();
    if (has_time_ && t < current_time_) {
        throw std::invalid_argument("VcdWriter: time must not decrease");
    }
    if (!has_time_ || t != current_time_) {
        out_ << '#' << t << '\n';
        current_time_ = t;
        has_time_ = true;
    }
}

void VcdWriter::check_id(int id) const {
    if (id < 0 || static_cast<std::size_t>(id) >= codes_.size()) {
        throw std::invalid_argument("VcdWriter: bad variable id");
    }
}

void VcdWriter::change_wire(int id, bool value) {
    check_id(id);
    ensure_header_closed();
    out_ << (value ? '1' : '0') << codes_[static_cast<std::size_t>(id)] << '\n';
}

void VcdWriter::change_wire_unknown(int id) {
    check_id(id);
    ensure_header_closed();
    out_ << 'x' << codes_[static_cast<std::size_t>(id)] << '\n';
}

void VcdWriter::change_real(int id, double value) {
    check_id(id);
    ensure_header_closed();
    out_ << 'r' << value << ' ' << codes_[static_cast<std::size_t>(id)] << '\n';
}

void VcdWriter::finish() {
    ensure_header_closed();
    out_.flush();
}

} // namespace stsense::util
