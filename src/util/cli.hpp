// Tiny command-line option parser for bench/example binaries
// (--key=value / --flag style). Keeps the binaries dependency-free.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace stsense::util {

/// Parses `--key=value` and bare `--flag` arguments.
///
/// Unknown positional arguments are collected in `positional()`.
/// Lookup helpers fall back to a caller-supplied default, so benches can
/// run with zero arguments.
class Cli {
public:
    Cli(int argc, const char* const* argv);

    bool has(const std::string& key) const;
    std::string get(const std::string& key, const std::string& fallback) const;
    double get(const std::string& key, double fallback) const;
    int get(const std::string& key, int fallback) const;

    const std::vector<std::string>& positional() const { return positional_; }
    const std::string& program() const { return program_; }

private:
    std::string program_;
    std::map<std::string, std::string> options_;
    std::vector<std::string> positional_;
};

} // namespace stsense::util
