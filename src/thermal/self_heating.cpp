#include "thermal/self_heating.hpp"

#include "cells/delay_model.hpp"
#include "phys/units.hpp"
#include "ring/analytic.hpp"

#include <cmath>
#include <stdexcept>

namespace stsense::thermal {

double ring_dynamic_power(const phys::Technology& tech,
                          const ring::RingConfig& config, double temp_k) {
    const ring::AnalyticRingModel model(tech, config);
    const cells::DelayModel& dm = model.delay_model();

    // Total switched capacitance: every ring node carries the driving
    // stage's output parasitics plus the driven stage's input load.
    double c_total = 0.0;
    for (std::size_t i = 0; i < config.stages.size(); ++i) {
        c_total += dm.output_capacitance(config.stages[i]) + model.stage_load(i);
    }
    return c_total * tech.vdd * tech.vdd / model.period(temp_k);
}

SelfHeatingResult solve_self_heating(const phys::Technology& tech,
                                     const ring::RingConfig& config,
                                     double die_temp_c,
                                     const SelfHeatingParams& params) {
    if (params.r_local < 0.0 || params.duty < 0.0 || params.duty > 1.0) {
        throw std::invalid_argument("SelfHeatingParams: invalid values");
    }

    SelfHeatingResult out;
    double tj_c = die_temp_c;
    for (int it = 0; it < params.max_iters; ++it) {
        const double p =
            params.duty *
            ring_dynamic_power(tech, config, phys::celsius_to_kelvin(tj_c));
        const double next = die_temp_c + params.r_local * p;
        const bool done = std::abs(next - tj_c) < params.tolerance_k;
        tj_c = next;
        out.avg_power_w = p;
        if (done) {
            out.junction_c = tj_c;
            out.delta_c = tj_c - die_temp_c;
            return out;
        }
    }
    throw std::runtime_error("solve_self_heating: fixed point did not settle");
}

} // namespace stsense::thermal
