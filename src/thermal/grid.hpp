// 2-D RC compact thermal model of a die.
//
// Each grid cell couples laterally to its 4-neighbours through silicon
// conduction and vertically to ambient through an effective
// package/heatsink conductance; it stores heat in the silicon volume.
// This is the standard HotSpot-style abstraction, sized down to what the
// thermal-mapping and self-heating experiments need.
//
//   G_lat = k_si * t_die * dy / dx          (between lateral neighbours)
//   G_v   = h_eff * dx * dy                  (cell to ambient)
//   C     = c_v * t_die * dx * dy            (cell heat capacity)
#pragma once

#include <span>
#include <vector>

namespace stsense::thermal {

/// Material / package parameters of the grid.
struct GridParams {
    double k_si = 130.0;      ///< Silicon thermal conductivity [W/(m K)].
    double die_thickness = 0.4e-3; ///< [m].
    double h_eff = 8.0e3;     ///< Effective vertical conductance to ambient [W/(m^2 K)].
    double c_v = 1.63e6;      ///< Volumetric heat capacity of Si [J/(m^3 K)].
    double ambient_c = 45.0;  ///< Ambient / package reference temperature [deg C].
};

/// Iterative-solver controls.
struct SolveOptions {
    int max_iters = 20000;
    double tolerance_c = 1e-7; ///< Max per-cell update to declare convergence.
    double sor_omega = 1.8;    ///< Over-relaxation factor in (0, 2).
};

/// Steady-state and transient solver over an nx-by-ny cell grid.
class ThermalGrid {
public:
    /// Grid of nx-by-ny cells covering width-by-height meters.
    ThermalGrid(int nx, int ny, double width, double height,
                GridParams params = {});

    int nx() const { return nx_; }
    int ny() const { return ny_; }
    const GridParams& params() const { return params_; }

    /// Steady-state temperature map [deg C] for the per-cell power map
    /// [W] (row-major, y slowest). Throws std::invalid_argument on size
    /// mismatch and std::runtime_error on solver non-convergence.
    std::vector<double> steady_state(std::span<const double> power_w,
                                     const SolveOptions& opt = {}) const;

    /// Advances `temps_c` by one implicit-Euler step of `dt` seconds
    /// under the given power map (in place).
    void transient_step(std::vector<double>& temps_c,
                        std::span<const double> power_w, double dt,
                        const SolveOptions& opt = {}) const;

    /// Temperature at die coordinates (x, y) by bilinear interpolation
    /// of the cell-center samples; clamps to the die.
    double sample(std::span<const double> temps_c, double x, double y) const;

    /// Index of the cell containing (x, y).
    std::size_t cell_index(double x, double y) const;

private:
    /// Shared SOR kernel: solves (diag + G) T = rhs-form system.
    std::vector<double> solve(std::span<const double> source,
                              std::span<const double> extra_diag,
                              std::span<const double> initial,
                              const SolveOptions& opt) const;

    int nx_;
    int ny_;
    double dx_;
    double dy_;
    GridParams params_;
    double g_lat_x_; ///< Conductance to x-neighbour [W/K].
    double g_lat_y_; ///< Conductance to y-neighbour [W/K].
    double g_v_;     ///< Conductance to ambient [W/K].
    double cap_;     ///< Heat capacity per cell [J/K].
};

} // namespace stsense::thermal
