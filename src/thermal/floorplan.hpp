// Die floorplan: rectangular blocks with power budgets, rasterized into
// the power map consumed by the thermal grid. This provides the
// "different points of the die" that the paper's smart unit monitors via
// multiplexed ring oscillators.
#pragma once

#include <string>
#include <vector>

namespace stsense::thermal {

/// One functional block dissipating power uniformly over its footprint.
struct Block {
    std::string name;
    double x = 0.0;      ///< Left edge [m].
    double y = 0.0;      ///< Bottom edge [m].
    double width = 0.0;  ///< [m].
    double height = 0.0; ///< [m].
    double power_w = 0.0;///< Total block power [W].
};

/// Rectangular die with power-dissipating blocks.
class Floorplan {
public:
    /// Die extents must be positive.
    Floorplan(double die_width, double die_height);

    /// Adds a block; must lie fully inside the die and have positive
    /// area and non-negative power. Throws std::invalid_argument.
    void add_block(Block block);

    double die_width() const { return width_; }
    double die_height() const { return height_; }
    const std::vector<Block>& blocks() const { return blocks_; }

    /// Total power of all blocks [W].
    double total_power() const;

    /// Rasterizes to an nx-by-ny grid of per-cell power [W], row-major
    /// with y varying slowest. Block power is distributed over the cells
    /// it overlaps in proportion to the overlap area.
    std::vector<double> power_map(int nx, int ny) const;

private:
    double width_;
    double height_;
    std::vector<Block> blocks_;
};

/// A demonstrative microprocessor-like floorplan (core hotspot, cache,
/// I/O ring) on a 10 mm x 10 mm die, used by the thermal-mapping bench
/// and examples.
Floorplan demo_floorplan();

} // namespace stsense::thermal
