#include "thermal/floorplan.hpp"

#include <algorithm>
#include <stdexcept>

namespace stsense::thermal {

Floorplan::Floorplan(double die_width, double die_height)
    : width_(die_width), height_(die_height) {
    if (die_width <= 0.0 || die_height <= 0.0) {
        throw std::invalid_argument("Floorplan: die extents must be > 0");
    }
}

void Floorplan::add_block(Block block) {
    if (block.width <= 0.0 || block.height <= 0.0) {
        throw std::invalid_argument("Floorplan: block '" + block.name +
                                    "' must have positive area");
    }
    if (block.power_w < 0.0) {
        throw std::invalid_argument("Floorplan: block '" + block.name +
                                    "' has negative power");
    }
    if (block.x < 0.0 || block.y < 0.0 || block.x + block.width > width_ ||
        block.y + block.height > height_) {
        throw std::invalid_argument("Floorplan: block '" + block.name +
                                    "' lies outside the die");
    }
    blocks_.push_back(std::move(block));
}

double Floorplan::total_power() const {
    double sum = 0.0;
    for (const auto& b : blocks_) sum += b.power_w;
    return sum;
}

std::vector<double> Floorplan::power_map(int nx, int ny) const {
    if (nx < 1 || ny < 1) throw std::invalid_argument("power_map: nx, ny must be >= 1");
    std::vector<double> map(static_cast<std::size_t>(nx) * ny, 0.0);
    const double dx = width_ / nx;
    const double dy = height_ / ny;

    for (const auto& b : blocks_) {
        const double area = b.width * b.height;
        const double density = b.power_w / area; // W per m^2.
        // Cells overlapped by the block.
        const int ix0 = std::clamp(static_cast<int>(b.x / dx), 0, nx - 1);
        const int ix1 = std::clamp(static_cast<int>((b.x + b.width) / dx), 0, nx - 1);
        const int iy0 = std::clamp(static_cast<int>(b.y / dy), 0, ny - 1);
        const int iy1 = std::clamp(static_cast<int>((b.y + b.height) / dy), 0, ny - 1);
        for (int iy = iy0; iy <= iy1; ++iy) {
            for (int ix = ix0; ix <= ix1; ++ix) {
                const double cx0 = ix * dx;
                const double cy0 = iy * dy;
                const double ox = std::max(0.0, std::min(cx0 + dx, b.x + b.width) -
                                                    std::max(cx0, b.x));
                const double oy = std::max(0.0, std::min(cy0 + dy, b.y + b.height) -
                                                    std::max(cy0, b.y));
                map[static_cast<std::size_t>(iy) * nx + ix] += density * ox * oy;
            }
        }
    }
    return map;
}

Floorplan demo_floorplan() {
    Floorplan fp(10e-3, 10e-3);
    fp.add_block({"core", 1.0e-3, 5.5e-3, 3.5e-3, 3.5e-3, 18.0});
    fp.add_block({"fpu", 5.0e-3, 6.0e-3, 2.0e-3, 2.5e-3, 9.0});
    fp.add_block({"l2cache", 1.0e-3, 1.0e-3, 6.0e-3, 3.5e-3, 6.0});
    fp.add_block({"io", 7.8e-3, 1.0e-3, 1.5e-3, 8.0e-3, 3.0});
    return fp;
}

} // namespace stsense::thermal
