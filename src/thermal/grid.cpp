#include "thermal/grid.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace stsense::thermal {

ThermalGrid::ThermalGrid(int nx, int ny, double width, double height,
                         GridParams params)
    : nx_(nx), ny_(ny), params_(params) {
    if (nx < 1 || ny < 1) throw std::invalid_argument("ThermalGrid: nx, ny must be >= 1");
    if (width <= 0.0 || height <= 0.0) {
        throw std::invalid_argument("ThermalGrid: extents must be > 0");
    }
    if (params.k_si <= 0.0 || params.die_thickness <= 0.0 || params.h_eff <= 0.0 ||
        params.c_v <= 0.0) {
        throw std::invalid_argument("ThermalGrid: material parameters must be > 0");
    }
    dx_ = width / nx;
    dy_ = height / ny;
    g_lat_x_ = params.k_si * params.die_thickness * dy_ / dx_;
    g_lat_y_ = params.k_si * params.die_thickness * dx_ / dy_;
    g_v_ = params.h_eff * dx_ * dy_;
    cap_ = params.c_v * params.die_thickness * dx_ * dy_;
}

std::vector<double> ThermalGrid::solve(std::span<const double> source,
                                       std::span<const double> extra_diag,
                                       std::span<const double> initial,
                                       const SolveOptions& opt) const {
    const std::size_t n = static_cast<std::size_t>(nx_) * ny_;
    if (source.size() != n || extra_diag.size() != n || initial.size() != n) {
        throw std::invalid_argument("ThermalGrid::solve: size mismatch");
    }
    if (opt.sor_omega <= 0.0 || opt.sor_omega >= 2.0) {
        throw std::invalid_argument("ThermalGrid::solve: sor_omega out of (0, 2)");
    }

    std::vector<double> t(initial.begin(), initial.end());
    for (int iter = 0; iter < opt.max_iters; ++iter) {
        double max_update = 0.0;
        for (int iy = 0; iy < ny_; ++iy) {
            for (int ix = 0; ix < nx_; ++ix) {
                const std::size_t i = static_cast<std::size_t>(iy) * nx_ + ix;
                double diag = g_v_ + extra_diag[i];
                double neigh = 0.0;
                if (ix > 0) { diag += g_lat_x_; neigh += g_lat_x_ * t[i - 1]; }
                if (ix < nx_ - 1) { diag += g_lat_x_; neigh += g_lat_x_ * t[i + 1]; }
                if (iy > 0) { diag += g_lat_y_; neigh += g_lat_y_ * t[i - nx_]; }
                if (iy < ny_ - 1) {
                    diag += g_lat_y_;
                    neigh += g_lat_y_ * t[i + static_cast<std::size_t>(nx_)];
                }
                const double gs = (source[i] + g_v_ * params_.ambient_c + neigh) / diag;
                const double updated = t[i] + opt.sor_omega * (gs - t[i]);
                max_update = std::max(max_update, std::abs(updated - t[i]));
                t[i] = updated;
            }
        }
        if (max_update < opt.tolerance_c) return t;
    }
    throw std::runtime_error("ThermalGrid: SOR did not converge");
}

std::vector<double> ThermalGrid::steady_state(std::span<const double> power_w,
                                              const SolveOptions& opt) const {
    const std::size_t n = static_cast<std::size_t>(nx_) * ny_;
    if (power_w.size() != n) {
        throw std::invalid_argument("steady_state: power map size mismatch");
    }
    const std::vector<double> zero_diag(n, 0.0);
    const std::vector<double> initial(n, params_.ambient_c);
    return solve(power_w, zero_diag, initial, opt);
}

void ThermalGrid::transient_step(std::vector<double>& temps_c,
                                 std::span<const double> power_w, double dt,
                                 const SolveOptions& opt) const {
    const std::size_t n = static_cast<std::size_t>(nx_) * ny_;
    if (temps_c.size() != n || power_w.size() != n) {
        throw std::invalid_argument("transient_step: size mismatch");
    }
    if (dt <= 0.0) throw std::invalid_argument("transient_step: dt must be > 0");

    const double g_c = cap_ / dt;
    std::vector<double> source(n);
    std::vector<double> diag(n, g_c);
    for (std::size_t i = 0; i < n; ++i) source[i] = power_w[i] + g_c * temps_c[i];
    temps_c = solve(source, diag, temps_c, opt);
}

std::size_t ThermalGrid::cell_index(double x, double y) const {
    const int ix = std::clamp(static_cast<int>(x / dx_), 0, nx_ - 1);
    const int iy = std::clamp(static_cast<int>(y / dy_), 0, ny_ - 1);
    return static_cast<std::size_t>(iy) * nx_ + ix;
}

double ThermalGrid::sample(std::span<const double> temps_c, double x,
                           double y) const {
    const std::size_t n = static_cast<std::size_t>(nx_) * ny_;
    if (temps_c.size() != n) throw std::invalid_argument("sample: size mismatch");

    // Cell-center coordinates: center of cell (ix, iy) is ((ix+0.5)dx, ...).
    const double fx = std::clamp(x / dx_ - 0.5, 0.0, static_cast<double>(nx_ - 1));
    const double fy = std::clamp(y / dy_ - 0.5, 0.0, static_cast<double>(ny_ - 1));
    const int ix0 = static_cast<int>(fx);
    const int iy0 = static_cast<int>(fy);
    const int ix1 = std::min(ix0 + 1, nx_ - 1);
    const int iy1 = std::min(iy0 + 1, ny_ - 1);
    const double ax = fx - ix0;
    const double ay = fy - iy0;

    auto at = [&](int ix, int iy) {
        return temps_c[static_cast<std::size_t>(iy) * nx_ + ix];
    };
    const double bottom = at(ix0, iy0) * (1.0 - ax) + at(ix1, iy0) * ax;
    const double top = at(ix0, iy1) * (1.0 - ax) + at(ix1, iy1) * ax;
    return bottom * (1.0 - ay) + top * ay;
}

} // namespace stsense::thermal
