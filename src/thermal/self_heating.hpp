// Ring-oscillator self-heating.
//
// The paper lists "the possibility to disable the oscillator in order to
// minimize self-heating" as a feature of the smart unit. This model
// quantifies the effect: the oscillator's dynamic power raises its own
// junction temperature through a local spreading resistance, which in
// turn perturbs the very period being measured. Duty-cycling the enable
// shrinks the average power and thus the error.
#pragma once

#include "phys/technology.hpp"
#include "ring/config.hpp"

namespace stsense::thermal {

/// Dynamic power drawn by an oscillating ring at junction temperature
/// `temp_k` [W]: every stage node swings rail-to-rail once per period,
/// P = sum(C_node) * Vdd^2 / T_osc (analytic period model).
double ring_dynamic_power(const phys::Technology& tech,
                          const ring::RingConfig& config, double temp_k);

/// Self-heating parameters.
struct SelfHeatingParams {
    /// Local thermal spreading resistance from the (small) sensor
    /// footprint to the bulk die [K/W].
    double r_local = 2000.0;
    /// Fraction of time the oscillator is enabled (1 = free-running).
    double duty = 1.0;
    /// Fixed-point iteration controls for the T -> P(T) -> T loop.
    int max_iters = 50;
    double tolerance_k = 1e-6;
};

/// Self-heating solution at one ambient (die-background) temperature.
struct SelfHeatingResult {
    double junction_c = 0.0;   ///< Settled sensor junction temperature [deg C].
    double delta_c = 0.0;      ///< Self-heating rise above the die [deg C].
    double avg_power_w = 0.0;  ///< Duty-weighted oscillator power [W].
};

/// Solves the self-consistent junction temperature of an enabled ring
/// sitting on a die at `die_temp_c`. Throws std::runtime_error if the
/// fixed point does not settle (it always does for physical parameters).
SelfHeatingResult solve_self_heating(const phys::Technology& tech,
                                     const ring::RingConfig& config,
                                     double die_temp_c,
                                     const SelfHeatingParams& params = {});

} // namespace stsense::thermal
