// Non-linearity error of a sensor response, the y-axis of the paper's
// Figs. 2 and 3: the deviation of y(x) from a reference straight line,
// expressed in percent of the full-scale output span.
#pragma once

#include "analysis/linear_fit.hpp"

#include <span>
#include <vector>

namespace stsense::analysis {

/// Which straight line the residuals are measured against.
enum class FitKind {
    LeastSquares, ///< Best-fit line (the paper's metric).
    Endpoint,     ///< Line through the sweep endpoints.
};

/// Non-linearity analysis of one response curve.
struct NonlinearityResult {
    LinearFit fit;                     ///< The reference line used.
    std::vector<double> error_percent; ///< Residual at each x, % of full scale.
    double max_abs_percent = 0.0;      ///< max |error_percent|.
    double rms_percent = 0.0;          ///< RMS of error_percent.
    double full_scale = 0.0;           ///< |y| span used for normalization.
};

/// Computes the non-linearity of y(x). Preconditions: >= 3 points,
/// non-degenerate x and y spans; throws std::invalid_argument otherwise.
NonlinearityResult nonlinearity(std::span<const double> x,
                                std::span<const double> y,
                                FitKind kind = FitKind::LeastSquares);

/// Shorthand for the headline number (max |NL| in % of full scale).
double max_nonlinearity_percent(std::span<const double> x,
                                std::span<const double> y,
                                FitKind kind = FitKind::LeastSquares);

} // namespace stsense::analysis
