#include "analysis/polynomial.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace stsense::analysis {

double Polynomial::operator()(double x) const {
    double acc = 0.0;
    for (std::size_t i = coeffs.size(); i-- > 0;) acc = acc * x + coeffs[i];
    return acc;
}

Polynomial polyfit(std::span<const double> x, std::span<const double> y,
                   int degree) {
    if (degree < 0) throw std::invalid_argument("polyfit: negative degree");
    if (x.size() != y.size()) throw std::invalid_argument("polyfit: size mismatch");
    const std::size_t n = static_cast<std::size_t>(degree) + 1;
    if (x.size() < n) throw std::invalid_argument("polyfit: not enough points");

    // Normal equations: (V^T V) c = V^T y with Vandermonde V.
    std::vector<double> a(n * n, 0.0);
    std::vector<double> b(n, 0.0);
    std::vector<double> powers(2 * n - 1, 0.0);
    for (std::size_t i = 0; i < x.size(); ++i) {
        double xp = 1.0;
        for (std::size_t k = 0; k < 2 * n - 1; ++k) {
            powers[k] += xp;
            xp *= x[i];
        }
        xp = 1.0;
        for (std::size_t k = 0; k < n; ++k) {
            b[k] += xp * y[i];
            xp *= x[i];
        }
    }
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) a[r * n + c] = powers[r + c];
    }

    // Gaussian elimination with partial pivoting.
    std::vector<std::size_t> perm(n);
    for (std::size_t i = 0; i < n; ++i) perm[i] = i;
    for (std::size_t k = 0; k < n; ++k) {
        std::size_t pivot = k;
        double best = std::abs(a[perm[k] * n + k]);
        for (std::size_t r = k + 1; r < n; ++r) {
            if (std::abs(a[perm[r] * n + k]) > best) {
                best = std::abs(a[perm[r] * n + k]);
                pivot = r;
            }
        }
        if (best < 1e-300) throw std::invalid_argument("polyfit: singular system");
        std::swap(perm[k], perm[pivot]);
        for (std::size_t r = k + 1; r < n; ++r) {
            const double f = a[perm[r] * n + k] / a[perm[k] * n + k];
            for (std::size_t c = k; c < n; ++c) a[perm[r] * n + c] -= f * a[perm[k] * n + c];
            b[perm[r]] -= f * b[perm[k]];
        }
    }
    Polynomial p;
    p.coeffs.assign(n, 0.0);
    for (std::size_t ki = n; ki-- > 0;) {
        double sum = b[perm[ki]];
        for (std::size_t c = ki + 1; c < n; ++c) sum -= a[perm[ki] * n + c] * p.coeffs[c];
        p.coeffs[ki] = sum / a[perm[ki] * n + ki];
    }
    return p;
}

double max_residual(const Polynomial& p, std::span<const double> x,
                    std::span<const double> y) {
    if (x.size() != y.size()) throw std::invalid_argument("max_residual: size mismatch");
    double m = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        m = std::max(m, std::abs(y[i] - p(x[i])));
    }
    return m;
}

} // namespace stsense::analysis
