// Polynomial least-squares fitting (normal equations over a dense
// Gaussian elimination). Used for higher-order sensor inverse models in
// the calibration study.
#pragma once

#include <span>
#include <vector>

namespace stsense::analysis {

/// Polynomial with coefficients in ascending power order:
/// p(x) = c[0] + c[1] x + ... + c[n] x^n.
struct Polynomial {
    std::vector<double> coeffs;

    /// Horner evaluation; the zero polynomial evaluates to 0.
    double operator()(double x) const;

    int degree() const { return static_cast<int>(coeffs.size()) - 1; }
};

/// Least-squares polynomial fit of the given degree.
/// Preconditions: degree >= 0, points >= degree + 1, sizes match;
/// throws std::invalid_argument otherwise or if the system is singular.
Polynomial polyfit(std::span<const double> x, std::span<const double> y,
                   int degree);

/// Maximum absolute residual |y_i - p(x_i)|.
double max_residual(const Polynomial& p, std::span<const double> x,
                    std::span<const double> y);

} // namespace stsense::analysis
