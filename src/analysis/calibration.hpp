// Sensor calibration: mapping a raw reading (oscillation period or
// digital code) back to temperature.
//
// The paper names "sensor calibration" as one of the advantages the
// standard-cell style should preserve; the calibration bench quantifies
// how well one-point and two-point schemes hold up across process
// corners and die-to-die variation.
#pragma once

#include "analysis/polynomial.hpp"

#include <span>
#include <vector>

namespace stsense::analysis {

/// One calibration measurement: the sensor's raw reading at a known
/// temperature.
struct CalibrationPoint {
    double temperature_c = 0.0; ///< Reference temperature [deg C].
    double reading = 0.0;       ///< Raw sensor output at that temperature.
};

/// Linear reading -> temperature map: T = offset + gain * reading.
class LinearCalibration {
public:
    LinearCalibration() = default;
    LinearCalibration(double offset, double gain) : offset_(offset), gain_(gain) {}

    /// Two-point calibration through both measurements.
    /// Throws std::invalid_argument if the readings coincide.
    static LinearCalibration two_point(const CalibrationPoint& a,
                                       const CalibrationPoint& b);

    /// One-point calibration: the gain is taken from a nominal device
    /// characterization [deg C per reading unit]; only the offset is
    /// trimmed at the single reference temperature.
    static LinearCalibration one_point(const CalibrationPoint& a,
                                       double nominal_gain);

    /// Converts a raw reading to temperature [deg C].
    double temperature(double reading) const { return offset_ + gain_ * reading; }

    double offset() const { return offset_; }
    double gain() const { return gain_; }

private:
    double offset_ = 0.0;
    double gain_ = 0.0;
};

/// Polynomial reading -> temperature map fitted on many points,
/// for the higher-order calibration ablation.
class PolynomialCalibration {
public:
    /// Fits T(reading) of the given degree over the supplied points.
    PolynomialCalibration(std::span<const CalibrationPoint> points, int degree);

    double temperature(double reading) const { return poly_(reading); }
    const Polynomial& polynomial() const { return poly_; }

private:
    Polynomial poly_;
};

/// Accuracy of a calibration over a validation sweep.
struct CalibrationReport {
    std::vector<double> error_c; ///< Estimated minus true temperature, per point.
    double max_abs_error_c = 0.0;
    double rms_error_c = 0.0;
};

/// Applies `temperature(reading)` to every reading and compares against
/// the true temperatures. Sizes must match and be non-empty.
template <typename Calibration>
CalibrationReport evaluate_calibration(const Calibration& cal,
                                       std::span<const double> true_temp_c,
                                       std::span<const double> readings);

} // namespace stsense::analysis
