#include "analysis/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

namespace stsense::analysis {

namespace {

void check_nonempty(std::span<const double> samples, const char* what) {
    if (samples.empty()) {
        throw std::invalid_argument(std::string(what) + ": empty sample set");
    }
}

} // namespace

Summary summarize(std::span<const double> samples) {
    check_nonempty(samples, "summarize");
    Summary s;
    s.count = samples.size();
    s.min = samples[0];
    s.max = samples[0];
    double sum = 0.0;
    for (double v : samples) {
        sum += v;
        s.min = std::min(s.min, v);
        s.max = std::max(s.max, v);
    }
    s.mean = sum / static_cast<double>(s.count);
    double var = 0.0;
    for (double v : samples) var += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(var / static_cast<double>(s.count));
    return s;
}

double percentile(std::span<const double> samples, double p) {
    check_nonempty(samples, "percentile");
    if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p out of [0,100]");
    std::vector<double> sorted(samples.begin(), samples.end());
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1) return sorted[0];
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double f = rank - static_cast<double>(lo);
    return sorted[lo] + f * (sorted[hi] - sorted[lo]);
}

double rms(std::span<const double> samples) {
    check_nonempty(samples, "rms");
    double sum = 0.0;
    for (double v : samples) sum += v * v;
    return std::sqrt(sum / static_cast<double>(samples.size()));
}

double mean_abs(std::span<const double> samples) {
    check_nonempty(samples, "mean_abs");
    double sum = 0.0;
    for (double v : samples) sum += std::abs(v);
    return sum / static_cast<double>(samples.size());
}

} // namespace stsense::analysis
