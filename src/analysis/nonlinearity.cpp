#include "analysis/nonlinearity.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace stsense::analysis {

NonlinearityResult nonlinearity(std::span<const double> x,
                                std::span<const double> y, FitKind kind) {
    if (x.size() != y.size()) throw std::invalid_argument("nonlinearity: size mismatch");
    if (x.size() < 3) throw std::invalid_argument("nonlinearity: need >= 3 points");

    NonlinearityResult out;
    out.fit = kind == FitKind::LeastSquares ? least_squares(x, y) : endpoint_fit(x, y);

    const auto [ymin, ymax] = std::minmax_element(y.begin(), y.end());
    out.full_scale = *ymax - *ymin;
    if (out.full_scale <= 0.0) {
        throw std::invalid_argument("nonlinearity: degenerate y span");
    }

    out.error_percent.reserve(x.size());
    double sum_sq = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double e = 100.0 * (y[i] - out.fit(x[i])) / out.full_scale;
        out.error_percent.push_back(e);
        out.max_abs_percent = std::max(out.max_abs_percent, std::abs(e));
        sum_sq += e * e;
    }
    out.rms_percent = std::sqrt(sum_sq / static_cast<double>(x.size()));
    return out;
}

double max_nonlinearity_percent(std::span<const double> x,
                                std::span<const double> y, FitKind kind) {
    return nonlinearity(x, y, kind).max_abs_percent;
}

} // namespace stsense::analysis
