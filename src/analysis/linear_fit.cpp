#include "analysis/linear_fit.hpp"

#include <cmath>
#include <stdexcept>

namespace stsense::analysis {

namespace {

void check(std::span<const double> x, std::span<const double> y) {
    if (x.size() != y.size()) throw std::invalid_argument("fit: size mismatch");
    if (x.size() < 2) throw std::invalid_argument("fit: need >= 2 points");
}

double r_squared_of(std::span<const double> x, std::span<const double> y,
                    double slope, double intercept) {
    double mean_y = 0.0;
    for (double v : y) mean_y += v;
    mean_y /= static_cast<double>(y.size());

    double ss_res = 0.0;
    double ss_tot = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double fit = intercept + slope * x[i];
        ss_res += (y[i] - fit) * (y[i] - fit);
        ss_tot += (y[i] - mean_y) * (y[i] - mean_y);
    }
    if (ss_tot <= 0.0) return ss_res <= 0.0 ? 1.0 : 0.0;
    return 1.0 - ss_res / ss_tot;
}

} // namespace

LinearFit least_squares(std::span<const double> x, std::span<const double> y) {
    check(x, y);
    const double n = static_cast<double>(x.size());
    double sx = 0.0;
    double sy = 0.0;
    double sxx = 0.0;
    double sxy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        sx += x[i];
        sy += y[i];
        sxx += x[i] * x[i];
        sxy += x[i] * y[i];
    }
    const double denom = n * sxx - sx * sx;
    if (std::abs(denom) < 1e-300) {
        throw std::invalid_argument("least_squares: degenerate x values");
    }
    LinearFit f;
    f.slope = (n * sxy - sx * sy) / denom;
    f.intercept = (sy - f.slope * sx) / n;
    f.r_squared = r_squared_of(x, y, f.slope, f.intercept);
    return f;
}

LinearFit endpoint_fit(std::span<const double> x, std::span<const double> y) {
    check(x, y);
    const double dx = x.back() - x.front();
    if (std::abs(dx) < 1e-300) {
        throw std::invalid_argument("endpoint_fit: identical endpoints");
    }
    LinearFit f;
    f.slope = (y.back() - y.front()) / dx;
    f.intercept = y.front() - f.slope * x.front();
    f.r_squared = r_squared_of(x, y, f.slope, f.intercept);
    return f;
}

} // namespace stsense::analysis
