// Linear fits of y(x) series. The paper's non-linearity metric is the
// residual of the sensor response against its best straight line, so
// these fits are the measurement backbone of Figs. 2 and 3.
#pragma once

#include <span>

namespace stsense::analysis {

/// y = intercept + slope * x.
struct LinearFit {
    double slope = 0.0;
    double intercept = 0.0;
    double r_squared = 1.0; ///< Coefficient of determination.

    double operator()(double x) const { return intercept + slope * x; }
};

/// Ordinary least-squares fit. Preconditions: sizes match, >= 2 points,
/// x not all equal; throws std::invalid_argument otherwise.
LinearFit least_squares(std::span<const double> x, std::span<const double> y);

/// Endpoint fit: the line through (x.front, y.front) and (x.back,
/// y.back). This is the "two-point calibration" line of a sensor.
LinearFit endpoint_fit(std::span<const double> x, std::span<const double> y);

} // namespace stsense::analysis
