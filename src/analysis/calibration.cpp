#include "analysis/calibration.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace stsense::analysis {

LinearCalibration LinearCalibration::two_point(const CalibrationPoint& a,
                                               const CalibrationPoint& b) {
    const double dr = b.reading - a.reading;
    if (std::abs(dr) < 1e-300) {
        throw std::invalid_argument("two_point: identical readings");
    }
    const double gain = (b.temperature_c - a.temperature_c) / dr;
    const double offset = a.temperature_c - gain * a.reading;
    return LinearCalibration(offset, gain);
}

LinearCalibration LinearCalibration::one_point(const CalibrationPoint& a,
                                               double nominal_gain) {
    const double offset = a.temperature_c - nominal_gain * a.reading;
    return LinearCalibration(offset, nominal_gain);
}

PolynomialCalibration::PolynomialCalibration(
    std::span<const CalibrationPoint> points, int degree) {
    std::vector<double> r;
    std::vector<double> t;
    r.reserve(points.size());
    t.reserve(points.size());
    for (const auto& p : points) {
        r.push_back(p.reading);
        t.push_back(p.temperature_c);
    }
    poly_ = polyfit(r, t, degree);
}

template <typename Calibration>
CalibrationReport evaluate_calibration(const Calibration& cal,
                                       std::span<const double> true_temp_c,
                                       std::span<const double> readings) {
    if (true_temp_c.size() != readings.size() || true_temp_c.empty()) {
        throw std::invalid_argument("evaluate_calibration: bad sizes");
    }
    CalibrationReport rep;
    rep.error_c.reserve(readings.size());
    double sum_sq = 0.0;
    for (std::size_t i = 0; i < readings.size(); ++i) {
        const double e = cal.temperature(readings[i]) - true_temp_c[i];
        rep.error_c.push_back(e);
        rep.max_abs_error_c = std::max(rep.max_abs_error_c, std::abs(e));
        sum_sq += e * e;
    }
    rep.rms_error_c = std::sqrt(sum_sq / static_cast<double>(readings.size()));
    return rep;
}

// Explicit instantiations for the calibration types offered here.
template CalibrationReport evaluate_calibration<LinearCalibration>(
    const LinearCalibration&, std::span<const double>, std::span<const double>);
template CalibrationReport evaluate_calibration<PolynomialCalibration>(
    const PolynomialCalibration&, std::span<const double>, std::span<const double>);

} // namespace stsense::analysis
