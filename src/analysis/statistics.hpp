// Summary statistics over sample sets (Monte-Carlo calibration spreads,
// thermal-map errors, cycle jitter).
#pragma once

#include <span>

namespace stsense::analysis {

/// Standard summary of a sample set.
struct Summary {
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0; ///< Population standard deviation.
    double min = 0.0;
    double max = 0.0;
};

/// Computes the summary. Precondition: non-empty; throws otherwise.
Summary summarize(std::span<const double> samples);

/// p-th percentile (0..100) with linear interpolation between order
/// statistics. Precondition: non-empty, 0 <= p <= 100.
double percentile(std::span<const double> samples, double p);

/// Root-mean-square of the samples. Precondition: non-empty.
double rms(std::span<const double> samples);

/// Mean absolute value. Precondition: non-empty.
double mean_abs(std::span<const double> samples);

} // namespace stsense::analysis
