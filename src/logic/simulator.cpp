#include "logic/simulator.hpp"

#include <stdexcept>

namespace stsense::logic {

Simulator::Simulator(const Circuit& circuit)
    : circuit_(circuit),
      levels_(circuit.net_count(), Level::X),
      recorded_(circuit.net_count(), 0),
      histories_(circuit.net_count()) {}

void Simulator::set_input(NetId net, Level level, double time_ps) {
    if (circuit_.has_driver(net)) {
        throw std::invalid_argument("set_input: net '" + circuit_.net_name(net) +
                                    "' is driven by a gate");
    }
    if (time_ps < now_ps_) {
        throw std::invalid_argument("set_input: time in the past");
    }
    schedule(net, level, time_ps);
}

void Simulator::schedule_clock(NetId net, double period_ps, double t_start_ps,
                               double t_stop_ps, Level first) {
    if (period_ps <= 0.0) throw std::invalid_argument("schedule_clock: bad period");
    Level level = first;
    for (double t = t_start_ps; t < t_stop_ps; t += 0.5 * period_ps) {
        set_input(net, level, t);
        level = lnot(level);
    }
}

void Simulator::schedule(NetId net, Level level, double time_ps) {
    queue_.push({time_ps, seq_++, net, level});
}

void Simulator::record(NetId net) {
    if (net.index >= levels_.size()) throw std::invalid_argument("record: bad net");
    recorded_[net.index] = 1;
}

const std::vector<Change>& Simulator::history(NetId net) const {
    if (net.index >= levels_.size()) throw std::invalid_argument("history: bad net");
    return histories_[net.index];
}

Level Simulator::value(NetId net) const {
    if (net.index >= levels_.size()) throw std::invalid_argument("value: bad net");
    return levels_[net.index];
}

void Simulator::run_until(double t_ps) {
    while (!queue_.empty() && queue_.top().time_ps <= t_ps) {
        const Event ev = queue_.top();
        queue_.pop();
        now_ps_ = ev.time_ps;
        apply(ev);
    }
    now_ps_ = t_ps;
}

void Simulator::apply(const Event& ev) {
    ++events_processed_;
    const Level old = levels_[ev.net.index];
    if (old == ev.level) return;
    levels_[ev.net.index] = ev.level;
    if (recorded_[ev.net.index]) {
        histories_[ev.net.index].push_back({ev.time_ps, ev.level});
    }

    for (std::uint32_t g : circuit_.gate_fanout(ev.net)) {
        evaluate_gate_instance(g);
    }
    for (std::uint32_t f : circuit_.dff_fanout(ev.net)) {
        const Dff& dff = circuit_.dffs()[f];
        const bool is_clk = dff.clk == ev.net;
        const bool is_rst = dff.rst == ev.net;
        const bool clk_rose = is_clk && old == Level::Zero && ev.level == Level::One;
        const bool rst_active = is_rst && ev.level == Level::One;
        if (clk_rose || rst_active) {
            trigger_dff(f, clk_rose, rst_active);
        }
    }
}

void Simulator::evaluate_gate_instance(std::uint32_t gate_index) {
    const Gate& gate = circuit_.gates()[gate_index];
    std::vector<Level> in;
    in.reserve(gate.inputs.size());
    for (NetId n : gate.inputs) in.push_back(levels_[n.index]);
    const Level out = evaluate_gate(gate.kind, in);
    schedule(gate.output, out, now_ps_ + gate.delay_ps);
}

void Simulator::trigger_dff(std::uint32_t dff_index, bool clk_rose,
                            bool rst_active) {
    const Dff& dff = circuit_.dffs()[dff_index];
    if (rst_active) {
        schedule(dff.q, Level::Zero, now_ps_ + dff.clk_to_q_ps);
        return;
    }
    if (!clk_rose) return;
    // Clock edge with reset asserted keeps q low; X reset poisons q.
    const Level rst_level = levels_[dff.rst.index];
    if (rst_level == Level::One) {
        schedule(dff.q, Level::Zero, now_ps_ + dff.clk_to_q_ps);
    } else if (rst_level == Level::X) {
        schedule(dff.q, Level::X, now_ps_ + dff.clk_to_q_ps);
    } else {
        schedule(dff.q, levels_[dff.d.index], now_ps_ + dff.clk_to_q_ps);
    }
}

std::uint32_t read_bits(const Simulator& sim, const std::vector<NetId>& bits) {
    if (bits.size() > 32) throw std::invalid_argument("read_bits: > 32 bits");
    std::uint32_t value = 0;
    for (std::size_t i = 0; i < bits.size(); ++i) {
        const Level l = sim.value(bits[i]);
        if (l == Level::X) {
            throw std::runtime_error("read_bits: bit " + std::to_string(i) +
                                     " is X (uninitialized)");
        }
        if (l == Level::One) value |= 1u << i;
    }
    return value;
}

} // namespace stsense::logic
