// Gate-level netlist: nets, combinational gates (the same INV/NAND/NOR
// family the ring uses, plus AND/OR/XOR/BUF conveniences) and D
// flip-flops with asynchronous reset.
#pragma once

#include "logic/level.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace stsense::logic {

/// Opaque net handle.
struct NetId {
    std::uint32_t index = 0;
    friend bool operator==(NetId, NetId) = default;
};

enum class GateKind {
    Buf,
    Inv,
    And2,
    Or2,
    Xor2,
    Nand2,
    Nand3,
    Nor2,
    Nor3,
};

/// Number of inputs of a gate kind.
int gate_input_count(GateKind kind);

/// Evaluates a gate over its input levels (size must match the kind).
Level evaluate_gate(GateKind kind, const std::vector<Level>& inputs);

/// Combinational gate instance.
struct Gate {
    GateKind kind = GateKind::Inv;
    std::vector<NetId> inputs;
    NetId output;
    double delay_ps = 10.0;
};

/// Rising-edge D flip-flop with active-high asynchronous reset.
struct Dff {
    NetId clk;
    NetId d;
    NetId rst;
    NetId q;
    double clk_to_q_ps = 20.0;
};

/// Netlist container.
class Circuit {
public:
    NetId add_net(std::string name);

    /// Adds a gate; input count must match the kind, delay must be > 0,
    /// and the output net must not already have a driver.
    void add_gate(GateKind kind, std::vector<NetId> inputs, NetId output,
                  double delay_ps = 10.0);

    /// Adds a flip-flop; q must not already have a driver.
    void add_dff(NetId clk, NetId d, NetId rst, NetId q,
                 double clk_to_q_ps = 20.0);

    std::size_t net_count() const { return names_.size(); }
    const std::string& net_name(NetId n) const;
    bool has_driver(NetId n) const;

    const std::vector<Gate>& gates() const { return gates_; }
    const std::vector<Dff>& dffs() const { return dffs_; }

    /// Gates whose inputs include `n` (indices into gates()).
    const std::vector<std::uint32_t>& gate_fanout(NetId n) const;
    /// Flip-flops with clk or rst on `n` (indices into dffs()).
    const std::vector<std::uint32_t>& dff_fanout(NetId n) const;

private:
    void check_net(NetId n, const char* what) const;

    std::vector<std::string> names_;
    std::vector<bool> driven_;
    std::vector<Gate> gates_;
    std::vector<Dff> dffs_;
    std::vector<std::vector<std::uint32_t>> gate_fanout_;
    std::vector<std::vector<std::uint32_t>> dff_fanout_;
};

} // namespace stsense::logic
