#include "logic/vcd_export.hpp"

#include "util/vcd.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace stsense::logic {

void export_vcd(const std::string& path, const Circuit& circuit,
                const Simulator& sim, std::span<const NetId> nets,
                double ps_per_tick) {
    if (nets.empty()) throw std::invalid_argument("export_vcd: no nets");
    if (ps_per_tick <= 0.0) {
        throw std::invalid_argument("export_vcd: non-positive timescale");
    }

    util::VcdWriter vcd(path, "1ps");
    std::vector<int> ids;
    ids.reserve(nets.size());
    for (NetId n : nets) ids.push_back(vcd.add_wire(circuit.net_name(n)));

    // Merge all recorded changes into one time-ordered stream.
    struct Entry {
        double time_ps;
        std::size_t net_idx;
        Level level;
    };
    std::vector<Entry> entries;
    for (std::size_t k = 0; k < nets.size(); ++k) {
        for (const Change& ch : sim.history(nets[k])) {
            entries.push_back({ch.time_ps, k, ch.level});
        }
    }
    std::stable_sort(entries.begin(), entries.end(),
                     [](const Entry& a, const Entry& b) {
                         return a.time_ps < b.time_ps;
                     });

    // Initial snapshot: everything unknown at t = 0.
    vcd.time(0);
    for (int id : ids) vcd.change_wire_unknown(id);

    for (const Entry& e : entries) {
        vcd.time(static_cast<std::uint64_t>(
            std::llround(e.time_ps / ps_per_tick)));
        if (e.level == Level::X) {
            vcd.change_wire_unknown(ids[e.net_idx]);
        } else {
            vcd.change_wire(ids[e.net_idx], e.level == Level::One);
        }
    }
    vcd.finish();
}

} // namespace stsense::logic
