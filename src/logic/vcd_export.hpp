// Exports recorded gate-level waveforms as VCD wires (with 'x' for the
// unknown level), so the smart unit's digital activity can be inspected
// in a standard viewer alongside the analog ring traces.
#pragma once

#include "logic/simulator.hpp"

#include <span>
#include <string>

namespace stsense::logic {

/// Writes the recorded histories of `nets` into a VCD file. The nets
/// must have been record()-ed on `sim` before the events of interest;
/// nets without history simply show as 'x'. Times are quantized to
/// `ps_per_tick` picoseconds per VCD tick (default 1 ps). Throws on I/O
/// failure or empty net list.
void export_vcd(const std::string& path, const Circuit& circuit,
                const Simulator& sim, std::span<const NetId> nets,
                double ps_per_tick = 1.0);

} // namespace stsense::logic
