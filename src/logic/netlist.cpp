#include "logic/netlist.hpp"

#include <stdexcept>

namespace stsense::logic {

int gate_input_count(GateKind kind) {
    switch (kind) {
        case GateKind::Buf:
        case GateKind::Inv: return 1;
        case GateKind::And2:
        case GateKind::Or2:
        case GateKind::Xor2:
        case GateKind::Nand2:
        case GateKind::Nor2: return 2;
        case GateKind::Nand3:
        case GateKind::Nor3: return 3;
    }
    throw std::invalid_argument("gate_input_count: bad kind");
}

Level evaluate_gate(GateKind kind, const std::vector<Level>& in) {
    if (in.size() != static_cast<std::size_t>(gate_input_count(kind))) {
        throw std::invalid_argument("evaluate_gate: input count mismatch");
    }
    switch (kind) {
        case GateKind::Buf: return in[0];
        case GateKind::Inv: return lnot(in[0]);
        case GateKind::And2: return land(in[0], in[1]);
        case GateKind::Or2: return lor(in[0], in[1]);
        case GateKind::Xor2: return lxor(in[0], in[1]);
        case GateKind::Nand2: return lnot(land(in[0], in[1]));
        case GateKind::Nor2: return lnot(lor(in[0], in[1]));
        case GateKind::Nand3: return lnot(land(land(in[0], in[1]), in[2]));
        case GateKind::Nor3: return lnot(lor(lor(in[0], in[1]), in[2]));
    }
    throw std::invalid_argument("evaluate_gate: bad kind");
}

NetId Circuit::add_net(std::string name) {
    names_.push_back(std::move(name));
    driven_.push_back(false);
    gate_fanout_.emplace_back();
    dff_fanout_.emplace_back();
    return NetId{static_cast<std::uint32_t>(names_.size() - 1)};
}

void Circuit::add_gate(GateKind kind, std::vector<NetId> inputs, NetId output,
                       double delay_ps) {
    for (NetId n : inputs) check_net(n, "gate input");
    check_net(output, "gate output");
    if (inputs.size() != static_cast<std::size_t>(gate_input_count(kind))) {
        throw std::invalid_argument("add_gate: input count mismatch");
    }
    if (delay_ps <= 0.0) throw std::invalid_argument("add_gate: delay must be > 0");
    if (driven_[output.index]) {
        throw std::invalid_argument("add_gate: net '" + names_[output.index] +
                                    "' already has a driver");
    }
    driven_[output.index] = true;

    const auto gate_index = static_cast<std::uint32_t>(gates_.size());
    for (NetId n : inputs) gate_fanout_[n.index].push_back(gate_index);
    gates_.push_back({kind, std::move(inputs), output, delay_ps});
}

void Circuit::add_dff(NetId clk, NetId d, NetId rst, NetId q,
                      double clk_to_q_ps) {
    for (NetId n : {clk, d, rst, q}) check_net(n, "dff net");
    if (clk_to_q_ps <= 0.0) throw std::invalid_argument("add_dff: delay must be > 0");
    if (driven_[q.index]) {
        throw std::invalid_argument("add_dff: net '" + names_[q.index] +
                                    "' already has a driver");
    }
    driven_[q.index] = true;

    const auto dff_index = static_cast<std::uint32_t>(dffs_.size());
    dff_fanout_[clk.index].push_back(dff_index);
    dff_fanout_[rst.index].push_back(dff_index);
    dffs_.push_back({clk, d, rst, q, clk_to_q_ps});
}

const std::string& Circuit::net_name(NetId n) const {
    check_net(n, "net_name");
    return names_[n.index];
}

bool Circuit::has_driver(NetId n) const {
    check_net(n, "has_driver");
    return driven_[n.index];
}

const std::vector<std::uint32_t>& Circuit::gate_fanout(NetId n) const {
    check_net(n, "gate_fanout");
    return gate_fanout_[n.index];
}

const std::vector<std::uint32_t>& Circuit::dff_fanout(NetId n) const {
    check_net(n, "dff_fanout");
    return dff_fanout_[n.index];
}

void Circuit::check_net(NetId n, const char* what) const {
    if (n.index >= names_.size()) {
        throw std::invalid_argument(std::string(what) + ": net id out of range");
    }
}

} // namespace stsense::logic
