// Event-driven gate-level simulator (transport delays, 3-valued logic).
//
// Smaller sibling of the analog engine: where spice::Simulator solves
// the ring's differential equations, this one propagates discrete events
// through the smart unit's gates and flip-flops — at gate granularity,
// so the counter datapath itself is "cell-based" like everything else
// the paper builds.
#pragma once

#include "logic/netlist.hpp"

#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

namespace stsense::logic {

/// A recorded value change.
struct Change {
    double time_ps = 0.0;
    Level level = Level::X;
};

class Simulator {
public:
    /// The circuit must outlive the simulator. All nets start at X.
    explicit Simulator(const Circuit& circuit);

    /// Schedules an external drive of an undriven (primary input) net.
    /// Times must be >= the current simulation time.
    void set_input(NetId net, Level level, double time_ps);

    /// Convenience: schedules a 50%-duty clock on a primary input from
    /// t_start to t_stop (events are pre-scheduled; idle-rich clocks are
    /// fine at this scale).
    void schedule_clock(NetId net, double period_ps, double t_start_ps,
                        double t_stop_ps, Level first = Level::One);

    /// Runs all events with time <= t_ps; advances current time to t_ps.
    void run_until(double t_ps);

    /// Current level of a net.
    Level value(NetId net) const;

    /// Enables waveform recording for a net (from now on).
    void record(NetId net);
    /// Recorded changes of a net (empty when not recorded).
    const std::vector<Change>& history(NetId net) const;

    double now_ps() const { return now_ps_; }
    std::uint64_t events_processed() const { return events_processed_; }

private:
    struct Event {
        double time_ps;
        std::uint64_t seq; ///< FIFO tie-break for equal times.
        NetId net;
        Level level;
    };
    struct EventOrder {
        bool operator()(const Event& a, const Event& b) const {
            if (a.time_ps != b.time_ps) return a.time_ps > b.time_ps;
            return a.seq > b.seq;
        }
    };

    void schedule(NetId net, Level level, double time_ps);
    void apply(const Event& ev);
    void evaluate_gate_instance(std::uint32_t gate_index);
    void trigger_dff(std::uint32_t dff_index, bool clk_rose, bool rst_active);

    const Circuit& circuit_;
    std::vector<Level> levels_;
    std::vector<char> recorded_;
    std::vector<std::vector<Change>> histories_;
    std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
    double now_ps_ = 0.0;
    std::uint64_t seq_ = 0;
    std::uint64_t events_processed_ = 0;
};

/// Reads a bit-vector (LSB first) as an unsigned integer; throws
/// std::runtime_error if any bit is X.
std::uint32_t read_bits(const Simulator& sim, const std::vector<NetId>& bits);

} // namespace stsense::logic
