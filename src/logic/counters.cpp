#include "logic/counters.hpp"

#include <stdexcept>

namespace stsense::logic {

RippleCounter build_ripple_counter(Circuit& circuit, NetId clk, NetId rst,
                                   int bits, const std::string& prefix,
                                   double gate_delay_ps, double clk_to_q_ps) {
    if (bits < 1 || bits > 32) {
        throw std::invalid_argument("build_ripple_counter: bits out of [1, 32]");
    }
    RippleCounter rc;
    NetId stage_clk = clk;
    for (int i = 0; i < bits; ++i) {
        const NetId q = circuit.add_net(prefix + ".q" + std::to_string(i));
        const NetId nq = circuit.add_net(prefix + ".nq" + std::to_string(i));
        circuit.add_gate(GateKind::Inv, {q}, nq, gate_delay_ps);
        // Toggle configuration: d = !q; the next stage clocks on this
        // bit's falling edge, i.e. on nq's rising edge.
        circuit.add_dff(stage_clk, nq, rst, q, clk_to_q_ps);
        rc.q.push_back(q);
        stage_clk = nq;
    }
    return rc;
}

OscWindowCounter build_osc_window_counter(Circuit& circuit, int divider_bits,
                                          int count_bits, double gate_delay_ps,
                                          double clk_to_q_ps) {
    if (divider_bits < 1 || divider_bits > 20) {
        throw std::invalid_argument("build_osc_window_counter: divider_bits out of [1, 20]");
    }
    if (count_bits < 1 || count_bits > 32) {
        throw std::invalid_argument("build_osc_window_counter: count_bits out of [1, 32]");
    }

    OscWindowCounter c;
    c.divider_bits = divider_bits;
    c.osc = circuit.add_net("osc");
    c.ref = circuit.add_net("ref");
    c.rst = circuit.add_net("rst");
    c.gate_open = circuit.add_net("gate_open");

    // Oscillator gated by its own window: once the divider MSB (done)
    // rises, gate_open falls and the divider freezes — the window cannot
    // reopen until the next reset.
    const NetId osc_gated = circuit.add_net("osc_gated");
    circuit.add_gate(GateKind::And2, {c.osc, c.gate_open}, osc_gated,
                     gate_delay_ps);

    const RippleCounter divider = build_ripple_counter(
        circuit, osc_gated, c.rst, divider_bits + 1, "div", gate_delay_ps,
        clk_to_q_ps);
    c.divider = divider.q;
    c.done = divider.q.back();
    circuit.add_gate(GateKind::Inv, {c.done}, c.gate_open, gate_delay_ps);

    // Reference counter clocked only while the gate is open.
    const NetId ref_gated = circuit.add_net("ref_gated");
    circuit.add_gate(GateKind::And2, {c.ref, c.gate_open}, ref_gated,
                     gate_delay_ps);
    const RippleCounter result = build_ripple_counter(
        circuit, ref_gated, c.rst, count_bits, "cnt", gate_delay_ps, clk_to_q_ps);
    c.count = result.q;
    return c;
}

NetId build_ge_comparator(Circuit& circuit, const std::vector<NetId>& a,
                          const std::vector<NetId>& b,
                          const std::string& prefix, double gate_delay_ps) {
    if (a.empty() || a.size() != b.size()) {
        throw std::invalid_argument("build_ge_comparator: bad widths");
    }
    // acc_i = (a_i > b_i) OR ((a_i == b_i) AND acc_{i-1}), LSB upward,
    // with acc_{-1} = 1 folding into acc_0 = gt_0 OR eq_0.
    NetId acc{};
    for (std::size_t i = 0; i < a.size(); ++i) {
        const std::string tag = prefix + ".b" + std::to_string(i);
        const NetId nb = circuit.add_net(tag + ".nb");
        circuit.add_gate(GateKind::Inv, {b[i]}, nb, gate_delay_ps);
        const NetId gt = circuit.add_net(tag + ".gt");
        circuit.add_gate(GateKind::And2, {a[i], nb}, gt, gate_delay_ps);
        const NetId x = circuit.add_net(tag + ".x");
        circuit.add_gate(GateKind::Xor2, {a[i], b[i]}, x, gate_delay_ps);
        const NetId eq = circuit.add_net(tag + ".eq");
        circuit.add_gate(GateKind::Inv, {x}, eq, gate_delay_ps);

        if (i == 0) {
            const NetId acc0 = circuit.add_net(tag + ".acc");
            circuit.add_gate(GateKind::Or2, {gt, eq}, acc0, gate_delay_ps);
            acc = acc0;
        } else {
            const NetId keep = circuit.add_net(tag + ".keep");
            circuit.add_gate(GateKind::And2, {eq, acc}, keep, gate_delay_ps);
            const NetId next = circuit.add_net(tag + ".acc");
            circuit.add_gate(GateKind::Or2, {gt, keep}, next, gate_delay_ps);
            acc = next;
        }
    }
    return acc;
}

std::optional<std::uint32_t> run_gate_level_measurement(
    const Circuit& circuit, const OscWindowCounter& counter,
    double osc_period_ps, double ref_period_ps, double t_max_ps) {
    if (osc_period_ps <= 0.0 || ref_period_ps <= 0.0 || t_max_ps <= 0.0) {
        throw std::invalid_argument("run_gate_level_measurement: bad periods");
    }

    Simulator sim(circuit);

    // Reset pulse with quiet clocks, then release and start both clocks.
    const double t_release = 4.0 * ref_period_ps;
    sim.set_input(counter.rst, Level::One, 0.0);
    sim.set_input(counter.osc, Level::Zero, 0.0);
    sim.set_input(counter.ref, Level::Zero, 0.0);
    sim.set_input(counter.rst, Level::Zero, t_release - ref_period_ps);
    sim.schedule_clock(counter.osc, osc_period_ps, t_release, t_max_ps);
    sim.schedule_clock(counter.ref, ref_period_ps, t_release + 0.25 * ref_period_ps,
                       t_max_ps);

    // Run in chunks until done rises.
    const double chunk = 16.0 * osc_period_ps;
    double t = t_release;
    while (t < t_max_ps) {
        t += chunk;
        sim.run_until(t);
        if (sim.value(counter.done) == Level::One) {
            // Flush any in-flight ripple before reading the code.
            sim.run_until(t + 4.0 * ref_period_ps);
            return read_bits(sim, counter.count);
        }
    }
    return std::nullopt;
}

} // namespace stsense::logic
