// Three-valued logic levels (0, 1, X) with standard X-propagation.
//
// The gate-level model of the smart unit starts from an unknown power-on
// state; X-propagation proves the reset actually initializes every
// flip-flop before a measurement is trusted.
#pragma once

namespace stsense::logic {

enum class Level : unsigned char {
    Zero,
    One,
    X, ///< Unknown / uninitialized.
};

constexpr Level lnot(Level a) {
    if (a == Level::Zero) return Level::One;
    if (a == Level::One) return Level::Zero;
    return Level::X;
}

constexpr Level land(Level a, Level b) {
    if (a == Level::Zero || b == Level::Zero) return Level::Zero;
    if (a == Level::One && b == Level::One) return Level::One;
    return Level::X;
}

constexpr Level lor(Level a, Level b) {
    if (a == Level::One || b == Level::One) return Level::One;
    if (a == Level::Zero && b == Level::Zero) return Level::Zero;
    return Level::X;
}

constexpr Level lxor(Level a, Level b) {
    if (a == Level::X || b == Level::X) return Level::X;
    return a == b ? Level::Zero : Level::One;
}

constexpr char to_char(Level a) {
    return a == Level::Zero ? '0' : a == Level::One ? '1' : 'x';
}

} // namespace stsense::logic
