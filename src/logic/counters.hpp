// Gate-level building blocks of the smart unit's counter datapath, and
// the full OscWindow period counter assembled from them.
//
// This is the "digital processing bloc" of the paper realized at gate
// granularity: an oscillator-clocked divider opens a gate for 2^k ring
// periods, a gated reference counter measures the window, and the whole
// thing is nothing but the INV/NAND/NOR/DFF cells a standard-cell flow
// provides. logic::Simulator runs it event by event; the tests check it
// against the cycle-accurate digital::SmartUnit model.
#pragma once

#include "logic/simulator.hpp"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace stsense::logic {

/// Asynchronous (ripple) binary counter: bit i toggles on the falling
/// edge of bit i-1.
struct RippleCounter {
    std::vector<NetId> q; ///< LSB first.
};

/// Builds an n-bit ripple counter clocked by `clk`, reset by `rst`
/// (active high, asynchronous). Names are prefixed for debuggability.
RippleCounter build_ripple_counter(Circuit& circuit, NetId clk, NetId rst,
                                   int bits, const std::string& prefix,
                                   double gate_delay_ps = 5.0,
                                   double clk_to_q_ps = 15.0);

/// The gate-level OscWindow period counter.
struct OscWindowCounter {
    NetId osc;  ///< Primary input: (divided) ring-oscillator clock.
    NetId ref;  ///< Primary input: reference clock.
    NetId rst;  ///< Primary input: active-high reset.
    NetId gate_open; ///< High while the measurement window is open.
    NetId done;      ///< High once the window closed.
    std::vector<NetId> divider; ///< Oscillator divider bits (LSB first).
    std::vector<NetId> count;   ///< Result bits (LSB first).
    int divider_bits = 0;       ///< Window = 2^divider_bits osc periods.
};

/// Assembles the counter: the window self-closes after 2^divider_bits
/// oscillator rising edges (the divider's own MSB gates the oscillator
/// off, freezing the state), while the reference counter accumulates
/// gated reference edges. count_bits must be wide enough for the
/// expected code.
OscWindowCounter build_osc_window_counter(Circuit& circuit, int divider_bits,
                                          int count_bits,
                                          double gate_delay_ps = 5.0,
                                          double clk_to_q_ps = 15.0);

/// Drives a built counter through one complete measurement: reset pulse,
/// then free-running oscillator and reference clocks until `done` rises
/// (or the event budget runs out -> nullopt). Returns the captured code.
std::optional<std::uint32_t> run_gate_level_measurement(
    const Circuit& circuit, const OscWindowCounter& counter,
    double osc_period_ps, double ref_period_ps, double t_max_ps);

/// Combinational unsigned magnitude comparator: output = (A >= B), MSB-
/// first ripple of greater/equal terms built from INV/AND/OR/XOR cells.
/// `a` and `b` are LSB-first bit vectors of equal, non-zero width. This
/// is the gate-level half of the smart unit's over-temperature alarm
/// (code >= THRESHOLD).
NetId build_ge_comparator(Circuit& circuit, const std::vector<NetId>& a,
                          const std::vector<NetId>& b,
                          const std::string& prefix,
                          double gate_delay_ps = 5.0);

} // namespace stsense::logic
