// Artifact export: the files a downstream cell-based flow would consume.
//
//  * a Liberty (.lib) library of the sensor cells with (load x
//    temperature) delay tables,
//  * a VCD of the transistor-level ring waveform (opens in GTKWave &co),
//  * a CSV characterization sweep of the sensor response.
//
//   $ ./examples/export_artifacts [--dir=/tmp]
#include "cells/liberty.hpp"
#include "ring/spice_ring.hpp"
#include "sensor/smart_sensor.hpp"
#include "spice/simulator.hpp"
#include "spice/vcd_export.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

#include <iostream>
#include <string>
#include <vector>

int main(int argc, char** argv) {
    using namespace stsense;
    const util::Cli cli(argc, argv);
    const std::string dir = cli.get("dir", std::string("."));
    const auto tech = phys::cmos350();

    // 1. Liberty library of every sensor cell at 1x and 2x drive.
    std::vector<cells::CellSpec> specs;
    for (cells::CellKind k : cells::kAllCellKinds) {
        for (double drive : {1.0, 2.0}) {
            cells::CellSpec s;
            s.kind = k;
            s.drive = drive;
            specs.push_back(s);
        }
    }
    const std::string lib_path = dir + "/stsense_cmos350.lib";
    cells::write_liberty(lib_path, tech, specs);
    std::cout << "wrote " << lib_path << " (" << specs.size() << " cells)\n";

    // 2. VCD of the oscillating ring, all five stage nodes.
    const auto cfg = ring::RingConfig::uniform(cells::CellKind::Inv, 5, 2.75);
    const ring::SpiceRingModel model(tech, cfg);
    spice::Circuit ckt;
    const auto nodes = model.build(ckt);
    spice::Simulator sim(ckt);
    spice::TransientSpec tspec;
    tspec.t_stop = 2e-9;
    tspec.dt = 1e-12;
    tspec.start_from_dc = false;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        tspec.initial_conditions.emplace_back(nodes[i],
                                              i % 2 == 0 ? 0.0 : tech.vdd);
    }
    tspec.probes = nodes;
    const auto res = sim.transient(tspec);
    const std::string vcd_path = dir + "/ring_waveform.vcd";
    spice::export_vcd(vcd_path, res.traces);
    std::cout << "wrote " << vcd_path << " (" << res.traces.size()
              << " analog traces, " << res.traces.front().size()
              << " samples)\n";

    // 3. Sensor response characterization CSV.
    sensor::SmartTemperatureSensor s(tech, cfg);
    s.calibrate_two_point(0.0, 100.0);
    const std::string csv_path = dir + "/sensor_response.csv";
    util::CsvWriter csv(csv_path);
    csv.header({"temp_c", "period_ps", "code", "reading_c", "error_c"});
    for (double t = -50.0; t <= 150.0; t += 5.0) {
        const auto m = s.measure(t);
        csv.row({t, s.period_at(t) * 1e12, static_cast<double>(m.code),
                 m.temperature_c, m.temperature_c - t});
    }
    std::cout << "wrote " << csv_path << " (" << csv.rows_written()
              << " rows)\n";
    return 0;
}
