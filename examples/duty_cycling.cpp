// Self-heating management: why the smart unit can disable its
// oscillator. Drives the cycle-accurate SmartUnit through several
// sampling policies and reports the oscillator duty and the resulting
// self-heating bias for each.
//
//   $ ./examples/duty_cycling
#include "digital/smart_unit.hpp"
#include "sensor/presets.hpp"
#include "sensor/smart_sensor.hpp"
#include "thermal/self_heating.hpp"
#include "util/table.hpp"

#include <iostream>

int main() {
    using namespace stsense;
    const auto tech = phys::cmos350();
    const auto cfg = sensor::presets::paper_ring();
    const double die_c = 85.0;

    // One measurement through the real FSM to get its true duty cost.
    sensor::SmartTemperatureSensor probe(tech, cfg);
    const double period = probe.period_at(die_c);

    digital::SmartUnitConfig ucfg;
    ucfg.gate = sensor::default_gate();
    digital::SmartUnit unit(ucfg, [&](int) { return period; });
    unit.measure_blocking(0);
    const std::uint64_t busy_cycles = unit.cycles_osc_enabled();
    const double t_ref = 1.0 / ucfg.gate.ref_freq_hz;
    std::cout << "one measurement keeps the ring enabled for " << busy_cycles
              << " ref cycles (" << busy_cycles * t_ref * 1e6 << " us)\n\n";

    // Sampling policies: how often does thermal management need a reading?
    struct Policy {
        const char* name;
        double interval_s;
    };
    const Policy policies[] = {
        {"free-running (never disabled)", 0.0},
        {"10 kHz sampling", 1e-4},
        {"1 kHz sampling", 1e-3},
        {"100 Hz sampling", 1e-2},
        {"1 Hz sampling", 1.0},
    };

    util::Table table({"policy", "oscillator duty", "junction rise (degC)"});
    const double t_meas = static_cast<double>(busy_cycles) * t_ref;
    for (const auto& p : policies) {
        const double duty =
            p.interval_s == 0.0 ? 1.0 : std::min(1.0, t_meas / p.interval_s);
        thermal::SelfHeatingParams sh;
        sh.duty = duty;
        const auto r = thermal::solve_self_heating(tech, cfg, die_c, sh);
        table.add_row({p.name, util::fixed(duty, 6), util::fixed(r.delta_c, 4)});
    }
    std::cout << table.render();

    std::cout << "\nfree-running, the sensor reads its own heat (several degC); "
                 "duty-cycled through the smart unit's disable, the bias "
                 "vanishes — the feature the paper calls out in Section 3.\n";
    return 0;
}
