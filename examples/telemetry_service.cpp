// The resident thermal-telemetry daemon: N die sessions behind a
// newline-delimited JSON protocol, a shared thread pool + result cache,
// weighted fair queuing, and the lazily-evaluated object-model query
// surface (state.sessions[i].sites[j].health, state.pool.queue_depth).
//
//   $ ./examples/telemetry_service --demo            # scripted loopback tour
//   $ ./examples/telemetry_service --socket=/tmp/stsense.sock --sessions=4
//   ... then drive it with ./examples/telemetry_client
#include "stsense.hpp"

#include <iostream>
#include <string>
#include <vector>

using namespace stsense;

namespace {

std::vector<service::SessionSpec> make_sessions(int n) {
    std::vector<service::SessionSpec> specs;
    for (int i = 0; i < n; ++i) {
        service::SessionSpec spec;
        spec.name = "die-" + std::to_string(i);
        // The paper configuration per die: 3x3 sites on the demo
        // floorplan, health supervision on so quarantine/recovery state
        // shows up in the object model.
        spec.runtime.health(true);
        specs.push_back(std::move(spec));
    }
    return specs;
}

/// Scripted in-process tour over the loopback transport — the same
/// protocol stack a socket client exercises, no OS socket needed.
int run_demo(service::Server& server) {
    service::LoopbackTransport loopback;
    server.start(loopback);
    auto conn = loopback.connect();

    const std::vector<std::string> script = {
        R"({"id":1,"method":"hello","params":{"weight":2}})",
        R"({"id":2,"method":"sessions"})",
        R"({"id":3,"method":"thermal_map","params":{"session":0}})",
        R"({"id":4,"method":"measure_site","params":{"session":1,"site":4}})",
        R"({"id":5,"method":"sweep","params":{"t_min_c":-50,"t_max_c":150,"points":9}})",
        R"({"id":6,"method":"query","params":{"path":"pool"}})",
        R"({"id":7,"method":"query","params":{"path":"sessions[0].sites[4]","filter":"*"}})",
        R"({"id":8,"method":"query","params":{"path":"state","depth":1}})",
        R"({"id":9,"method":"query","params":{"path":"cache","filter":"hit*"}})",
        R"({"id":10,"method":"dtm_run","params":{"session":0,"duration_s":0.4,"grid":12}})",
        R"({"id":11,"method":"query","params":{"path":"sessions[0].dtm.regions[0]","filter":"*"}})",
        // Request-lifecycle tour: an already-expired deadline is shed
        // typed (`deadline-unmet`) before any work runs; a deadline that
        // lapses mid-burn unwinds at the next poll point; cancel of an
        // answered id reports cancelled:false (nothing left in flight);
        // the metrics node shows the counters those paths bumped.
        R"({"id":12,"method":"sweep","params":{"points":9},"deadline_ms":0.0001})",
        R"({"id":13,"method":"burn","params":{"ms":500},"deadline_ms":25})",
        R"({"id":14,"method":"cancel","params":{"request":13}})",
        R"({"id":15,"method":"query","params":{"path":"metrics"}})",
        R"({"id":16,"method":"shutdown","params":{"mode":"drain"}})",
    };
    for (const auto& line : script) {
        std::cout << "-> " << line << "\n";
        if (!conn->write_line(line)) break;
        std::string response;
        if (!conn->read_line(response)) break;
        std::cout << "<- " << response << "\n\n";
    }
    server.wait();
    std::cout << "served " << server.requests_total() << " requests, "
              << server.errors_total() << " errors\n";
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    const int n_sessions = cli.get("sessions", 4);

    service::ServerConfig cfg;
    cfg.threads = cli.get("threads", 0);
    cfg.spool_dir = cli.get("spool", std::string{});
    cfg.limits.max_inflight_per_client = cli.get("max-inflight", 8);
    service::Server server(cfg, make_sessions(n_sessions));

    if (cli.has("demo")) return run_demo(server);

    const std::string socket_path =
        cli.get("socket", std::string("/tmp/stsense-telemetry.sock"));
    try {
        service::UnixSocketTransport transport(socket_path);
        std::cout << "stsense telemetry daemon: " << n_sessions
                  << " session(s), pool of " << server.pool().size()
                  << ", listening on " << socket_path << "\n"
                  << "stop with: ./examples/telemetry_client --socket="
                  << socket_path << " --method=shutdown\n";
        server.serve(transport); // blocks until a shutdown request
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    std::cout << "drained and stopped; served " << server.requests_total()
              << " requests\n";
    return 0;
}
