// Quickstart: build a smart temperature sensor from standard cells,
// calibrate it at two temperatures, and read the die temperature as a
// digital word — the complete happy path of the library in ~40 lines.
//
//   $ ./examples/quickstart
//
// Set STSENSE_TRACE=/tmp/quickstart_trace.json to record a Chrome
// trace of the run (open in chrome://tracing or ui.perfetto.dev).
#include "stsense.hpp"

#include <iostream>

int main() {
    using namespace stsense;

    // 0. Runtime configuration lives in one builder. Everything here is
    //    the default; tracing arms itself only when STSENSE_TRACE names
    //    a path (the session writes the trace file when main returns).
    const auto rt = RuntimeOptions().validate();
    const auto trace = rt.trace_session();

    // 1. Pick a technology and a ring built from stock inverting cells.
    //    (Ratio 2.75 is near the linearity optimum for this node — see
    //    examples/design_space.cpp for how to find it.)
    const phys::Technology tech = phys::cmos350();
    const ring::RingConfig ring_cfg =
        ring::RingConfig::uniform(cells::CellKind::Inv, /*n=*/5, /*ratio=*/2.75);

    // 2. Construct the smart sensor: ring oscillator + period counter +
    //    fixed-point converter, all behind one object.
    sensor::SmartTemperatureSensor sensor(tech, ring_cfg);

    std::cout << "ring: " << ring::describe(ring_cfg) << " in " << tech.name
              << "\nperiod at 27 degC: " << sensor.period_at(27.0) * 1e12
              << " ps\nnon-linearity over -50..150 degC: "
              << sensor.nonlinearity_percent() << " % of full scale\n\n";

    // 3. Two-point factory calibration (0 and 100 degC insertions).
    sensor.calibrate_two_point(0.0, 100.0);

    // 4. Measure. Each call runs the cycle-accurate smart unit: the ring
    //    is enabled, the gate counts, the fixed-point datapath converts.
    util::Table table({"die temp (degC)", "code", "reading (degC)", "error (degC)",
                       "meas time (us)"});
    for (double t : {-40.0, 0.0, 27.0, 85.0, 125.0}) {
        const sensor::Measurement m = sensor.measure(t);
        table.add_row({util::fixed(t, 1), std::to_string(m.code),
                       util::fixed(m.temperature_c, 3),
                       util::fixed(m.temperature_c - t, 3),
                       util::fixed(m.measurement_time_s * 1e6, 1)});
    }
    std::cout << table.render();

    std::cout << "\nresolution at 27 degC: " << sensor.resolution_c(27.0)
              << " degC/LSB\n";
    return 0;
}
