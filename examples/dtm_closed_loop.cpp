// Closed-loop thermal management: the smart sensor driving a throttle.
// Prints a timeline of the die heating up, tripping the DTM policy, and
// settling into a managed limit cycle — plus the same run unmanaged.
// Then the supervised fleet: per-region autotuned PID controllers with
// fault supervision, regulating every block to a target instead of
// banging a single hysteresis throttle.
//
//   $ ./examples/dtm_closed_loop [--trip=110] [--throttle=0.4]
//   $ ./examples/dtm_closed_loop --trace=/tmp/dtm_trace.json
//   $ ./examples/dtm_closed_loop --no-fleet   # skip the fleet section
#include "stsense.hpp"

#include <iostream>
#include <string>
#include <vector>

int main(int argc, char** argv) {
    using namespace stsense;
    const util::Cli cli(argc, argv);

    // The unified knob surface: tracing (also honors STSENSE_TRACE) and
    // any runtime tuning ride the same builder every example uses.
    const auto rt = stsense::RuntimeOptions()
                        .trace(cli.get("trace", std::string{}));
    const auto trace = rt.trace_session();

    dtm::ClosedLoopConfig cfg;
    cfg.grid_nx = 24;
    cfg.grid_ny = 24;
    cfg.t_end_s = 3.0;
    cfg.dt_s = 5e-3;
    cfg.sample_interval_s = 2e-2;
    cfg.policy.trip_c = cli.get("trip", 110.0);
    cfg.policy.release_c = cli.get("release", 100.0);
    cfg.policy.throttle_factor = cli.get("throttle", 0.4);
    cfg.sensor_site = {"hotspot", 2.5e-3, 7.0e-3};

    const auto tech = phys::cmos350();
    const auto ring_cfg = ring::RingConfig::uniform(cells::CellKind::Inv, 5, 2.75);
    const auto fp = thermal::demo_floorplan();

    std::cout << "policy: throttle core+fpu to " << cfg.policy.throttle_factor
              << "x when the sensor reads >= " << cfg.policy.trip_c
              << " degC, release at " << cfg.policy.release_c << " degC\n\n";

    const auto managed = dtm::ClosedLoopSim(tech, ring_cfg, fp, cfg).run();
    cfg.dtm_enabled = false;
    const auto unmanaged = dtm::ClosedLoopSim(tech, ring_cfg, fp, cfg).run();

    // Plot both peak-temperature trajectories.
    std::vector<double> t;
    std::vector<double> peak_on;
    std::vector<double> peak_off;
    for (std::size_t i = 0; i < managed.trace.size(); i += 4) {
        t.push_back(managed.trace[i].time_s);
        peak_on.push_back(managed.trace[i].peak_c);
        peak_off.push_back(unmanaged.trace[i].peak_c);
    }
    util::PlotOptions popt;
    popt.width = 70;
    popt.height = 14;
    popt.x_label = "time (s)";
    popt.y_label = "die peak temperature (degC)";
    std::cout << util::ascii_plot_multi(t, {peak_on, peak_off},
                                        {"DTM on", "DTM off"}, popt);

    util::Table table({"", "peak (degC)", "time > trip (ms)", "avg power factor",
                       "throttle events"});
    table.add_row({"DTM on", util::fixed(managed.peak_c, 2),
                   util::fixed(1e3 * managed.time_above_trip_s, 0),
                   util::fixed(managed.avg_power_factor, 3),
                   std::to_string(managed.throttle_transitions)});
    table.add_row({"DTM off", util::fixed(unmanaged.peak_c, 2),
                   util::fixed(1e3 * unmanaged.time_above_trip_s, 0), "1.000", "0"});
    std::cout << "\n" << table.render();

    std::cout << "\nthe sensor's digitized readings gate the throttle: the die "
                 "rides the hysteresis band instead of running away.\n";

    if (cli.has("no-fleet")) return 0;

    // ---- the supervised fleet: one tuned PID per region ----------------
    // Step-response autotune identifies each region's FOPDT model, SIMC
    // sets the gains, and a per-region supervisor watches for sensor
    // loss, excursions, stuck actuators, and dead loops — latching a
    // safe state instead of chasing a lying reading.
    std::cout << "\n== supervised DTM fleet ==\n";
    const auto layout = dtm::fleet_layout_from_floorplan(fp);
    sensor::MonitorConfig mc;
    mc.grid_nx = 24;
    mc.grid_ny = 24;
    mc.enable_health = true;
    dtm::DtmFleet fleet(tech, ring_cfg, fp, layout.regions, layout.sites, mc,
                        dtm::ControlOptions()
                            .target(cli.get("target", 95.0))
                            .trip(cfg.policy.trip_c)
                            .duration(cli.get("duration", 3.0)));
    fleet.tune();
    const auto res = fleet.run();

    util::Table fleet_table({"region", "K (degC)", "tau (ms)", "kp", "ki",
                             "u final", "T final (degC)", "state"});
    for (std::size_t r = 0; r < fleet.region_count(); ++r) {
        const auto& rt = res.regions[r];
        fleet_table.add_row(
            {rt.name, util::fixed(rt.model.gain_c, 1),
             util::fixed(1e3 * rt.model.tau_s, 0),
             util::fixed(rt.gains.kp, 4), util::fixed(rt.gains.ki, 3),
             util::fixed(rt.u, 3), util::fixed(rt.true_c, 2),
             dtm::to_string(rt.state)});
    }
    std::cout << fleet_table.render();
    std::cout << "\ndie peak " << util::fixed(res.die_peak_c, 2)
              << " degC, settled at "
              << (res.settling_time_s < 0.0
                      ? std::string("never")
                      : util::fixed(res.settling_time_s, 2) + " s")
              << ", fault latches " << res.fault_latches
              << " — each region regulated to its own loop, and a lying "
                 "sensor parks its region at the throttle floor instead of "
                 "cooking the die.\n";
    return 0;
}
