// Design-space exploration: both of the paper's optimization axes.
//
//  1. Transistor-level (Fig. 2): sweep the Wp/Wn ratio and let the
//     golden-section optimizer find the linearity optimum.
//  2. Cell-based (Fig. 3): enumerate every 5-stage mix of stock cells
//     and rank them — no custom sizing required.
//
//   $ ./examples/design_space [--tech=cmos180]
#include "sensor/optimizer.hpp"

#include "phys/technology.hpp"
#include "util/cli.hpp"
#include "util/sequence.hpp"
#include "util/table.hpp"

#include <iostream>
#include <string>

int main(int argc, char** argv) {
    using namespace stsense;
    const util::Cli cli(argc, argv);
    const auto tech = phys::technology_by_name(cli.get("tech", std::string("cmos350")));

    // --- Axis 1: transistor sizing ------------------------------------
    std::cout << "== axis 1: Wp/Wn ratio of a 5-inverter ring (" << tech.name
              << ") ==\n";
    const auto ratios = util::linspace(1.0, 5.0, 9);
    util::Table rt({"Wp/Wn", "max |NL| (%)", "period @27C (ps)"});
    for (const auto& p : sensor::ratio_sweep(tech, cells::CellKind::Inv, 5, ratios)) {
        rt.add_row({util::fixed(p.ratio, 2), util::fixed(p.max_nl_percent, 4),
                    util::fixed(p.period_27c_s * 1e12, 1)});
    }
    std::cout << rt.render();

    const auto opt = sensor::optimize_ratio(tech, cells::CellKind::Inv, 5, 1.0, 5.0);
    std::cout << "\noptimum: Wp/Wn = " << util::fixed(opt.ratio, 3) << " with "
              << util::fixed(opt.max_nl_percent, 4) << " % max |NL| ("
              << opt.evaluations << " sweep evaluations)\n";

    // --- Axis 2: stock-cell selection ---------------------------------
    std::cout << "\n== axis 2: stock-cell mixes at the library ratio ("
              << util::fixed(tech.library_ratio, 2) << ") ==\n";
    const auto mixes = sensor::enumerate_mixes(tech, cells::kAllCellKinds, 5);
    std::cout << "enumerated " << mixes.size() << " 5-stage multisets of "
              << "{INV, NAND2, NAND3, NOR2, NOR3}\n\n";

    util::Table mt({"rank", "configuration", "max |NL| (%)"});
    for (std::size_t i = 0; i < 10 && i < mixes.size(); ++i) {
        mt.add_row({std::to_string(i + 1), mixes[i].name,
                    util::fixed(mixes[i].max_nl_percent, 4)});
    }
    mt.add_row({"...", "", ""});
    mt.add_row({std::to_string(mixes.size()), mixes.back().name,
                util::fixed(mixes.back().max_nl_percent, 4)});
    std::cout << mt.render();

    std::cout << "\ntakeaway: the best stock-cell mix ("
              << mixes.front().name << ", "
              << util::fixed(mixes.front().max_nl_percent, 4)
              << " %) recovers most of the custom-sizing optimum ("
              << util::fixed(opt.max_nl_percent, 4)
              << " %) without touching a single transistor — the paper's "
                 "cell-based design argument.\n";
    return 0;
}
