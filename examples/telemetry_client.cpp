// Minimal client for the telemetry daemon: one request per invocation,
// or an interactive line loop. Subscription events arriving while a
// response is awaited are printed as they come.
//
//   $ ./examples/telemetry_client --method=ping
//   $ ./examples/telemetry_client --method=thermal_map --params='{"session":1}'
//   $ ./examples/telemetry_client --query='sessions[0].sites[4].health'
//   $ ./examples/telemetry_client --interactive      # raw JSON lines on stdin
#include "stsense.hpp"

#include <iostream>
#include <string>

using namespace stsense;

namespace {

/// Sends one line and prints everything until the matching response.
int roundtrip(service::Connection& conn, const std::string& line,
              std::int64_t id) {
    if (!conn.write_line(line)) {
        std::cerr << "error: daemon closed the connection\n";
        return 1;
    }
    std::string received;
    while (conn.read_line(received)) {
        std::cout << received << "\n";
        auto parsed = service::Json::parse(received);
        if (parsed.value && !parsed.value->contains("event") &&
            parsed.value->at("id").as_int64() == id) {
            return parsed.value->at("ok").as_bool() ? 0 : 2;
        }
    }
    std::cerr << "error: connection closed before the response\n";
    return 1;
}

} // namespace

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    const std::string socket_path =
        cli.get("socket", std::string("/tmp/stsense-telemetry.sock"));

    auto conn = service::UnixSocketTransport::dial(socket_path);
    if (!conn) {
        std::cerr << "error: cannot reach daemon at " << socket_path
                  << " (start it with ./examples/telemetry_service)\n";
        return 1;
    }

    if (cli.has("interactive")) {
        std::int64_t next_id = 1;
        std::string input;
        while (std::getline(std::cin, input)) {
            if (input.empty()) continue;
            const int rc = roundtrip(*conn, input, next_id);
            if (rc == 1) return rc; // connection gone
            ++next_id;
        }
        return 0;
    }

    const std::int64_t id = cli.get("id", 1);
    service::Json req = service::Json::object();
    req.set("id", id);

    const std::string query = cli.get("query", std::string{});
    if (!query.empty()) {
        // --query=path is shorthand for the object-model read.
        service::Json params = service::Json::object();
        params.set("path", query);
        const int depth = cli.get("depth", -1);
        if (depth >= 0) params.set("depth", depth);
        const std::string filter = cli.get("filter", std::string{});
        if (!filter.empty()) params.set("filter", filter);
        req.set("method", "query");
        req.set("params", std::move(params));
    } else {
        req.set("method", cli.get("method", std::string("ping")));
        const std::string params_text = cli.get("params", std::string{});
        if (!params_text.empty()) {
            auto parsed = service::Json::parse(params_text);
            if (!parsed.value) {
                std::cerr << "error: --params is not valid JSON: "
                          << parsed.error << "\n";
                return 1;
            }
            req.set("params", std::move(*parsed.value));
        }
    }
    return roundtrip(*conn, req.dump(), id);
}
