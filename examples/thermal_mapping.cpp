// Thermal mapping: the paper's flagship application. Nine ring sensors
// distributed over a microprocessor-like die, read through the smart
// unit's channel multiplexer, reconstructing the hotspot field produced
// by the RC thermal model.
//
//   $ ./examples/thermal_mapping [--sensors=4]   # 4x4 instead of 3x3
//   $ ./examples/thermal_mapping --health --redundancy=3 \
//         --trace=/tmp/map_trace.json   # resilient scan, traced
#include "stsense.hpp"

#include <algorithm>
#include <iostream>
#include <string>

int main(int argc, char** argv) {
    using namespace stsense;
    const util::Cli cli(argc, argv);
    const int n = cli.get("sensors", 3);

    // All runtime knobs live in one validated builder: the resilient
    // readout (health supervision + replica voting) and the trace path
    // (also honors STSENSE_TRACE when --trace is not given).
    const auto rt = stsense::RuntimeOptions()
                        .health(cli.has("health"))
                        .redundancy(cli.get("redundancy", 1))
                        .trace(cli.get("trace", std::string{}));
    const auto trace = rt.trace_session();

    // A 10x10 mm die with a hot core, an FPU, a cache and an I/O column.
    const thermal::Floorplan fp = thermal::demo_floorplan();
    std::cout << "die: " << fp.die_width() * 1e3 << " x " << fp.die_height() * 1e3
              << " mm, " << fp.total_power() << " W across " << fp.blocks().size()
              << " blocks\n\n";

    // Identical ring sensors at an n x n grid of sites, one mux channel each.
    const auto sites = sensor::uniform_sites(fp, n, n);
    const sensor::ThermalMonitor monitor(
        phys::cmos350(), ring::RingConfig::uniform(cells::CellKind::Inv, 5, 2.75),
        fp, sites, rt.monitor_config());

    const sensor::MapResult map = monitor.scan();

    // Render the measured map as a coarse heat grid (bottom row last).
    std::cout << "measured thermal map (degC):\n";
    for (int iy = n - 1; iy >= 0; --iy) {
        for (int ix = 0; ix < n; ++ix) {
            std::cout << util::fixed(map.sites[static_cast<std::size_t>(iy) *
                                               static_cast<std::size_t>(n) + ix]
                                         .measured_c,
                                     1)
                      << (ix + 1 < n ? "  " : "\n");
        }
    }

    util::Table table({"sensor", "true (degC)", "measured (degC)", "error (degC)"});
    for (const auto& r : map.sites) {
        table.add_row({r.name, util::fixed(r.true_c, 2),
                       util::fixed(r.measured_c, 2), util::fixed(r.error_c, 3)});
    }
    std::cout << "\n" << table.render();

    const auto hottest = std::max_element(
        map.sites.begin(), map.sites.end(), [](const auto& a, const auto& b) {
            return a.measured_c < b.measured_c;
        });
    std::cout << "\nhottest sensor: " << hottest->name << " at "
              << util::fixed(hottest->measured_c, 2)
              << " degC (die peak between sites: " << util::fixed(map.die_peak_c, 2)
              << " degC)\nmap error: max " << util::fixed(map.max_abs_error_c, 3)
              << " degC, rms " << util::fixed(map.rms_error_c, 3)
              << " degC\nfull scan through the mux: "
              << util::fixed(map.scan_time_s * 1e6, 1) << " us\n";

    std::cout << "\nfor a resident multi-die version of this scan behind a "
                 "query protocol,\nsee examples/telemetry_service.cpp "
                 "(service::Session wraps this exact stack).\n";
    return 0;
}
