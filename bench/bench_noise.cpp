// NOISE — measurement repeatability: ring cycle jitter (averaged over
// the gate) + gate-phase quantization, vs gate length. Shows that at
// realistic jitter levels the smart unit's repeatability is set by the
// counter LSB — the averaging gate is doing its job.
#include "bench_common.hpp"

#include "analysis/statistics.hpp"
#include "sensor/smart_sensor.hpp"
#include "util/cli.hpp"

#include <iostream>

using namespace stsense;

namespace {

struct Row {
    std::uint32_t gate = 0;
    double lsb_c = 0.0;
    double stddev_c = 0.0;
    double span_c = 0.0;
};

Row measure_repeatability(const phys::Technology& tech, std::uint32_t gate,
                          double jitter_rel, int n, std::uint64_t seed) {
    sensor::SensorOptions opt;
    opt.gate = sensor::default_gate();
    opt.gate.osc_cycles = gate;
    opt.cycle_jitter_rel = jitter_rel;
    sensor::SmartTemperatureSensor s(
        tech, ring::RingConfig::uniform(cells::CellKind::Inv, 5, 2.75), opt);
    s.calibrate_two_point(0.0, 100.0);

    util::Rng rng(seed);
    std::vector<double> readings;
    readings.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) readings.push_back(s.measure(85.0, rng).temperature_c);
    const auto sum = analysis::summarize(readings);

    Row row;
    row.gate = gate;
    row.lsb_c = s.resolution_c(85.0);
    row.stddev_c = sum.stddev;
    row.span_c = sum.max - sum.min;
    return row;
}

} // namespace

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    bench::banner("NOISE",
                  "measurement repeatability vs gate length (400 readings at "
                  "85 degC, 0.2% cycle jitter)");

    const auto tech = phys::technology_by_name(cli.get("tech", std::string("cmos350")));
    const double jitter = cli.get("jitter", 2e-3);
    const int n = cli.get("n", 400);

    util::Table table({"gate (osc cycles)", "LSB (degC)", "stddev (degC)",
                       "span (degC)"});
    std::vector<Row> rows;
    for (std::uint32_t g : {1u << 12, 1u << 14, 1u << 16, 1u << 18, 1u << 20}) {
        rows.push_back(measure_repeatability(tech, g, jitter, n, 42));
        const auto& r = rows.back();
        table.add_row({std::to_string(r.gate), util::fixed(r.lsb_c, 4),
                       util::fixed(r.stddev_c, 4), util::fixed(r.span_c, 4)});
    }
    std::cout << table.render();

    // Same gates with the ring noise turned off: quantization-only floor.
    std::cout << "\nquantization-only floor (jitter = 0):\n";
    util::Table qtable({"gate (osc cycles)", "stddev (degC)"});
    std::vector<Row> quiet;
    for (std::uint32_t g : {1u << 12, 1u << 16, 1u << 20}) {
        quiet.push_back(measure_repeatability(tech, g, 0.0, n, 43));
        qtable.add_row({std::to_string(quiet.back().gate),
                        util::fixed(quiet.back().stddev_c, 4)});
    }
    std::cout << qtable.render();

    bench::ShapeChecks checks;
    checks.expect("repeatability improves monotonically with gate length",
                  [&] {
                      for (std::size_t i = 1; i < rows.size(); ++i) {
                          if (rows[i].stddev_c >= rows[i - 1].stddev_c) return false;
                      }
                      return true;
                  }());
    checks.expect("scatter tracks the quantization LSB (within 2x of LSB)",
                  [&] {
                      for (const auto& r : rows) {
                          if (r.stddev_c > 2.0 * r.lsb_c + 0.01) return false;
                      }
                      return true;
                  }());
    checks.expect("realistic ring jitter adds < 50 % over the quantization floor",
                  rows[2].stddev_c < 1.5 * quiet[1].stddev_c + 0.01);
    checks.expect("longest gate reaches < 0.02 degC repeatability",
                  rows.back().stddev_c < 0.02);
    return checks.report();
}
