// SCALE — extension study: the paper's introduction motivates thermal
// monitoring with junction temperatures rising from 0.35 um to 0.13 um
// technologies. This bench ports the sensor to the 0.18 um and 0.13 um
// presets and re-runs the Fig. 2-style optimization on each node.
#include "bench_common.hpp"

#include "analysis/nonlinearity.hpp"
#include "ring/analytic.hpp"
#include "ring/sweep.hpp"
#include "sensor/optimizer.hpp"
#include "util/cli.hpp"

#include <iostream>

using namespace stsense;

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    bench::banner("SCALE",
                  "sensor portability across technology nodes (0.35/0.18/0.13 um)");

    util::Table table({"node", "Vdd (V)", "period @27C (ps)", "sens (%/K)",
                       "NL @lib ratio (%)", "best ratio", "NL @best (%)"});
    std::vector<double> best_nls;
    for (const std::string name : {"cmos350", "cmos180", "cmos130"}) {
        const auto tech = phys::technology_by_name(name);
        const auto lib_cfg = ring::RingConfig::uniform(cells::CellKind::Inv, 5);
        const auto sw = ring::paper_sweep(tech, lib_cfg);
        const double nl_lib =
            analysis::max_nonlinearity_percent(sw.temps_c, sw.period_s);
        const ring::AnalyticRingModel m(tech, lib_cfg);
        const double p27 = m.period(300.15);

        const auto opt = sensor::optimize_ratio(tech, cells::CellKind::Inv, 5,
                                                0.8, 6.0);
        best_nls.push_back(opt.max_nl_percent);
        table.add_row({name, util::fixed(tech.vdd, 2), util::fixed(p27 * 1e12, 1),
                       util::fixed(100.0 * m.sensitivity(300.15) / p27, 4),
                       util::fixed(nl_lib, 4), util::fixed(opt.ratio, 2),
                       util::fixed(opt.max_nl_percent, 4)});
    }
    std::cout << table.render();
    std::cout << "\n(The optimum ratio moves with the node's device balance — the "
                 "reason the paper prefers retuning by *cell selection*, which "
                 "needs no layout change.)\n";

    bench::ShapeChecks checks;
    checks.expect("ratio optimization lands below 0.35 % NL on every node",
                  [&] {
                      for (double nl : best_nls) {
                          if (nl >= 0.35) return false;
                      }
                      return true;
                  }());
    checks.expect("scaled nodes oscillate faster at iso-config",
                  [&] {
                      const auto p = [&](const char* n) {
                          const auto tech = phys::technology_by_name(n);
                          return ring::AnalyticRingModel(
                                     tech,
                                     ring::RingConfig::uniform(cells::CellKind::Inv, 5))
                              .period(300.15);
                      };
                      return p("cmos130") < p("cmos180") && p("cmos180") < p("cmos350");
                  }());
    return checks.report();
}
