// UNIT-GATE — gate-level validation of the smart unit's counter: the
// OscWindow datapath built from INV/AND/DFF cells and run on the
// event-driven logic simulator, fed the analytic ring's period across
// temperature, against the behavioural (cycle-accurate) model.
#include "bench_common.hpp"

#include "digital/period_counter.hpp"
#include "logic/counters.hpp"
#include "ring/analytic.hpp"
#include "util/cli.hpp"

#include <cmath>
#include <iostream>

using namespace stsense;

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    bench::banner("UNIT-GATE",
                  "gate-level OscWindow counter (event-driven sim) vs the "
                  "behavioural model across temperature");

    const auto tech = phys::technology_by_name(cli.get("tech", std::string("cmos350")));
    const auto cfg_ring = ring::RingConfig::uniform(cells::CellKind::Inv, 5, 2.75);
    const ring::AnalyticRingModel ring_model(tech, cfg_ring);

    // The ring is divided by 2^4 locally; the counter gates over 2^7
    // divided periods against a 125 MHz reference.
    const int pre_divider_log2 = 4;
    const int divider_bits = 7;
    const double ref_period_ps = 8000.0;

    digital::GateConfig behav;
    behav.scheme = digital::GatingScheme::OscWindow;
    behav.osc_cycles = 1u << divider_bits;
    behav.ref_freq_hz = 1e12 / ref_period_ps;
    behav.divider_log2 = pre_divider_log2;

    util::Table table({"T (degC)", "ring period (ps)", "gate-level code",
                       "behavioural code", "delta"});
    bool all_close = true;
    std::vector<double> codes;
    for (double tc = -50.0; tc <= 150.0; tc += 50.0) {
        const double period_s = ring_model.period(273.15 + tc);
        const double divided_ps = period_s * 1e12 * (1 << pre_divider_log2);

        logic::Circuit circuit;
        const auto counter =
            logic::build_osc_window_counter(circuit, divider_bits, 14);
        const auto gate_code = logic::run_gate_level_measurement(
            circuit, counter, divided_ps, ref_period_ps, 2e7);
        const std::uint32_t behav_code =
            digital::quantized_code(behav, period_s);

        const bool ok = gate_code.has_value() &&
                        std::abs(static_cast<double>(*gate_code) -
                                 static_cast<double>(behav_code)) <= 2.0;
        all_close = all_close && ok;
        codes.push_back(static_cast<double>(gate_code.value_or(0)));
        table.add_row({util::fixed(tc, 0), util::fixed(period_s * 1e12, 2),
                       std::to_string(gate_code.value_or(0)),
                       std::to_string(behav_code),
                       util::fixed(static_cast<double>(gate_code.value_or(0)) -
                                       static_cast<double>(behav_code),
                                   0)});
    }
    std::cout << table.render();

    std::cout << "\n(The gate-level counter is nothing but INV/AND2/DFF "
                 "standard cells on the event-driven simulator — the 'cell-"
                 "based' claim applies to the processing block too.)\n";

    bench::ShapeChecks checks;
    checks.expect("gate-level and behavioural codes agree within 2 counts "
                  "at every temperature",
                  all_close);
    checks.expect("gate-level codes increase monotonically with temperature",
                  [&] {
                      for (std::size_t i = 1; i < codes.size(); ++i) {
                          if (codes[i] <= codes[i - 1]) return false;
                      }
                      return true;
                  }());
    return checks.report();
}
