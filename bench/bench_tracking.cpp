// UNIT-TRACK — transient tracking: how fast the sampled smart sensor
// sees a workload power step. Detection latency decomposes into the
// die's thermal time constant plus the sampling interval — the number a
// thermal-management designer needs to size the paper's mux'd scan rate.
#include "bench_common.hpp"

#include "sensor/smart_sensor.hpp"
#include "thermal/floorplan.hpp"
#include "thermal/grid.hpp"
#include "util/cli.hpp"

#include <cmath>
#include <iostream>
#include <optional>

using namespace stsense;

namespace {

struct TrackResult {
    double detect_latency_s = -1.0; ///< Step -> reading crosses threshold.
    double settle_value_c = 0.0;
};

/// Steps the core block's power at t_step and reports when the sampled
/// sensor reading crosses `detect_c`.
TrackResult run_tracking(const phys::Technology& tech, double sample_interval_s,
                         double detect_c) {
    const int n = 24;
    thermal::Floorplan fp(10e-3, 10e-3);
    fp.add_block({"core", 1.0e-3, 5.5e-3, 3.5e-3, 3.5e-3, 22.0});
    fp.add_block({"rest", 1.0e-3, 1.0e-3, 8.0e-3, 3.5e-3, 8.0});

    const thermal::GridParams params;
    const thermal::ThermalGrid grid(n, n, fp.die_width(), fp.die_height(), params);
    const auto power_on = fp.power_map(n, n);
    // Before the step only the background block burns power.
    thermal::Floorplan fp_idle(10e-3, 10e-3);
    fp_idle.add_block({"rest", 1.0e-3, 1.0e-3, 8.0e-3, 3.5e-3, 8.0});
    const auto power_idle = fp_idle.power_map(n, n);

    sensor::SmartTemperatureSensor s(
        tech, ring::RingConfig::uniform(cells::CellKind::Inv, 5, 2.75));
    s.calibrate_two_point(0.0, 100.0);

    const double dt = 2.5e-3;
    const double t_step = 0.4;
    const double t_end = 2.5;
    const double sx = 2.5e-3;
    const double sy = 7.0e-3; // On the core block.

    std::vector<double> temps(static_cast<std::size_t>(n) * n, params.ambient_c);
    double next_sample = 0.0;
    double reading = params.ambient_c;

    TrackResult out;
    for (double t = 0.0; t < t_end; t += dt) {
        if (t >= next_sample) {
            reading = s.measure(grid.sample(temps, sx, sy)).temperature_c;
            if (out.detect_latency_s < 0.0 && t >= t_step && reading >= detect_c) {
                out.detect_latency_s = t - t_step;
            }
            next_sample += sample_interval_s;
        }
        grid.transient_step(temps, t < t_step ? power_idle : power_on, dt);
    }
    out.settle_value_c = reading;
    return out;
}

} // namespace

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    bench::banner("UNIT-TRACK",
                  "detection latency of a 22 W core power step vs sensor "
                  "sampling interval (detect at +20 degC)");

    const auto tech = phys::technology_by_name(cli.get("tech", std::string("cmos350")));
    const double detect_c = 45.0 + 20.0;

    util::Table table({"sampling interval (ms)", "detection latency (ms)",
                       "settled reading (degC)"});
    std::vector<double> latencies;
    const std::vector<double> intervals{5e-3, 2e-2, 1e-1, 4e-1};
    for (double si : intervals) {
        const auto r = run_tracking(tech, si, detect_c);
        latencies.push_back(r.detect_latency_s);
        table.add_row({util::fixed(si * 1e3, 0),
                       r.detect_latency_s < 0.0
                           ? std::string("not detected")
                           : util::fixed(r.detect_latency_s * 1e3, 1),
                       util::fixed(r.settle_value_c, 1)});
    }
    std::cout << table.render();
    std::cout << "\n(Latency ~= thermal rise time to the detect level plus up "
                 "to one sampling interval; the paper's ~50 us measurement "
                 "itself is negligible at these scales.)\n";

    bench::ShapeChecks checks;
    checks.expect("the step is detected at every sampling rate",
                  [&] {
                      for (double l : latencies) {
                          if (l < 0.0) return false;
                      }
                      return true;
                  }());
    checks.expect("latency grows with the sampling interval",
                  latencies.back() > latencies.front());
    checks.expect("slowest policy's extra latency is bounded by one interval",
                  latencies.back() - latencies.front() < intervals.back() + 1e-3);
    checks.expect("fast sampling reaches the thermal-limited floor (< 150 ms)",
                  latencies.front() < 0.15);
    return checks.report();
}
