// UNIT-SELFHEAT — the paper's disable feature (Sec. 3): "the possibility
// to disable the oscillator in order to minimize self-heating".
// Quantifies the self-heating-induced measurement error of a
// free-running ring vs a duty-cycled one.
#include "bench_common.hpp"

#include "sensor/presets.hpp"
#include "thermal/self_heating.hpp"
#include "util/cli.hpp"

#include <iostream>

using namespace stsense;

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    bench::banner("UNIT-SELFHEAT",
                  "oscillator self-heating vs enable duty cycle "
                  "(motivates the smart unit's disable feature)");

    const auto tech = phys::technology_by_name(cli.get("tech", std::string("cmos350")));
    const auto cfg = sensor::presets::paper_ring();
    const double die_c = cli.get("die", 85.0);

    std::cout << "ring dynamic power at " << util::fixed(die_c, 1)
              << " degC: " << util::fixed(
                     thermal::ring_dynamic_power(tech, cfg, 273.15 + die_c) * 1e3, 3)
              << " mW; local spreading resistance "
              << util::fixed(thermal::SelfHeatingParams{}.r_local, 0) << " K/W\n\n";

    util::Table table({"enable duty", "avg power (mW)", "junction rise (degC)",
                       "reading bias (degC)"});
    std::vector<double> duties{1.0, 0.5, 0.2, 0.1, 0.05, 0.01, 0.001, 0.0};
    std::vector<double> rises;
    for (double duty : duties) {
        thermal::SelfHeatingParams p;
        p.duty = duty;
        const auto r = thermal::solve_self_heating(tech, cfg, die_c, p);
        // The junction rise IS the reading bias of an externally
        // calibrated sensor (the ring transduces its own junction).
        table.add_row({util::fixed(duty, 3), util::fixed(r.avg_power_w * 1e3, 4),
                       util::fixed(r.delta_c, 4), util::fixed(r.delta_c, 4)});
        rises.push_back(r.delta_c);
    }
    std::cout << table.render();

    std::cout << "\n(One measurement with the default gate takes ~30-50 us; a "
                 "1 Hz sampling policy is a duty of ~5e-5 — self-heating "
                 "becomes negligible exactly as the paper's disable feature "
                 "intends.)\n";

    bench::ShapeChecks checks;
    checks.expect("free-running self-heating is a real error (> 1 degC)",
                  rises.front() > 1.0);
    checks.expect("junction rise decreases monotonically with duty",
                  [&] {
                      for (std::size_t i = 1; i < rises.size(); ++i) {
                          if (rises[i] > rises[i - 1] + 1e-12) return false;
                      }
                      return true;
                  }());
    checks.expect("disable (duty 0) removes self-heating entirely",
                  rises.back() < 1e-9);
    checks.expect("1 % duty keeps the bias below 0.05 degC",
                  [&] {
                      for (std::size_t i = 0; i < duties.size(); ++i) {
                          if (duties[i] == 0.01) return rises[i] < 0.05;
                      }
                      return false;
                  }());
    return checks.report();
}
