// DTM — the application loop the paper's introduction motivates:
// sensor-driven dynamic thermal management. Closed-loop co-simulation of
// the RC thermal model, the smart sensor and a hysteretic throttle, over
// a policy sweep (sampling rate, throttle depth), against the unmanaged
// baseline.
#include "bench_common.hpp"

#include "dtm/closed_loop.hpp"
#include "util/cli.hpp"

#include <iostream>

using namespace stsense;

namespace {

dtm::ClosedLoopConfig base_config() {
    dtm::ClosedLoopConfig c;
    c.grid_nx = 24;
    c.grid_ny = 24;
    c.t_end_s = 3.0;
    c.dt_s = 5e-3;
    c.sample_interval_s = 2e-2;
    c.policy.trip_c = 110.0;
    c.policy.release_c = 100.0;
    c.policy.throttle_factor = 0.4;
    c.sensor_site = {"hotspot", 2.5e-3, 7.0e-3};
    return c;
}

dtm::ClosedLoopResult run(const dtm::ClosedLoopConfig& cfg) {
    return dtm::ClosedLoopSim(
               phys::cmos350(),
               ring::RingConfig::uniform(cells::CellKind::Inv, 5, 2.75),
               thermal::demo_floorplan(), cfg)
        .run();
}

} // namespace

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    bench::banner("DTM",
                  "closed-loop dynamic thermal management driven by the smart "
                  "sensor (trip 110 degC / release 100 degC)");

    // Baseline: no management.
    dtm::ClosedLoopConfig cfg = base_config();
    cfg.dtm_enabled = false;
    const auto off = run(cfg);

    struct PolicyRow {
        std::string name;
        dtm::ClosedLoopResult result;
    };
    std::vector<PolicyRow> rows;
    rows.push_back({"DTM off", off});

    cfg = base_config();
    rows.push_back({"20 ms sampling, 0.4x throttle", run(cfg)});

    cfg = base_config();
    cfg.sample_interval_s = 2e-1;
    rows.push_back({"200 ms sampling, 0.4x throttle", run(cfg)});

    cfg = base_config();
    cfg.policy.throttle_factor = 0.7;
    rows.push_back({"20 ms sampling, 0.7x throttle", run(cfg)});

    cfg = base_config();
    cfg.policy.trip_c = 120.0;
    cfg.policy.release_c = 112.0;
    rows.push_back({"20 ms sampling, trip 120 degC", run(cfg)});

    util::Table table({"policy", "peak (degC)", "time > trip (ms)",
                       "avg power factor", "transitions"});
    for (const auto& r : rows) {
        table.add_row({r.name, util::fixed(r.result.peak_c, 2),
                       util::fixed(1e3 * r.result.time_above_trip_s, 0),
                       util::fixed(r.result.avg_power_factor, 3),
                       std::to_string(r.result.throttle_transitions)});
    }
    std::cout << table.render();

    const auto& fast = rows[1].result;
    const auto& slow = rows[2].result;
    const auto& shallow = rows[3].result;

    std::cout << "\n(Peak = die-wide true peak over the 3 s run. 'time > trip' "
                 "counts true-peak time above the 110 degC trip.)\n";

    bench::ShapeChecks checks;
    checks.expect("unmanaged die exceeds the trip by > 5 degC",
                  off.peak_c > 115.0);
    checks.expect("DTM cuts the peak vs unmanaged", fast.peak_c < off.peak_c - 3.0);
    checks.expect("DTM slashes time above trip (die peak sits above the "
                  "sensed site, so some residual remains)",
                  fast.time_above_trip_s < 0.5 * off.time_above_trip_s);
    checks.expect("slower sampling -> more overshoot",
                  slow.peak_c > fast.peak_c);
    checks.expect("deep throttle limit-cycles; a shallow one settles inside "
                  "the hysteresis band (far fewer transitions)",
                  shallow.throttle_transitions < fast.throttle_transitions / 4);
    checks.expect("management costs performance (power factor < 1)",
                  fast.avg_power_factor < 1.0);
    return checks.report();
}
