// DTM — sensor-driven dynamic thermal management, now as the supervised
// closed-loop fleet: per-region autotuned PID controllers reading
// through the degraded-readout monitor, watched by per-region fault
// supervisors. The bench measures the control quality of the fault-free
// loop (settling time, overshoot, bitwise supervision-on/off parity)
// and then replays seeded FaultInjector chaos scenarios (dead region,
// stuck actuator, drifted / stuck / NaN sensors) with and without
// supervision, proving the envelope invariant: no region's true
// temperature exceeds trip + 5 degC while supervised.
//
//   $ ./bench/bench_dtm [--quick] [--chaos] [--json=BENCH_dtm.json]
//
// `--chaos` adds the fault-scenario matrix (the tier-1 stage runs it
// with a pinned STSENSE_FAULT_SEED). Writes BENCH_dtm.json.
#include "bench_common.hpp"

#include "dtm/fleet.hpp"
#include "exec/fault_injector.hpp"
#include "exec/metrics.hpp"
#include "phys/technology.hpp"
#include "ring/config.hpp"
#include "thermal/floorplan.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

#include <cmath>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

using namespace stsense;

namespace {

dtm::ControlOptions control_options(bool quick, bool supervised) {
    return dtm::ControlOptions()
        .target(95.0)
        .trip(110.0)
        .duration(quick ? 1.5 : 3.0)
        .control_dt(2e-2)
        .sim_dt(5e-3)
        .supervised(supervised);
}

dtm::DtmFleet make_fleet(bool quick, bool supervised) {
    const auto fp = thermal::demo_floorplan();
    const auto layout = dtm::fleet_layout_from_floorplan(fp);
    sensor::MonitorConfig mc;
    mc.grid_nx = quick ? 24 : 32;
    mc.grid_ny = quick ? 24 : 32;
    mc.enable_health = true;
    return dtm::DtmFleet(
        phys::cmos350(), ring::RingConfig::uniform(cells::CellKind::Inv, 5, 2.75),
        fp, layout.regions, layout.sites, mc, control_options(quick, supervised));
}

/// First time the region shows FaultedSafe; -1 when it never does.
double detect_latency_s(const dtm::FleetResult& res, std::size_t region) {
    for (const auto& s : res.steps) {
        if (s.state[region] == dtm::ControlState::FaultedSafe) return s.t_s;
    }
    return -1.0;
}

double region_peak(const dtm::FleetResult& res, std::size_t region) {
    return res.regions[region].peak_true_c;
}

/// Supervisor-ladder recovery latency, measured on the state machine
/// directly: fault for `fault_steps`, then feed clean observations and
/// count steps until Active again (backoff wait + probation).
int ladder_recovery_steps(const dtm::SupervisorConfig& cfg, int fault_steps) {
    dtm::ControllerSupervisor sup(cfg);
    sup.mark_tuned();
    dtm::Observation bad;
    bad.reading_valid = false;
    bad.trust = 0.0;
    dtm::Observation good;
    good.measured_c = 95.0;
    good.predicted_c = 95.0;
    good.predicted_prev_c = 95.0;
    for (int i = 0; i < fault_steps; ++i) sup.observe(bad);
    int steps = 0;
    while (sup.state() != dtm::ControlState::Active && steps < 10000) {
        if (sup.should_probe()) sup.begin_probe();
        sup.observe(good);
        ++steps;
    }
    return steps;
}

struct ChaosRow {
    std::string name;
    std::size_t region = 0;
    dtm::ControlFault expected = dtm::ControlFault::None;
    double detect_s = -1.0;
    double peak_supervised_c = 0.0;
    double peak_raw_c = 0.0;
    dtm::ControlFault latched = dtm::ControlFault::None;
};

} // namespace

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    const bool quick = cli.has("quick");
    const bool chaos = cli.has("chaos");
    bench::banner("DTM",
                  "fault-supervised closed-loop fleet: autotuned per-region "
                  "PID vs the thermal envelope (target 95 / trip 110 degC)");

    bench::ShapeChecks checks;

    // ---- fault-free: control quality + supervision parity --------------
    auto fleet_sup = make_fleet(quick, true);
    auto fleet_raw = make_fleet(quick, false);
    fleet_sup.tune();
    fleet_raw.tune();
    const auto clean_sup = fleet_sup.run();
    const auto clean_raw = fleet_raw.run();

    std::size_t parity_mismatches = 0;
    for (std::size_t k = 0; k < clean_sup.steps.size(); ++k) {
        const auto& a = clean_sup.steps[k];
        const auto& b = clean_raw.steps[k];
        for (std::size_t r = 0; r < a.u.size(); ++r) {
            const bool same_meas =
                (std::isnan(a.measured_c[r]) && std::isnan(b.measured_c[r])) ||
                a.measured_c[r] == b.measured_c[r];
            if (a.u[r] != b.u[r] || a.u_achieved[r] != b.u_achieved[r] ||
                a.true_c[r] != b.true_c[r] || !same_meas) {
                ++parity_mismatches;
            }
        }
    }

    util::Table clean_table({"run", "die peak (degC)", "max overshoot (degC)",
                             "settling (ms)", "fault latches"});
    auto add_clean = [&](const std::string& name, const dtm::FleetResult& r) {
        clean_table.add_row(
            {name, util::fixed(r.die_peak_c, 2), util::fixed(r.max_overshoot_c, 2),
             r.settling_time_s < 0.0 ? std::string("never")
                                     : util::fixed(1e3 * r.settling_time_s, 0),
             std::to_string(r.fault_latches)});
    };
    add_clean("supervised", clean_sup);
    add_clean("supervision off", clean_raw);
    std::cout << clean_table.render();

    util::Table region_table({"region", "state", "last fault", "latches",
                              "u (final)", "true (degC)", "peak (degC)"});
    for (const auto& rt : clean_sup.regions) {
        region_table.add_row({rt.name, dtm::to_string(rt.state),
                              dtm::to_string(rt.last_fault),
                              std::to_string(rt.supervisor.fault_latches),
                              util::fixed(rt.u, 3), util::fixed(rt.true_c, 2),
                              util::fixed(rt.peak_true_c, 2)});
    }
    std::cout << "\n" << region_table.render();
    std::cout << "\ntuned models: ";
    for (std::size_t r = 0; r < fleet_sup.region_count(); ++r) {
        const auto& m = fleet_sup.model(r);
        std::cout << fleet_sup.region(r).name << " (K=" << util::fixed(m.gain_c, 1)
                  << " degC, tau=" << util::fixed(1e3 * m.tau_s, 0) << " ms) ";
    }
    std::cout << "\n";

    const int recovery_steps =
        ladder_recovery_steps(control_options(quick, true).supervisor_config(), 6);
    const double recovery_s =
        recovery_steps * control_options(quick, true).control_dt_s();
    std::cout << "ladder recovery latency (6 faulted steps, then clean): "
              << recovery_steps << " steps = " << util::fixed(1e3 * recovery_s, 0)
              << " ms\n";

    checks.expect("fault-free supervised run is bitwise the unsupervised run",
                  parity_mismatches == 0);
    checks.expect("fault-free run latches no faults",
                  clean_sup.fault_latches == 0);
    checks.expect("every region settles into the band",
                  clean_sup.settling_time_s >= 0.0);
    checks.expect("closed loop holds the die under the trip line",
                  clean_sup.die_peak_c < 110.0);
    checks.expect("ladder recovers a cleaned fault (backoff + probation)",
                  recovery_steps > 0 && recovery_steps < 200);

    // ---- chaos matrix ---------------------------------------------------
    std::vector<ChaosRow> rows;
    if (chaos) {
        const std::uint64_t seed = exec::FaultInjector::seed_from_env(20260808);
        std::cout << "\nchaos scenarios (fault seed " << seed << "):\n";

        struct Scenario {
            std::string name;
            exec::FaultInjector::Config cfg;
            std::size_t region;
            dtm::ControlFault expected;
        };
        std::vector<Scenario> scenarios;
        {
            exec::FaultInjector::Config c;
            c.seed = seed;
            c.p_region_kill = 1.0;
            c.only_units = {0};
            scenarios.push_back({"region-kill (core sensors dead)", c, 0,
                                 dtm::ControlFault::SensorLoss});
        }
        {
            exec::FaultInjector::Config c;
            c.seed = seed;
            c.p_actuator_stuck = 1.0;
            // 0.9, not 1.0: with the hottest block stuck at full power
            // the steady die peak stays above trip + 5 even with every
            // neighbor at the throttle floor — past the fleet's
            // actuation authority, no policy can hold the envelope.
            // Stuck-at-90% is still runaway-hot but winnable.
            c.stuck_factor = 0.9;
            c.only_units = {0};
            scenarios.push_back({"actuator stuck at 90% power (core)", c, 0,
                                 dtm::ControlFault::StuckActuator});
        }
        {
            exec::FaultInjector::Config c;
            c.seed = seed;
            c.p_drift_site = 1.0;
            c.drift_offset_c = -25.0;
            c.only_units = {0}; // ring 0 = the core region's site
            // A drifted-but-plausible reading passes the readout's
            // checks; the fleet's model-envelope detector is what
            // catches it, so the latched fault is Excursion.
            scenarios.push_back({"sensor drifts 25 degC cold (core)", c, 0,
                                 dtm::ControlFault::Excursion});
        }
        {
            exec::FaultInjector::Config c;
            c.seed = seed;
            c.p_stuck_osc = 1.0;
            c.only_units = {0};
            scenarios.push_back({"stuck oscillator (core site)", c, 0,
                                 dtm::ControlFault::SensorLoss});
        }
        {
            exec::FaultInjector::Config c;
            c.seed = seed;
            c.p_drift_site = 1.0;
            c.drift_offset_c = std::numeric_limits<double>::quiet_NaN();
            c.only_units = {0};
            scenarios.push_back({"NaN readings (core site)", c, 0,
                                 dtm::ControlFault::SensorLoss});
        }

        util::Table chaos_table({"scenario", "detect (ms)", "latched fault",
                                 "peak sup (degC)", "peak raw (degC)"});
        for (const auto& sc : scenarios) {
            ChaosRow row;
            row.name = sc.name;
            row.region = sc.region;
            row.expected = sc.expected;
            {
                exec::FaultInjector inj(sc.cfg);
                exec::FaultInjector::Scope scope(inj);
                const auto res = fleet_sup.run();
                row.detect_s = detect_latency_s(res, sc.region);
                row.peak_supervised_c = region_peak(res, sc.region);
                row.latched = res.regions[sc.region].last_fault;
            }
            {
                exec::FaultInjector inj(sc.cfg);
                exec::FaultInjector::Scope scope(inj);
                const auto res = fleet_raw.run();
                row.peak_raw_c = region_peak(res, sc.region);
            }
            chaos_table.add_row(
                {row.name,
                 row.detect_s < 0.0 ? std::string("never")
                                    : util::fixed(1e3 * row.detect_s, 0),
                 dtm::to_string(row.latched),
                 util::fixed(row.peak_supervised_c, 2),
                 util::fixed(row.peak_raw_c, 2)});
            rows.push_back(row);
        }
        std::cout << chaos_table.render();

        bool all_detected = true;
        bool all_expected = true;
        bool envelope_held = true;
        for (const auto& row : rows) {
            all_detected = all_detected && row.detect_s >= 0.0;
            all_expected = all_expected && row.latched == row.expected;
            envelope_held = envelope_held && row.peak_supervised_c < 115.0;
        }
        checks.expect("every chaos scenario latches FaultedSafe", all_detected);
        checks.expect("every scenario latches the expected fault kind",
                      all_expected);
        checks.expect("envelope invariant: supervised true peak < trip + 5 "
                      "degC in every scenario",
                      envelope_held);
        checks.expect("stuck actuator: supervision (neighbor derating) cuts "
                      "the peak vs unsupervised",
                      rows[1].peak_supervised_c < rows[1].peak_raw_c);
    }

    // ---- snapshot -------------------------------------------------------
    const std::string json_path = cli.get("json", std::string("BENCH_dtm.json"));
    {
        std::ofstream json(json_path);
        json << "{\n"
             << "  \"workload\": \"dtm_fleet\",\n"
             << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
             << "  \"chaos\": " << (chaos ? "true" : "false") << ",\n"
             << "  \"regions\": " << fleet_sup.region_count() << ",\n"
             << "  \"parity_mismatches\": " << parity_mismatches << ",\n"
             << "  \"die_peak_c\": " << clean_sup.die_peak_c << ",\n"
             << "  \"max_overshoot_c\": " << clean_sup.max_overshoot_c << ",\n"
             << "  \"settling_time_s\": " << clean_sup.settling_time_s << ",\n"
             << "  \"recovery_latency_s\": " << recovery_s << ",\n"
             << "  \"tune_solves\": " << clean_sup.tune_solves << ",\n"
             << "  \"scenarios\": [";
        for (std::size_t i = 0; i < rows.size(); ++i) {
            json << (i == 0 ? "\n" : ",\n")
                 << "    {\"name\": \"" << rows[i].name << "\", "
                 << "\"detect_s\": " << rows[i].detect_s << ", "
                 << "\"fault\": \"" << dtm::to_string(rows[i].latched) << "\", "
                 << "\"peak_supervised_c\": " << rows[i].peak_supervised_c
                 << ", "
                 << "\"peak_raw_c\": " << rows[i].peak_raw_c << "}";
        }
        json << (rows.empty() ? "" : "\n  ") << "],\n"
             << "  \"metrics\": " << exec::MetricsRegistry::global().to_json()
             << "\n"
             << "}\n";
    }
    std::cout << "\ndtm snapshot: " << json_path << "\n";
    return checks.report();
}
