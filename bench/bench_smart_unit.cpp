// UNIT-RES — the smart unit's "digital processing bloc" (paper Sec. 3):
// period -> digital temperature conversion. Quantization-limited
// resolution and conversion accuracy vs gate length, for both gating
// schemes, through the full cycle-accurate FSM + fixed-point datapath.
#include "bench_common.hpp"

#include "digital/period_counter.hpp"
#include "sensor/presets.hpp"
#include "sensor/smart_sensor.hpp"
#include "util/cli.hpp"

#include <cmath>
#include <iostream>

using namespace stsense;

namespace {

struct SweepRow {
    std::uint32_t gate_len = 0;
    double lsb_c = 0.0;
    double max_err_c = 0.0;
    double meas_time_us = 0.0;
};

SweepRow run_point(const phys::Technology& tech, digital::GatingScheme scheme,
                   std::uint32_t gate_len) {
    sensor::SensorOptions opt;
    opt.gate.scheme = scheme;
    opt.gate.osc_cycles = gate_len;
    opt.gate.ref_cycles = gate_len;
    opt.gate.ref_freq_hz = 100e6;

    sensor::SmartTemperatureSensor s(
        tech, ring::RingConfig::uniform(cells::CellKind::Inv, 5, 2.75), opt);
    s.calibrate_two_point(0.0, 100.0);

    SweepRow row;
    row.gate_len = gate_len;
    row.lsb_c = s.resolution_c(27.0);
    for (double t = -50.0; t <= 150.0; t += 10.0) {
        const auto m = s.measure(t);
        row.max_err_c = std::max(row.max_err_c, std::abs(m.temperature_c - t));
        row.meas_time_us = std::max(row.meas_time_us, m.measurement_time_s * 1e6);
    }
    return row;
}

} // namespace

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    bench::banner("UNIT-RES",
                  "smart unit conversion: resolution & accuracy vs gate length "
                  "(100 MHz reference)");

    const auto tech = phys::technology_by_name(cli.get("tech", std::string("cmos350")));

    const std::vector<std::uint32_t> gates{1u << 12, 1u << 14, 1u << 16, 1u << 17,
                                           1u << 18, 1u << 20};

    std::vector<SweepRow> osc_rows;
    std::vector<SweepRow> ref_rows;
    for (auto g : gates) {
        osc_rows.push_back(run_point(tech, digital::GatingScheme::OscWindow, g));
        ref_rows.push_back(run_point(tech, digital::GatingScheme::RefWindow, g));
    }

    auto print_scheme = [&](const char* name, const std::vector<SweepRow>& rows) {
        std::cout << "\n" << name << ":\n";
        util::Table t({"gate length", "LSB (degC)", "max |err| (degC)",
                       "measurement time (us)"});
        for (const auto& r : rows) {
            t.add_row({std::to_string(r.gate_len), util::fixed(r.lsb_c, 4),
                       util::fixed(r.max_err_c, 3), util::fixed(r.meas_time_us, 1)});
        }
        std::cout << t.render();
    };
    print_scheme("OscWindow (count ref cycles over M oscillator periods; code ~ period)",
                 osc_rows);
    print_scheme("RefWindow (count oscillator edges in N ref cycles; code ~ 1/period)",
                 ref_rows);

    // FSM walkthrough at the default gate, for the record.
    sensor::SmartTemperatureSensor s(
        tech, ring::RingConfig::uniform(cells::CellKind::Inv, 5, 2.75));
    s.calibrate_two_point(0.0, 100.0);
    const auto m85 = s.measure(85.0);
    std::cout << "\ndefault-gate measurement at 85.0 degC: code=" << m85.code
              << " -> " << util::fixed(m85.temperature_c, 3) << " degC in "
              << util::fixed(m85.measurement_time_s * 1e6, 1) << " us\n";

    bench::ShapeChecks checks;
    checks.expect("resolution improves monotonically with gate length (OscWindow)",
                  [&] {
                      for (std::size_t i = 1; i < osc_rows.size(); ++i) {
                          if (osc_rows[i].lsb_c >= osc_rows[i - 1].lsb_c) return false;
                      }
                      return true;
                  }());
    checks.expect("accuracy tracks resolution: max error shrinks with gate length",
                  osc_rows.back().max_err_c < osc_rows.front().max_err_c);
    checks.expect("default gate (2^17) delivers sub-0.1 degC LSB",
                  [&] {
                      for (const auto& r : osc_rows) {
                          if (r.gate_len == (1u << 17)) return r.lsb_c < 0.1;
                      }
                      return false;
                  }());
    checks.expect("both schemes reach < 0.5 degC max error at the longest gate",
                  osc_rows.back().max_err_c < 0.5 && ref_rows.back().max_err_c < 0.5);
    checks.expect("default-gate conversion lands within 0.5 degC at 85 degC",
                  std::abs(m85.temperature_c - 85.0) < 0.5);
    return checks.report();
}
