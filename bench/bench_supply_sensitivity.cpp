// SUPPLY — ablation: supply-voltage sensitivity of the ring sensor.
// A delay-based sensor aliases supply noise into temperature error; this
// bench quantifies the effect vs Wp/Wn ratio and technology node, and
// derives the supply-regulation requirement — the deployment caveat the
// paper leaves implicit.
#include "bench_common.hpp"

#include "sensor/supply.hpp"
#include "util/cli.hpp"

#include <cmath>
#include <iostream>

using namespace stsense;

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    bench::banner("SUPPLY",
                  "supply sensitivity of the ring sensor (temperature error "
                  "aliased from supply noise)");

    const auto tech = phys::technology_by_name(cli.get("tech", std::string("cmos350")));

    std::cout << "per ratio (5xINV ring, " << tech.name << ", 27 degC):\n";
    util::Table rt({"Wp/Wn", "dP/P per V (%)", "dP/P per K (%)",
                    "err per 10 mV (degC)", "regulation for 0.5 degC (mV)"});
    std::vector<double> errs;
    for (double r : {1.75, 2.25, 2.75, 3.0, 4.0}) {
        const auto cfg = ring::RingConfig::uniform(cells::CellKind::Inv, 5, r);
        const auto s = sensor::supply_sensitivity(tech, cfg, 27.0);
        errs.push_back(s.temp_error_per_10mv_c);
        rt.add_row({util::fixed(r, 2), util::fixed(100.0 * s.dperiod_dvdd_rel, 3),
                    util::fixed(100.0 * s.dperiod_dtemp_rel, 4),
                    util::fixed(s.temp_error_per_10mv_c, 3),
                    util::fixed(1e3 * sensor::required_supply_regulation(s, 0.5), 2)});
    }
    std::cout << rt.render();

    std::cout << "\nper node (5xINV at the library ratio, 27 degC):\n";
    util::Table nt({"node", "Vdd (V)", "err per 10 mV (degC)",
                    "err per 1% Vdd droop (degC)"});
    std::vector<double> node_err_10mv;
    for (const std::string name : {"cmos350", "cmos180", "cmos130"}) {
        const auto t = phys::technology_by_name(name);
        const auto cfg = ring::RingConfig::uniform(cells::CellKind::Inv, 5);
        const auto s = sensor::supply_sensitivity(t, cfg, 27.0);
        node_err_10mv.push_back(s.temp_error_per_10mv_c);
        nt.add_row({name, util::fixed(t.vdd, 2),
                    util::fixed(s.temp_error_per_10mv_c, 3),
                    util::fixed(s.temp_error_per_10mv_c * t.vdd, 3)});
    }
    std::cout << nt.render();

    std::cout << "\n(The diode/PTAT baseline is first-order supply-independent; "
                 "this is the price of the all-digital sensor. Mitigations: "
                 "regulated/filtered sensor supply, or ratioed dual-ring "
                 "readouts.)\n";

    bench::ShapeChecks checks;
    checks.expect("supply aliasing is significant (> 0.1 degC per 10 mV)",
                  errs[2] > 0.1);
    checks.expect("every ratio keeps the effect below 20 degC per 10 mV",
                  [&] {
                      for (double e : errs) {
                          if (e >= 20.0) return false;
                      }
                      return true;
                  }());
    checks.expect("low-Vdd nodes are more supply-sensitive per 10 mV",
                  node_err_10mv[2] > node_err_10mv[0]);
    return checks.report();
}
