// Shared helpers for the reproduction benches: uniform banners and the
// shape-check protocol. Every bench prints the paper-shaped series and
// then PASS/FAIL lines for the qualitative claims it reproduces; the
// process exit code reflects the checks so CI can gate on them.
#pragma once

#include "util/table.hpp"

#include <iostream>
#include <string>
#include <vector>

namespace stsense::bench {

/// Prints the bench banner (experiment id + paper artifact).
inline void banner(const std::string& id, const std::string& title) {
    std::cout << "================================================================\n"
              << id << " — " << title << "\n"
              << "================================================================\n";
}

/// Collects named boolean claims and renders the PASS/FAIL summary.
class ShapeChecks {
public:
    void expect(const std::string& claim, bool ok) {
        results_.emplace_back(claim, ok);
    }

    /// Prints all checks; returns the process exit code (0 = all pass).
    int report() const {
        std::cout << "\nshape checks:\n";
        bool all = true;
        for (const auto& [claim, ok] : results_) {
            std::cout << "  [" << (ok ? "PASS" : "FAIL") << "] " << claim << "\n";
            all = all && ok;
        }
        std::cout << (all ? "ALL SHAPE CHECKS PASSED\n"
                          : "SHAPE CHECK FAILURES PRESENT\n");
        return all ? 0 : 1;
    }

private:
    std::vector<std::pair<std::string, bool>> results_;
};

} // namespace stsense::bench
