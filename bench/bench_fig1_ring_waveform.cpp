// FIG1 — reproduces Fig. 1 of the paper: the simulated transient output
// of a five-stage inverter ring oscillator (~1.5 ns window in the paper).
//
// Output: an ASCII rendering of the waveform, the measured period /
// frequency / duty cycle, and a CSV dump for external plotting.
#include "bench_common.hpp"

#include "phys/technology.hpp"
#include "ring/analytic.hpp"
#include "ring/spice_ring.hpp"
#include "spice/vcd_export.hpp"
#include "util/ascii_plot.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

#include <iostream>

using namespace stsense;

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    bench::banner("FIG1", "transient output of a 5-stage inverter ring (SPICE engine)");

    const auto tech = phys::technology_by_name(cli.get("tech", std::string("cmos350")));
    const double temp_c = cli.get("temp", 27.0);
    const double ratio = cli.get("ratio", 2.5);

    const auto cfg = ring::RingConfig::uniform(cells::CellKind::Inv, 5, ratio);
    const ring::SpiceRingModel model(tech, cfg);
    const ring::AnalyticRingModel analytic(tech, cfg);

    ring::SpiceRingOptions opt;
    opt.skip_cycles = 2;
    opt.measure_cycles = 5;
    opt.steps_per_period = 400;
    const auto res = model.simulate(273.15 + temp_c, opt);

    // The paper's figure shows ~1.5 ns; plot a similar window after startup.
    std::vector<double> t_ps;
    std::vector<double> v;
    const double t0 = 2.0 * res.period;
    const double t1 = t0 + 1.5e-9;
    for (std::size_t i = 0; i < res.waveform.size(); ++i) {
        if (res.waveform.time[i] >= t0 && res.waveform.time[i] <= t1) {
            t_ps.push_back((res.waveform.time[i] - t0) * 1e12);
            v.push_back(res.waveform.value[i]);
        }
    }

    util::PlotOptions popt;
    popt.width = 72;
    popt.height = 14;
    popt.x_label = "time (ps)";
    popt.y_label = "ring node voltage (V), " + tech.name + " @ " +
                   util::fixed(temp_c, 1) + " degC";
    std::cout << util::ascii_plot(t_ps, v, popt) << "\n";

    util::Table table({"quantity", "value"});
    table.add_row({"period (SPICE)", util::fixed(res.period * 1e12, 2) + " ps"});
    table.add_row({"period (analytic)",
                   util::fixed(analytic.period(273.15 + temp_c) * 1e12, 2) + " ps"});
    table.add_row({"frequency", util::fixed(res.frequency / 1e9, 3) + " GHz"});
    table.add_row({"duty cycle", util::fixed(res.duty_cycle, 3)});
    table.add_row({"cycle-to-cycle stddev",
                   util::fixed(res.period_stddev * 1e15, 1) + " fs"});
    table.add_row({"cycles measured", std::to_string(res.cycles_measured)});
    table.add_row({"supply power (metered)",
                   util::fixed(res.avg_supply_power_w * 1e3, 3) + " mW"});
    std::cout << table.render();

    const std::string csv_path = cli.get("csv", std::string("fig1_waveform.csv"));
    util::CsvWriter csv(csv_path);
    csv.header({"time_ps", "volts"});
    for (std::size_t i = 0; i < t_ps.size(); ++i) csv.row({t_ps[i], v[i]});
    const std::string vcd_path = cli.get("vcd", std::string("fig1_waveform.vcd"));
    spice::export_vcd(vcd_path, std::vector<spice::Trace>{res.waveform});
    std::cout << "\nwaveform csv: " << csv_path << " (" << csv.rows_written()
              << " rows); vcd: " << vcd_path << "\n";

    bench::ShapeChecks checks;
    checks.expect("ring oscillates with a stable period",
                  res.cycles_measured >= 3 && res.period_stddev < 0.02 * res.period);
    checks.expect("period is in the sub-ns regime of the paper's figure",
                  res.period > 50e-12 && res.period < 2e-9);
    checks.expect("waveform swings (near) rail to rail",
                  [&] {
                      double lo = tech.vdd;
                      double hi = 0.0;
                      for (double x : v) {
                          lo = std::min(lo, x);
                          hi = std::max(hi, x);
                      }
                      return lo < 0.15 * tech.vdd && hi > 0.85 * tech.vdd;
                  }());
    checks.expect("SPICE and analytic periods agree within 2x",
                  res.period / analytic.period(273.15 + temp_c) > 0.5 &&
                      res.period / analytic.period(273.15 + temp_c) < 2.0);
    return checks.report();
}
