// FIG2 — reproduces Fig. 2 of the paper: non-linearity error of the
// 5-inverter ring's period over -50..150 degC for the Wp/Wn family
// {1.75, 2.25, 3, 4}, plus the fine sweep behind the paper's "< 0.2%
// with an adequate ratio" claim.
#include "bench_common.hpp"

#include "analysis/nonlinearity.hpp"
#include "exec/exec.hpp"
#include "exec/metrics.hpp"
#include "obs/export.hpp"
#include "ring/analytic.hpp"
#include "ring/spice_ring.hpp"
#include "ring/sweep.hpp"
#include "sensor/optimizer.hpp"
#include "sensor/presets.hpp"
#include "util/ascii_plot.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

#include <chrono>
#include <fstream>
#include <iostream>
#include <map>

using namespace stsense;

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    bench::banner("FIG2",
                  "non-linearity error vs temperature for Wp/Wn in {1.75, 2.25, 3, 4}");

    const auto tech = phys::technology_by_name(cli.get("tech", std::string("cmos350")));
    const auto grid = ring::paper_temperature_grid_c();

    // Tracing: armed by --trace=PATH or the STSENSE_TRACE environment
    // variable, inert otherwise. The session covers every sweep below
    // and flushes the Chrome JSON before the metrics dump so the spans
    // aggregate lands in BENCH_fig2.json.
    obs::TraceSession trace(cli.get("trace", std::string()));

    // Per-temperature error series for each ratio (the figure's curves).
    std::vector<std::vector<double>> error_series;
    std::vector<std::string> names;
    std::map<double, double> max_nl;
    for (double r : sensor::presets::kFig2Ratios) {
        const auto cfg = ring::RingConfig::uniform(cells::CellKind::Inv, 5, r);
        const auto sw = ring::paper_sweep(tech, cfg);
        const auto nl = analysis::nonlinearity(sw.temps_c, sw.period_s);
        error_series.push_back(nl.error_percent);
        names.push_back("Wp/Wn=" + util::fixed(r, 2));
        max_nl[r] = nl.max_abs_percent;
    }

    util::PlotOptions popt;
    popt.width = 68;
    popt.height = 14;
    popt.x_label = "temperature (degC)";
    popt.y_label = "non-linearity error (% of full scale), " + tech.name;
    std::cout << util::ascii_plot_multi(grid, error_series, names, popt) << "\n";

    util::Table table({"Wp/Wn", "max |NL| (%)", "period @27C (ps)", "sensitivity (%/K)"});
    for (double r : sensor::presets::kFig2Ratios) {
        const auto cfg = ring::RingConfig::uniform(cells::CellKind::Inv, 5, r);
        const ring::AnalyticRingModel m(tech, cfg);
        const double p27 = m.period(300.15);
        table.add_row({util::fixed(r, 2), util::fixed(max_nl[r], 4),
                       util::fixed(p27 * 1e12, 1),
                       util::fixed(100.0 * m.sensitivity(300.15) / p27, 4)});
    }
    std::cout << table.render();

    // Fine ratio sweep + continuous optimum (the "< 0.2 %" claim). The
    // sweep runs once serially and once through the thread pool; the
    // parallel result is the one used below (identical by contract).
    std::cout << "\nfine ratio sweep (claim: adequate ratio pushes max |NL| below 0.2 %):\n";
    std::vector<double> fine;
    for (double r = 1.0; r <= 5.0 + 1e-9; r += 0.25) fine.push_back(r);
    const auto t_serial = std::chrono::steady_clock::now();
    const auto pts_serial = sensor::ratio_sweep(tech, cells::CellKind::Inv, 5, fine);
    const auto t_parallel = std::chrono::steady_clock::now();
    const auto pts = sensor::ratio_sweep(tech, cells::CellKind::Inv, 5, fine,
                                         &exec::ThreadPool::global());
    const auto t_done = std::chrono::steady_clock::now();
    const double serial_s = std::chrono::duration<double>(t_parallel - t_serial).count();
    const double parallel_s = std::chrono::duration<double>(t_done - t_parallel).count();
    bool sweep_identical = pts.size() == pts_serial.size();
    for (std::size_t i = 0; sweep_identical && i < pts.size(); ++i) {
        sweep_identical = pts[i].max_nl_percent == pts_serial[i].max_nl_percent;
    }
    util::Table ftable({"Wp/Wn", "max |NL| (%)"});
    for (const auto& p : pts) {
        ftable.add_row({util::fixed(p.ratio, 2), util::fixed(p.max_nl_percent, 4)});
    }
    std::cout << ftable.render();

    const auto opt = sensor::optimize_ratio(tech, cells::CellKind::Inv, 5, 1.0, 5.0);
    std::cout << "\ngolden-section optimum: Wp/Wn = " << util::fixed(opt.ratio, 3)
              << ", max |NL| = " << util::fixed(opt.max_nl_percent, 4) << " % ("
              << opt.evaluations << " evaluations)\n";

    const auto cache_stats = exec::ResultCache::global().stats();
    std::cout << "\nruntime: fine sweep serial " << util::fixed(serial_s * 1e3, 1)
              << " ms, pool+warm-cache " << util::fixed(parallel_s * 1e3, 1)
              << " ms (" << util::fixed(parallel_s > 0.0 ? serial_s / parallel_s : 0.0, 1)
              << "x); sweep cache " << cache_stats.hits << " hits / "
              << cache_stats.misses << " misses (hit rate "
              << util::fixed(100.0 * cache_stats.hit_rate(), 1) << " %)\n";

    // Transistor-level spot check with the fast transient kernel: the
    // analytic curves above must agree with full SPICE at the family's
    // best ratio, and the run populates the kernel counters
    // (spice.eval.bypass_hits, spice.newton.refactor,
    // ring.transient.early_exit_cycles) dumped into the JSON below.
    const auto spice_cfg = ring::RingConfig::uniform(cells::CellKind::Inv, 5, 3.0);
    const ring::SpiceRingModel spice_model(tech, spice_cfg);
    ring::SpiceRingOptions spice_opt = ring::SpiceRingOptions::fast();
    spice_opt.record_waveform = false;
    double max_spice_dev_pct = 0.0;
    const ring::AnalyticRingModel analytic_r3(tech, spice_cfg);
    for (double tc : {-50.0, 27.0, 150.0}) {
        const auto r = spice_model.simulate(tc + 273.15, spice_opt);
        const double ana = analytic_r3.period(tc + 273.15);
        max_spice_dev_pct = std::max(
            max_spice_dev_pct, 100.0 * std::abs(r.period - ana) / ana);
    }
    std::cout << "\nSPICE spot check (fast kernel, Wp/Wn=3): max deviation vs "
              << "analytic " << util::fixed(max_spice_dev_pct, 2) << " %\n";

    const std::string csv_path = cli.get("csv", std::string("fig2_ratio_nl.csv"));
    util::CsvWriter csv(csv_path);
    csv.header({"temp_c", "err_r175", "err_r225", "err_r300", "err_r400"});
    for (std::size_t i = 0; i < grid.size(); ++i) {
        csv.row({grid[i], error_series[0][i], error_series[1][i], error_series[2][i],
                 error_series[3][i]});
    }
    std::cout << "error-series csv: " << csv_path << "\n";

    // Stop tracing before the dump so every span above is flushed; a
    // traced run then merges the per-span-name aggregate table into the
    // metrics JSON alongside the flat counters.
    const bool traced = trace.active();
    if (traced) {
        if (!trace.finish()) {
            std::cerr << "trace write failed: " << trace.path() << "\n";
            return 1;
        }
        std::cout << "chrome trace: " << trace.path() << " ("
                  << obs::aggregate_spans(obs::Tracer::global().merged()).size()
                  << " span names)\n";
    }

    // JSON snapshot: figure-level results plus the full metrics registry
    // (pool/cache/fault counters and the fast-kernel counters from the
    // SPICE spot check above; span aggregates when traced).
    const std::string json_path = cli.get("json", std::string("BENCH_fig2.json"));
    {
        const std::string metrics =
            traced ? exec::MetricsRegistry::global().to_json_with(
                         "spans", obs::spans_json(obs::Tracer::global()))
                   : exec::MetricsRegistry::global().to_json();
        std::ofstream json(json_path);
        json << "{\n  \"figure\": \"fig2_ratio_nonlinearity\",\n"
             << "  \"tech\": \"" << tech.name << "\",\n"
             << "  \"max_nl_percent\": {";
        bool first = true;
        for (const auto& [r, nl] : max_nl) {
            json << (first ? "" : ", ") << "\"" << util::fixed(r, 2) << "\": " << nl;
            first = false;
        }
        json << "},\n"
             << "  \"optimum_ratio\": " << opt.ratio << ",\n"
             << "  \"optimum_max_nl_percent\": " << opt.max_nl_percent << ",\n"
             << "  \"spice_spot_check_max_dev_pct\": " << max_spice_dev_pct << ",\n"
             << "  \"metrics\": " << metrics << "\n"
             << "}\n";
    }
    std::cout << "figure snapshot: " << json_path << "\n";

    bench::ShapeChecks checks;
    checks.expect("optimum ratio achieves max |NL| < 0.2 % (paper Sec. 2 claim)",
                  opt.max_nl_percent < 0.2);
    checks.expect("best family member is an interior ratio (2.25 or 3), not an extreme",
                  std::min(max_nl[2.25], max_nl[3.0]) <
                      std::min(max_nl[1.75], max_nl[4.0]));
    checks.expect("r=3 beats r=1.75 and r=4 (figure ordering)",
                  max_nl[3.0] < max_nl[1.75] && max_nl[3.0] < max_nl[4.0]);
    checks.expect("pooled fine sweep identical to serial fine sweep",
                  sweep_identical);
    checks.expect("repeated sweeps hit the result cache",
                  cache_stats.hits > 0);
    checks.expect("SPICE spot check stays within factor two of the analytic model",
                  max_spice_dev_pct < 100.0);
    checks.expect("fast-kernel counters populated by the spot check",
                  exec::MetricsRegistry::global()
                          .counter("spice.eval.bypass_hits")
                          .value() > 0 &&
                      exec::MetricsRegistry::global()
                              .counter("ring.transient.early_exit_cycles")
                              .value() > 0);
    checks.expect("errors stay within the figure's +-1 % band",
                  [&] {
                      for (const auto& s : error_series) {
                          for (double e : s) {
                              if (std::abs(e) > 1.0) return false;
                          }
                      }
                      return true;
                  }());
    return checks.report();
}
