// XCHECK — methodology cross-validation: the analytic delay engine that
// drives the Fig. 2/3 sweeps against the transistor-level SPICE engine,
// per configuration and per temperature.
#include "bench_common.hpp"

#include "analysis/linear_fit.hpp"
#include "ring/analytic.hpp"
#include "ring/spice_ring.hpp"
#include "sensor/presets.hpp"
#include "util/cli.hpp"

#include <cmath>
#include <iostream>

using namespace stsense;

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    bench::banner("XCHECK", "analytic period model vs transistor-level SPICE");

    const auto tech = phys::technology_by_name(cli.get("tech", std::string("cmos350")));
    const std::vector<double> temps_c{-50.0, 0.0, 50.0, 100.0, 150.0};

    ring::SpiceRingOptions opt;
    opt.skip_cycles = 2;
    opt.measure_cycles = 4;
    opt.steps_per_period = 200;
    opt.record_waveform = false;

    struct Config {
        std::string name;
        ring::RingConfig cfg;
    };
    using K = cells::CellKind;
    const std::vector<Config> configs{
        {"5xINV r=1.75", ring::RingConfig::uniform(K::Inv, 5, 1.75)},
        {"5xINV r=2.50", ring::RingConfig::uniform(K::Inv, 5, 2.5)},
        {"5xINV r=4.00", ring::RingConfig::uniform(K::Inv, 5, 4.0)},
        {"5xNAND2", ring::RingConfig::uniform(K::Nand2, 5)},
        {"2xINV+3xNAND2", ring::RingConfig::mix({{K::Inv, 2}, {K::Nand2, 3}})},
        {"5xNOR2", ring::RingConfig::uniform(K::Nor2, 5)},
        {"9xINV r=2.50", ring::RingConfig::uniform(K::Inv, 9, 2.5)},
    };

    util::Table table({"configuration", "T (degC)", "analytic (ps)", "SPICE (ps)",
                       "ratio"});
    bool ratios_bounded = true;
    bool sens_agrees = true;
    for (const auto& c : configs) {
        const ring::AnalyticRingModel am(tech, c.cfg);
        const ring::SpiceRingModel sm(tech, c.cfg);
        std::vector<double> pa;
        std::vector<double> ps;
        for (double tc : temps_c) {
            const double a = am.period(273.15 + tc);
            const double s = sm.simulate(273.15 + tc, opt).period;
            pa.push_back(a);
            ps.push_back(s);
            const double ratio = s / a;
            ratios_bounded = ratios_bounded && ratio > 0.5 && ratio < 2.0;
            table.add_row({c.name, util::fixed(tc, 0), util::fixed(a * 1e12, 1),
                           util::fixed(s * 1e12, 1), util::fixed(ratio, 3)});
        }
        // Relative temperature sensitivity must match between engines:
        // compare normalized slopes of period vs temperature.
        const auto fa = analysis::least_squares(temps_c, pa);
        const auto fs = analysis::least_squares(temps_c, ps);
        const double rel_a = fa.slope / pa[2];
        const double rel_s = fs.slope / ps[2];
        sens_agrees = sens_agrees && std::abs(rel_s / rel_a - 1.0) < 0.25;
    }
    std::cout << table.render();

    bench::ShapeChecks checks;
    checks.expect("absolute periods agree within 2x for every config/temp",
                  ratios_bounded);
    checks.expect("relative temperature sensitivity agrees within 25 %",
                  sens_agrees);
    return checks.report();
}
