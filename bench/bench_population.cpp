// POPULATION — population-scale variability & lifetime study: sharded
// Monte Carlo over 10^4..10^5 virtual dice with streaming statistics.
//
// Reproduces the paper's yield claim at scale: per-die calibration
// budget (golden / one-point / two-point) against the +-1 degC band,
// fresh and after a 10000 h aging horizon with and without periodic
// in-field recalibration. Emits the yield-vs-calibration-budget curve
// and the worst-case inaccuracy distribution per budget.
//
// Determinism gates (the engine's contract, checked bitwise):
//   * shard-size and thread-count invariance of the final statistics;
//   * kill-and-resume: a run killed mid-population (FaultInjector
//     ShardKill) resumes from its checkpoint to bitwise-identical
//     final statistics;
//   * streaming vs exact: the O(1)-memory Welford/P^2 summaries match
//     an exact two-pass over the same DieEvaluator within tolerance
//     (quantiles within 0.5% of the metric's spread).
//
//   $ ./bench/bench_population [--quick] [--json=BENCH_population.json]
//
// `--quick` runs 10^4 dice (the tier-1 stage); the full run 10^5.
#include "bench_common.hpp"

#include "exec/fault_injector.hpp"
#include "exec/metrics.hpp"
#include "exec/thread_pool.hpp"
#include "population/engine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

using namespace stsense;

namespace {

population::PopulationConfig base_config(std::uint64_t dice) {
    population::PopulationConfig cfg;
    cfg.dice = dice;
    cfg.shard_size = 1024;
    cfg.seed = 20260808;
    cfg.variation.vth_sigma = 0.015;
    cfg.variation.kp_rel_sigma = 0.04;
    cfg.variation.vdd_rel_sigma = 0.005;
    cfg.mismatch = {0.01, 0.004};
    // Aging sized so the 10000 h horizon degrades but does not destroy
    // the population: a few mV of Vth drift, a few percent drive loss.
    cfg.aging.vth_drift_v = 0.0008;
    cfg.aging.drive_degradation_rel = 0.0015;
    cfg.aging.rate_sigma_ln = 0.2;
    cfg.horizon_hours = 10000.0;
    cfg.yield_limit_c = 1.0;
    return cfg;
}

/// Exact two-pass reference: materialize every die's metric vector
/// (what the streaming engine refuses to do), then sort per metric.
struct ExactStats {
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::vector<double> quantiles; ///< One per requested p.
};

std::vector<ExactStats> exact_two_pass(
    const population::PopulationConfig& cfg) {
    const population::DieEvaluator eval(cfg);
    const std::size_t n = static_cast<std::size_t>(cfg.dice);
    std::vector<std::array<double, population::kMetricCount>> rows(n);
    exec::ThreadPool::global().parallel_for(n, 0, [&](std::size_t b,
                                                      std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
            rows[i] = eval.evaluate(static_cast<std::uint64_t>(i));
        }
    });

    std::vector<ExactStats> out(population::kMetricCount);
    std::vector<double> col(n);
    for (int m = 0; m < population::kMetricCount; ++m) {
        for (std::size_t i = 0; i < n; ++i) col[i] = rows[i][m];
        std::sort(col.begin(), col.end());
        double sum = 0.0;
        for (double v : col) sum += v;
        ExactStats& s = out[static_cast<std::size_t>(m)];
        s.mean = sum / static_cast<double>(n);
        s.min = col.front();
        s.max = col.back();
        for (double p : cfg.quantiles) {
            // The interpolated order statistic P^2 converges to.
            const double rank = p * static_cast<double>(n - 1);
            const std::size_t lo = static_cast<std::size_t>(rank);
            const std::size_t hi = std::min(lo + 1, n - 1);
            const double frac = rank - static_cast<double>(lo);
            s.quantiles.push_back(col[lo] + frac * (col[hi] - col[lo]));
        }
    }
    return out;
}

bool summaries_bitwise_equal(const population::PopulationResult& a,
                             const population::PopulationResult& b) {
    if (a.yield_fresh != b.yield_fresh || a.yield_aged != b.yield_aged ||
        a.metrics.size() != b.metrics.size()) {
        return false;
    }
    for (std::size_t m = 0; m < a.metrics.size(); ++m) {
        const auto& x = a.metrics[m];
        const auto& y = b.metrics[m];
        if (x.count != y.count || x.mean != y.mean || x.stddev != y.stddev ||
            x.min != y.min || x.max != y.max ||
            x.quantiles.size() != y.quantiles.size()) {
            return false;
        }
        for (std::size_t j = 0; j < x.quantiles.size(); ++j) {
            if (x.quantiles[j].value != y.quantiles[j].value) return false;
        }
    }
    return true;
}

const population::MetricSummary& metric_of(
    const population::PopulationResult& r, population::Metric m) {
    return r.metrics[static_cast<std::size_t>(m)];
}

} // namespace

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    const bool quick = cli.has("quick");
    const std::uint64_t dice = quick ? 10'000 : 100'000;
    bench::banner("POPULATION",
                  "sharded Monte-Carlo variability & lifetime study: yield "
                  "vs calibration budget over " +
                      std::to_string(dice) + " virtual dice");

    bench::ShapeChecks checks;

    // ---- determinism: shard size, thread count ---------------------------
    const auto cfg = base_config(dice);
    population::PopulationRuntime rt_default;
    const auto r_ref = population::run_population(cfg, rt_default);

    {
        auto cfg_reshard = cfg;
        cfg_reshard.shard_size = 512;
        const auto r_reshard = population::run_population(cfg_reshard);

        population::PopulationRuntime rt_serial;
        rt_serial.parallel = false;
        const auto r_serial = population::run_population(cfg, rt_serial);

        checks.expect("final statistics are bitwise invariant to shard size",
                      summaries_bitwise_equal(r_ref, r_reshard));
        checks.expect("final statistics are bitwise invariant to threading "
                      "(parallel == serial)",
                      summaries_bitwise_equal(r_ref, r_serial));
    }

    // ---- determinism: kill mid-population, resume from the checkpoint ---
    {
        const std::string ckpt_path =
            cli.get("ckpt", std::string("bench_population_resume.ckpt"));
        const std::size_t kill_shard =
            (cfg.dice / cfg.shard_size) / 2; // Mid-population.

        population::PopulationRuntime rt_kill;
        rt_kill.checkpoint_path = ckpt_path;
        rt_kill.checkpoint_every = 2; // Leave an unflushed tail behind.
        bool killed = false;
        {
            exec::FaultInjector::Config fc;
            fc.seed = 1;
            fc.p_shard_kill = 1.0;
            fc.only_units = {kill_shard};
            exec::FaultInjector injector(fc);
            exec::FaultInjector::Scope scope(injector);
            try {
                (void)population::run_population(cfg, rt_kill);
            } catch (const exec::InjectedKill&) {
                killed = true;
            }
        }

        population::PopulationRuntime rt_resume;
        rt_resume.checkpoint_path = ckpt_path;
        const auto r_resumed = population::run_population(cfg, rt_resume);

        std::cout << "kill/resume: killed after shard " << kill_shard << ", "
                  << r_resumed.resumed_dice << "/" << cfg.dice
                  << " dice restored from the checkpoint\n";
        checks.expect("ShardKill interrupts the run mid-population", killed);
        checks.expect("resume restores a non-empty prefix from the checkpoint",
                      r_resumed.resumed_dice > 0 &&
                          r_resumed.resumed_dice < cfg.dice);
        checks.expect("kill-and-resume final statistics are bitwise the "
                      "uninterrupted run's",
                      summaries_bitwise_equal(r_ref, r_resumed));
    }

    // ---- streaming vs exact two-pass -------------------------------------
    {
        const auto exact = exact_two_pass(cfg);
        bool mean_ok = true;
        bool minmax_ok = true;
        bool quant_ok = true;
        double worst_q_rel = 0.0;
        std::string worst_at;
        for (int m = 0; m < population::kMetricCount; ++m) {
            const auto& s = r_ref.metrics[static_cast<std::size_t>(m)];
            const auto& e = exact[static_cast<std::size_t>(m)];
            const double spread = e.max - e.min;
            mean_ok = mean_ok && std::abs(s.mean - e.mean) <=
                                     1e-9 * std::max(1.0, std::abs(e.mean));
            minmax_ok = minmax_ok && s.min == e.min && s.max == e.max;
            for (std::size_t j = 0; j < s.quantiles.size(); ++j) {
                const double err =
                    std::abs(s.quantiles[j].value - e.quantiles[j]);
                const double rel = spread > 0.0 ? err / spread : 0.0;
                if (rel > worst_q_rel) {
                    worst_q_rel = rel;
                    worst_at = s.name + " p" +
                               std::to_string(static_cast<int>(
                                   100.0 * s.quantiles[j].p));
                }
                quant_ok = quant_ok && rel <= 0.005;
            }
        }
        std::cout << "streaming vs exact: worst quantile deviation "
                  << util::fixed(100.0 * worst_q_rel, 3) << "% of spread at "
                  << worst_at << " (gate 0.5%)\n";
        checks.expect("streaming mean matches the exact two-pass (rel 1e-9)",
                      mean_ok);
        checks.expect("streaming min/max are exact", minmax_ok);
        checks.expect("P^2 quantiles within 0.5% of the exact order "
                      "statistics (per metric spread)",
                      quant_ok);
    }

    // ---- yield vs calibration budget -------------------------------------
    struct BudgetRow {
        std::string policy;
        population::PopulationResult never; ///< No in-field recalibration.
        population::PopulationResult recal; ///< Periodic 1000 h re-trim.
    };
    std::vector<BudgetRow> curve;
    for (const auto policy : {population::CalibrationPolicy::Golden,
                              population::CalibrationPolicy::OnePoint,
                              population::CalibrationPolicy::TwoPoint}) {
        BudgetRow row;
        row.policy = population::to_string(policy);
        auto c = cfg;
        c.calibration = policy;
        row.never = population::run_population(c);
        c.recal.policy = population::RecalPolicy::Periodic;
        c.recal.interval_hours = 1000.0;
        c.recal.temp_c = 60.0;
        row.recal = population::run_population(c);
        curve.push_back(std::move(row));
    }

    util::Table yield_table({"calibration", "yield fresh", "yield aged",
                             "yield aged+recal", "fresh p99 (degC)",
                             "fresh max (degC)", "aged p99 (degC)"});
    for (const auto& row : curve) {
        const auto& fresh =
            metric_of(row.never, population::Metric::FreshMaxAbsErrC);
        const auto& aged =
            metric_of(row.never, population::Metric::AgedMaxAbsErrC);
        yield_table.add_row(
            {row.policy, util::fixed(100.0 * row.never.yield_fresh, 2) + "%",
             util::fixed(100.0 * row.never.yield_aged, 2) + "%",
             util::fixed(100.0 * row.recal.yield_aged, 2) + "%",
             util::fixed(fresh.quantiles[2].value, 3),
             util::fixed(fresh.max, 3), util::fixed(aged.quantiles[2].value, 3)});
    }
    std::cout << "\nyield vs calibration budget (limit +-"
              << util::fixed(cfg.yield_limit_c, 1) << " degC, horizon "
              << util::fixed(cfg.horizon_hours, 0) << " h):\n"
              << yield_table.render();

    util::Table dist_table({"calibration", "p50", "p90", "p99", "max"});
    for (const auto& row : curve) {
        const auto& fresh =
            metric_of(row.never, population::Metric::FreshMaxAbsErrC);
        dist_table.add_row({row.policy,
                            util::fixed(fresh.quantiles[0].value, 3),
                            util::fixed(fresh.quantiles[1].value, 3),
                            util::fixed(fresh.quantiles[2].value, 3),
                            util::fixed(fresh.max, 3)});
    }
    std::cout << "\nworst-case fresh inaccuracy distribution (degC):\n"
              << dist_table.render();

    const auto& golden = curve[0];
    const auto& one_point = curve[1];
    const auto& two_point = curve[2];
    auto fresh_p = [](const BudgetRow& row, std::size_t j) {
        return metric_of(row.never, population::Metric::FreshMaxAbsErrC)
            .quantiles[j]
            .value;
    };
    bool dist_monotone = true;
    for (std::size_t j = 0; j < 3; ++j) {
        dist_monotone = dist_monotone &&
                        fresh_p(two_point, j) < fresh_p(one_point, j) &&
                        fresh_p(one_point, j) < fresh_p(golden, j);
    }
    checks.expect("fresh inaccuracy distribution is monotone in calibration "
                  "budget (p50/p90/p99: two_point < one_point < golden)",
                  dist_monotone);
    checks.expect("per-die calibration beats the golden budget outright "
                  "(fresh yield)",
                  two_point.never.yield_fresh > golden.never.yield_fresh &&
                      two_point.never.yield_fresh >=
                          one_point.never.yield_fresh);
    checks.expect("aging costs yield (aged <= fresh under two-point)",
                  two_point.never.yield_aged <= two_point.never.yield_fresh);
    // Recal re-trims with the die's calibrated gain, so the recovery
    // claim belongs to the per-die budget: with a golden gain the
    // re-trim can't beat the low-budget flows' lucky per-die
    // cancellations at a tight yield band.
    checks.expect("periodic recalibration recovers aged yield under the "
                  "per-die budget (two_point: recal > never)",
                  two_point.recal.yield_aged > two_point.never.yield_aged);
    const double aged_p99_never =
        metric_of(two_point.never, population::Metric::AgedMaxAbsErrC)
            .quantiles[2]
            .value;
    const double aged_p99_recal =
        metric_of(two_point.recal, population::Metric::AgedMaxAbsErrC)
            .quantiles[2]
            .value;
    checks.expect("recalibration tightens the aged p99 error (two_point)",
                  aged_p99_recal < aged_p99_never);

    // ---- snapshot -------------------------------------------------------
    const std::string json_path =
        cli.get("json", std::string("BENCH_population.json"));
    {
        std::ofstream json(json_path);
        json << "{\n"
             << "  \"workload\": \"population\",\n"
             << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
             << "  \"dice\": " << dice << ",\n"
             << "  \"shard_size\": " << cfg.shard_size << ",\n"
             << "  \"yield_limit_c\": " << cfg.yield_limit_c << ",\n"
             << "  \"horizon_hours\": " << cfg.horizon_hours << ",\n"
             << "  \"fingerprint\": \"" << std::hex << r_ref.fingerprint
             << std::dec << "\",\n"
             << "  \"budgets\": [";
        for (std::size_t i = 0; i < curve.size(); ++i) {
            const auto& row = curve[i];
            const auto& fresh =
                metric_of(row.never, population::Metric::FreshMaxAbsErrC);
            const auto& aged =
                metric_of(row.never, population::Metric::AgedMaxAbsErrC);
            json << (i == 0 ? "\n" : ",\n") << "    {\"policy\": \""
                 << row.policy << "\", "
                 << "\"yield_fresh\": " << row.never.yield_fresh << ", "
                 << "\"yield_aged\": " << row.never.yield_aged << ", "
                 << "\"yield_aged_recal\": " << row.recal.yield_aged << ", "
                 << "\"fresh_p50_c\": " << fresh.quantiles[0].value << ", "
                 << "\"fresh_p90_c\": " << fresh.quantiles[1].value << ", "
                 << "\"fresh_p99_c\": " << fresh.quantiles[2].value << ", "
                 << "\"fresh_max_c\": " << fresh.max << ", "
                 << "\"aged_p99_c\": " << aged.quantiles[2].value << "}";
        }
        json << "\n  ],\n"
             << "  \"metrics\": " << exec::MetricsRegistry::global().to_json()
             << "\n"
             << "}\n";
    }
    std::cout << "\npopulation snapshot: " << json_path << "\n";
    return checks.report();
}
