// FIG3 — reproduces Fig. 3 of the paper: non-linearity error of 5-stage
// rings built from *stock standard cells* at the library Wp/Wn ratio
// (the paper's core cell-based optimization), plus the exhaustive
// enumeration of all stock-cell mixes.
#include "bench_common.hpp"

#include "analysis/nonlinearity.hpp"
#include "exec/exec.hpp"
#include "exec/metrics.hpp"
#include "ring/analytic.hpp"
#include "ring/spice_ring.hpp"
#include "ring/sweep.hpp"
#include "sensor/optimizer.hpp"
#include "sensor/presets.hpp"
#include "util/ascii_plot.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

#include <chrono>
#include <fstream>
#include <iostream>

using namespace stsense;

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    bench::banner("FIG3",
                  "non-linearity error for different cell-mix ring configurations "
                  "(library ratio, stock cells only)");

    const auto tech = phys::technology_by_name(cli.get("tech", std::string("cmos350")));
    const auto grid = ring::paper_temperature_grid_c();
    const auto configs = sensor::presets::fig3_configurations();

    std::vector<std::vector<double>> error_series;
    std::vector<std::string> names;
    std::vector<double> max_nls;
    for (const auto& [name, cfg] : configs) {
        const auto sw = ring::paper_sweep(tech, cfg);
        const auto nl = analysis::nonlinearity(sw.temps_c, sw.period_s);
        error_series.push_back(nl.error_percent);
        names.push_back(name);
        max_nls.push_back(nl.max_abs_percent);
    }

    util::PlotOptions popt;
    popt.width = 68;
    popt.height = 14;
    popt.x_label = "temperature (degC)";
    popt.y_label = "non-linearity error (% of full scale), " + tech.name +
                   " (library ratio = " + util::fixed(tech.library_ratio, 2) + ")";
    std::cout << util::ascii_plot_multi(grid, error_series, names, popt) << "\n";

    util::Table table({"configuration", "max |NL| (%)", "period @27C (ps)"});
    double nl_pure_inv = 0.0;
    double nl_best_named = 1e9;
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const ring::AnalyticRingModel m(tech, configs[i].second);
        table.add_row({configs[i].first, util::fixed(max_nls[i], 4),
                       util::fixed(m.period(300.15) * 1e12, 1)});
        if (configs[i].first == "5xINV") nl_pure_inv = max_nls[i];
        nl_best_named = std::min(nl_best_named, max_nls[i]);
    }
    std::cout << table.render();

    // Exhaustive stock-cell mix search (abstract: "an adequate set of
    // standard logic gates"). Runs once serially and once through the
    // pool to report the runtime-layer speedup on the paper's largest
    // enumeration; both orderings must be identical.
    const auto t_serial = std::chrono::steady_clock::now();
    const auto mixes_serial = sensor::enumerate_mixes(tech, cells::kAllCellKinds,
                                                      sensor::presets::kPaperStages);
    const auto t_parallel = std::chrono::steady_clock::now();
    const auto mixes = sensor::enumerate_mixes(tech, cells::kAllCellKinds,
                                               sensor::presets::kPaperStages,
                                               &exec::ThreadPool::global());
    const auto t_done = std::chrono::steady_clock::now();
    const double serial_s = std::chrono::duration<double>(t_parallel - t_serial).count();
    const double parallel_s = std::chrono::duration<double>(t_done - t_parallel).count();
    bool enum_identical = mixes.size() == mixes_serial.size();
    for (std::size_t i = 0; enum_identical && i < mixes.size(); ++i) {
        enum_identical = mixes[i].name == mixes_serial[i].name &&
                         mixes[i].max_nl_percent == mixes_serial[i].max_nl_percent;
    }
    std::cout << "\nexhaustive mix enumeration over {INV, NAND2, NAND3, NOR2, NOR3} "
              << "(" << mixes.size() << " multisets), top 8:\n";
    util::Table best({"rank", "configuration", "max |NL| (%)"});
    for (std::size_t i = 0; i < mixes.size() && i < 8; ++i) {
        best.add_row({std::to_string(i + 1), mixes[i].name,
                      util::fixed(mixes[i].max_nl_percent, 4)});
    }
    std::cout << best.render();

    // Transistor-level spot check with the fast transient kernel on the
    // pure-inverter library ring: cross-checks the analytic series and
    // populates the kernel counters for the JSON dump below.
    const ring::SpiceRingModel spice_model(
        tech, ring::RingConfig::uniform(cells::CellKind::Inv, 5));
    ring::SpiceRingOptions spice_opt = ring::SpiceRingOptions::fast();
    spice_opt.record_waveform = false;
    const ring::AnalyticRingModel analytic_inv(
        tech, ring::RingConfig::uniform(cells::CellKind::Inv, 5));
    double max_spice_dev_pct = 0.0;
    for (double tc : {-50.0, 27.0, 150.0}) {
        const auto r = spice_model.simulate(tc + 273.15, spice_opt);
        const double ana = analytic_inv.period(tc + 273.15);
        max_spice_dev_pct = std::max(
            max_spice_dev_pct, 100.0 * std::abs(r.period - ana) / ana);
    }
    std::cout << "\nSPICE spot check (fast kernel, 5xINV library ratio): max "
              << "deviation vs analytic " << util::fixed(max_spice_dev_pct, 2)
              << " %\n";

    const std::string csv_path = cli.get("csv", std::string("fig3_cell_mix.csv"));
    util::CsvWriter csv(csv_path);
    std::vector<std::string> hdr{"temp_c"};
    for (const auto& n : names) hdr.push_back(n);
    csv.header(hdr);
    for (std::size_t i = 0; i < grid.size(); ++i) {
        std::vector<double> row{grid[i]};
        for (const auto& s : error_series) row.push_back(s[i]);
        csv.row(row);
    }
    std::cout << "\nerror-series csv: " << csv_path << "\n";

    const auto cache_stats = exec::ResultCache::global().stats();
    std::cout << "runtime: enumeration serial " << util::fixed(serial_s * 1e3, 1)
              << " ms, pool+warm-cache " << util::fixed(parallel_s * 1e3, 1)
              << " ms (" << util::fixed(parallel_s > 0.0 ? serial_s / parallel_s : 0.0, 1)
              << "x); sweep cache " << cache_stats.hits << " hits / "
              << cache_stats.misses << " misses (hit rate "
              << util::fixed(100.0 * cache_stats.hit_rate(), 1) << " %)\n";

    // JSON snapshot: named-configuration results, the enumeration
    // winner, and the full metrics registry (including the fast-kernel
    // counters populated by the SPICE spot check).
    const std::string json_path = cli.get("json", std::string("BENCH_fig3.json"));
    {
        std::ofstream json(json_path);
        json << "{\n  \"figure\": \"fig3_cell_mix\",\n"
             << "  \"tech\": \"" << tech.name << "\",\n"
             << "  \"max_nl_percent\": {";
        for (std::size_t i = 0; i < names.size(); ++i) {
            json << (i ? ", " : "") << "\"" << names[i] << "\": " << max_nls[i];
        }
        json << "},\n"
             << "  \"best_mix\": \"" << mixes.front().name << "\",\n"
             << "  \"best_mix_max_nl_percent\": " << mixes.front().max_nl_percent
             << ",\n"
             << "  \"spice_spot_check_max_dev_pct\": " << max_spice_dev_pct << ",\n"
             << "  \"metrics\": " << exec::MetricsRegistry::global().to_json() << "\n"
             << "}\n";
    }
    std::cout << "figure snapshot: " << json_path << "\n";

    bench::ShapeChecks checks;
    checks.expect("pooled enumeration ranking identical to serial", enum_identical);
    checks.expect("repeated sweeps hit the result cache", cache_stats.hits > 0);
    checks.expect("SPICE spot check stays within factor two of the analytic model",
                  max_spice_dev_pct < 100.0);
    checks.expect("fast-kernel counters populated by the spot check",
                  exec::MetricsRegistry::global()
                          .counter("spice.eval.bypass_hits")
                          .value() > 0 &&
                      exec::MetricsRegistry::global()
                              .counter("ring.transient.early_exit_cycles")
                              .value() > 0);
    checks.expect("cell mixes span a wide NL range (selection is a real knob)",
                  [&] {
                      double lo = max_nls[0];
                      double hi = max_nls[0];
                      for (double v : max_nls) {
                          lo = std::min(lo, v);
                          hi = std::max(hi, v);
                      }
                      return hi / lo > 2.0;
                  }());
    checks.expect("an adequate mix beats the pure 5xINV library ring",
                  nl_best_named < nl_pure_inv);
    checks.expect("best mix overall reaches < 0.2 % (matches sizing-based tuning)",
                  mixes.front().max_nl_percent < 0.2);
    checks.expect("errors stay within the figure's ~+-1.2 % band",
                  [&] {
                      for (const auto& s : error_series) {
                          for (double e : s) {
                              if (std::abs(e) > 1.2) return false;
                          }
                      }
                      return true;
                  }());
    return checks.report();
}
