// UNIT-MAP — the paper's thermal-mapping feature (Sec. 3): multiplexed
// readout of ring oscillators distributed over a die, against the
// ground-truth temperature field of the RC thermal model.
#include "bench_common.hpp"

#include "sensor/monitor.hpp"
#include "sensor/presets.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

#include <algorithm>
#include <iostream>

using namespace stsense;

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    bench::banner("UNIT-MAP",
                  "thermal mapping via multiplexed ring-oscillator sensors "
                  "(3x3 grid on a 10x10 mm die)");

    const auto tech = phys::technology_by_name(cli.get("tech", std::string("cmos350")));
    const auto fp = thermal::demo_floorplan();

    std::cout << "floorplan blocks:\n";
    util::Table fpt({"block", "x (mm)", "y (mm)", "w (mm)", "h (mm)", "power (W)"});
    for (const auto& b : fp.blocks()) {
        fpt.add_row({b.name, util::fixed(b.x * 1e3, 2), util::fixed(b.y * 1e3, 2),
                     util::fixed(b.width * 1e3, 2), util::fixed(b.height * 1e3, 2),
                     util::fixed(b.power_w, 1)});
    }
    std::cout << fpt.render() << "\n";

    const int nx = cli.get("sensors", 3);
    const auto sites = sensor::uniform_sites(fp, nx, nx);
    sensor::MonitorConfig cfg;
    cfg.grid_nx = cli.get("grid", 48);
    cfg.grid_ny = cfg.grid_nx;
    cfg.alarm_threshold_c = cli.get("alarm", 110.0);
    const sensor::ThermalMonitor mon(
        tech, ring::RingConfig::uniform(cells::CellKind::Inv, 5, 2.75), fp, sites,
        cfg);
    const auto map = mon.scan();

    util::Table table({"sensor", "x (mm)", "y (mm)", "true (degC)",
                       "measured (degC)", "error (degC)", "code"});
    for (const auto& r : map.sites) {
        table.add_row({r.name, util::fixed(r.x * 1e3, 2), util::fixed(r.y * 1e3, 2),
                       util::fixed(r.true_c, 2), util::fixed(r.measured_c, 2),
                       util::fixed(r.error_c, 3), std::to_string(r.code)});
    }
    std::cout << table.render();

    std::cout << "\ndie peak " << util::fixed(map.die_peak_c, 2)
              << " degC | max |err| " << util::fixed(map.max_abs_error_c, 3)
              << " degC | rms err " << util::fixed(map.rms_error_c, 3)
              << " degC | full mux scan " << util::fixed(map.scan_time_s * 1e6, 1)
              << " us\n";
    std::cout << "over-temperature alarm (trip "
              << util::fixed(cfg.alarm_threshold_c, 1) << " degC): "
              << (map.alarm ? "LATCHED by site " + map.alarm_site
                            : std::string("clear"))
              << "\n";

    const std::string csv_path = cli.get("csv", std::string("thermal_map.csv"));
    util::CsvWriter csv(csv_path);
    csv.header({"x_mm", "y_mm", "true_c", "measured_c", "error_c"});
    for (const auto& r : map.sites) {
        csv.row({r.x * 1e3, r.y * 1e3, r.true_c, r.measured_c, r.error_c});
    }
    std::cout << "site csv: " << csv_path << "\n";

    const auto hottest =
        std::max_element(map.sites.begin(), map.sites.end(),
                         [](const auto& a, const auto& b) {
                             return a.measured_c < b.measured_c;
                         });
    const auto coolest =
        std::min_element(map.sites.begin(), map.sites.end(),
                         [](const auto& a, const auto& b) {
                             return a.measured_c < b.measured_c;
                         });

    bench::ShapeChecks checks;
    checks.expect("hotspots produce > 10 degC of on-die gradient to map",
                  hottest->measured_c - coolest->measured_c > 10.0);
    checks.expect("every site read within 0.5 degC of local truth",
                  map.max_abs_error_c < 0.5);
    checks.expect("measured field preserves the spatial ordering of the truth",
                  [&] {
                      for (const auto& a : map.sites) {
                          for (const auto& b : map.sites) {
                              if (a.true_c > b.true_c + 2.0 &&
                                  a.measured_c <= b.measured_c) {
                                  return false;
                              }
                          }
                      }
                      return true;
                  }());
    checks.expect("die peak in the paper's motivating regime (> 100 degC)",
                  map.die_peak_c > 100.0);
    checks.expect("the hardware alarm latched on a site above the 110 degC trip",
                  map.alarm && hottest->true_c > cfg.alarm_threshold_c);
    return checks.report();
}
