// UNIT-MAP — the paper's thermal-mapping feature (Sec. 3): multiplexed
// readout of ring oscillators distributed over a die, against the
// ground-truth temperature field of the RC thermal model.
//
// `--degraded` runs the resilience variant instead: a sensor fleet with
// injected persistent hardware faults (stuck oscillators, drifted
// rings; rate and seed controllable, STSENSE_FAULT_SEED replayable)
// scanned repeatedly under the SiteHealth supervisor. The gates prove a
// faulty fleet still yields a complete, flagged, bounded-error map and
// that the fault-free resilient path is bitwise the legacy path.
// Writes BENCH_thermal_map.json. `--quick` shrinks the thermal grid.
#include "bench_common.hpp"

#include "exec/fault_injector.hpp"
#include "exec/metrics.hpp"
#include "sensor/monitor.hpp"
#include "sensor/presets.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>

using namespace stsense;

namespace {

int run_degraded(const util::Cli& cli, const phys::Technology& tech,
                 const thermal::Floorplan& fp) {
    const bool quick = cli.has("quick");
    const int nx = cli.get("sensors", 4);
    const auto sites = sensor::uniform_sites(fp, nx, nx);
    const auto ring_cfg = ring::RingConfig::uniform(cells::CellKind::Inv, 5, 2.75);

    sensor::MonitorConfig cfg;
    cfg.grid_nx = cli.get("grid", quick ? 24 : 48);
    cfg.grid_ny = cfg.grid_nx;
    cfg.enable_health = true;

    // Gate 0: with no injector installed, the resilient path must agree
    // with the legacy scan bit for bit — resilience is free until used.
    sensor::MonitorConfig legacy_cfg = cfg;
    legacy_cfg.enable_health = false;
    const auto legacy =
        sensor::ThermalMonitor(tech, ring_cfg, fp, sites, legacy_cfg).scan();
    const auto clean =
        sensor::ThermalMonitor(tech, ring_cfg, fp, sites, cfg).scan();
    std::size_t clean_mismatches = 0;
    for (std::size_t i = 0; i < sites.size(); ++i) {
        if (clean.sites[i].measured_c != legacy.sites[i].measured_c ||
            clean.sites[i].code != legacy.sites[i].code) {
            ++clean_mismatches;
        }
    }

    // Persistent faults on ~20 % of the rings, replayable via
    // STSENSE_FAULT_SEED: stuck-slow oscillators (watchdog fodder) and
    // calibration-drifted rings (spatial-MAD fodder).
    const std::uint64_t seed = exec::FaultInjector::seed_from_env(
        static_cast<std::uint64_t>(cli.get("seed", 20260806)));
    exec::FaultInjector::Config fc;
    fc.seed = seed;
    fc.p_stuck_osc = cli.get("p-stuck", 0.1);
    fc.p_drift_site = cli.get("p-drift", 0.1);
    // A flagrant drift: the die's own gradient spans ~50 degC, so a
    // subtle offset hides inside the spatial prediction error (that case
    // is what per-site redundancy + quorum voting exists for). 60 degC
    // is unambiguously outside both the MAD gate and, at the hot end,
    // the plausible temperature band.
    fc.drift_offset_c = cli.get("drift-offset", 60.0);
    exec::FaultInjector injector(fc);
    exec::FaultInjector::Scope scope(injector);

    // Several scans so persistent offenders walk the health ladder into
    // quarantine and the map switches them to interpolation.
    sensor::ThermalMonitor mon(tech, ring_cfg, fp, sites, cfg);
    const int scans = cli.get("scans", 4);
    sensor::MapResult map;
    std::uint64_t watchdog_total = 0;
    for (int s = 0; s < scans; ++s) {
        map = mon.scan();
        watchdog_total += map.watchdog_trips;
    }

    const std::size_t faulty =
        map.degraded_sites + map.quarantined_sites + map.dead_sites;
    std::size_t complete = 0;
    double healthy_max_err = 0.0;
    util::Table table({"sensor", "true (degC)", "measured (degC)",
                       "error (degC)", "state", "confidence"});
    for (const auto& r : map.sites) {
        if (r.valid && std::isfinite(r.measured_c)) ++complete;
        if (r.confidence == sensor::SiteConfidence::Measured ||
            r.confidence == sensor::SiteConfidence::Voted) {
            healthy_max_err = std::max(healthy_max_err, std::abs(r.error_c));
        }
        table.add_row({r.name, util::fixed(r.true_c, 2),
                       util::fixed(r.measured_c, 2), util::fixed(r.error_c, 3),
                       sensor::to_string(r.health),
                       sensor::to_string(r.confidence)});
    }
    std::cout << table.render();
    std::cout << "\nfault seed " << seed << " | " << faulty << "/"
              << sites.size() << " sites unhealthy after " << scans
              << " scans | " << map.interpolated_sites
              << " interpolated (max |err| "
              << util::fixed(map.max_interp_error_c, 2) << " degC) | "
              << watchdog_total << " watchdog aborts\n";

    const std::string json_path =
        cli.get("json", std::string("BENCH_thermal_map.json"));
    {
        std::ofstream json(json_path);
        json << "{\n"
             << "  \"workload\": \"degraded_thermal_map\",\n"
             << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
             << "  \"fault_seed\": " << seed << ",\n"
             << "  \"sites\": " << sites.size() << ",\n"
             << "  \"scans\": " << scans << ",\n"
             << "  \"clean_bitwise_mismatches\": " << clean_mismatches << ",\n"
             << "  \"faulty_sites\": " << faulty << ",\n"
             << "  \"degraded_sites\": " << map.degraded_sites << ",\n"
             << "  \"quarantined_sites\": " << map.quarantined_sites << ",\n"
             << "  \"dead_sites\": " << map.dead_sites << ",\n"
             << "  \"interpolated_sites\": " << map.interpolated_sites << ",\n"
             << "  \"max_interp_error_c\": " << map.max_interp_error_c << ",\n"
             << "  \"healthy_max_abs_error_c\": " << healthy_max_err << ",\n"
             << "  \"watchdog_trips\": " << watchdog_total << ",\n"
             << "  \"readout_retries\": " << map.readout_retries << ",\n"
             << "  \"metrics\": " << exec::MetricsRegistry::global().to_json()
             << "\n"
             << "}\n";
    }
    std::cout << "degraded-map snapshot: " << json_path << "\n";

    bench::ShapeChecks checks;
    checks.expect("fault-free resilient scan is bitwise the legacy scan",
                  clean_mismatches == 0);
    checks.expect("the injected fleet actually has unhealthy sites",
                  faulty >= 1);
    checks.expect("every site still mapped (measured, voted or interpolated)",
                  complete == sites.size());
    checks.expect("unhealthy sites are flagged and served by interpolation",
                  map.interpolated_sites >= 1);
    checks.expect("interpolated readings stay within 20 degC of local truth",
                  map.max_interp_error_c < 20.0);
    checks.expect("healthy sites unaffected by their faulty neighbors "
                  "(< 0.5 degC)",
                  healthy_max_err < 0.5);
    checks.expect("stuck oscillators were watchdog-aborted, not waited out",
                  fc.p_stuck_osc == 0.0 || watchdog_total >= 1);
    return checks.report();
}

} // namespace

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    bench::banner("UNIT-MAP",
                  "thermal mapping via multiplexed ring-oscillator sensors "
                  "(3x3 grid on a 10x10 mm die)");

    const auto tech = phys::technology_by_name(cli.get("tech", std::string("cmos350")));
    const auto fp = thermal::demo_floorplan();

    if (cli.has("degraded")) return run_degraded(cli, tech, fp);

    std::cout << "floorplan blocks:\n";
    util::Table fpt({"block", "x (mm)", "y (mm)", "w (mm)", "h (mm)", "power (W)"});
    for (const auto& b : fp.blocks()) {
        fpt.add_row({b.name, util::fixed(b.x * 1e3, 2), util::fixed(b.y * 1e3, 2),
                     util::fixed(b.width * 1e3, 2), util::fixed(b.height * 1e3, 2),
                     util::fixed(b.power_w, 1)});
    }
    std::cout << fpt.render() << "\n";

    const int nx = cli.get("sensors", 3);
    const auto sites = sensor::uniform_sites(fp, nx, nx);
    sensor::MonitorConfig cfg;
    cfg.grid_nx = cli.get("grid", 48);
    cfg.grid_ny = cfg.grid_nx;
    cfg.alarm_threshold_c = cli.get("alarm", 110.0);
    const sensor::ThermalMonitor mon(
        tech, ring::RingConfig::uniform(cells::CellKind::Inv, 5, 2.75), fp, sites,
        cfg);
    const auto map = mon.scan();

    util::Table table({"sensor", "x (mm)", "y (mm)", "true (degC)",
                       "measured (degC)", "error (degC)", "code"});
    for (const auto& r : map.sites) {
        table.add_row({r.name, util::fixed(r.x * 1e3, 2), util::fixed(r.y * 1e3, 2),
                       util::fixed(r.true_c, 2), util::fixed(r.measured_c, 2),
                       util::fixed(r.error_c, 3), std::to_string(r.code)});
    }
    std::cout << table.render();

    std::cout << "\ndie peak " << util::fixed(map.die_peak_c, 2)
              << " degC | max |err| " << util::fixed(map.max_abs_error_c, 3)
              << " degC | rms err " << util::fixed(map.rms_error_c, 3)
              << " degC | full mux scan " << util::fixed(map.scan_time_s * 1e6, 1)
              << " us\n";
    std::cout << "over-temperature alarm (trip "
              << util::fixed(cfg.alarm_threshold_c, 1) << " degC): "
              << (map.alarm ? "LATCHED by site " + map.alarm_site
                            : std::string("clear"))
              << "\n";

    const std::string csv_path = cli.get("csv", std::string("thermal_map.csv"));
    util::CsvWriter csv(csv_path);
    csv.header({"x_mm", "y_mm", "true_c", "measured_c", "error_c"});
    for (const auto& r : map.sites) {
        csv.row({r.x * 1e3, r.y * 1e3, r.true_c, r.measured_c, r.error_c});
    }
    std::cout << "site csv: " << csv_path << "\n";

    const auto hottest =
        std::max_element(map.sites.begin(), map.sites.end(),
                         [](const auto& a, const auto& b) {
                             return a.measured_c < b.measured_c;
                         });
    const auto coolest =
        std::min_element(map.sites.begin(), map.sites.end(),
                         [](const auto& a, const auto& b) {
                             return a.measured_c < b.measured_c;
                         });

    bench::ShapeChecks checks;
    checks.expect("hotspots produce > 10 degC of on-die gradient to map",
                  hottest->measured_c - coolest->measured_c > 10.0);
    checks.expect("every site read within 0.5 degC of local truth",
                  map.max_abs_error_c < 0.5);
    checks.expect("measured field preserves the spatial ordering of the truth",
                  [&] {
                      for (const auto& a : map.sites) {
                          for (const auto& b : map.sites) {
                              if (a.true_c > b.true_c + 2.0 &&
                                  a.measured_c <= b.measured_c) {
                                  return false;
                              }
                          }
                      }
                      return true;
                  }());
    checks.expect("die peak in the paper's motivating regime (> 100 degC)",
                  map.die_peak_c > 100.0);
    checks.expect("the hardware alarm latched on a site above the 110 degC trip",
                  map.alarm && hottest->true_c > cfg.alarm_threshold_c);
    return checks.report();
}
