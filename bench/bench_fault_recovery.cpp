// FAULT — the fault-tolerant runtime on the paper's heaviest workload:
// the Fig. 2 ratio family swept with the SPICE engine under
// deterministic fault injection. Reports, per fault policy, the
// completion/recovery rates and the wall-clock overhead versus the
// fault-free run, then drives seeded known-hard solves (every base
// Newton attempt sabotaged, progressively deeper rungs) that the
// recovery ladder MUST rescue — any miss fails the bench.
//
// The injection seed honors STSENSE_FAULT_SEED (or --seed), so a
// failing run is replayable bit for bit.
#include "bench_common.hpp"

#include "exec/exec.hpp"
#include "ring/sweep.hpp"
#include "sensor/presets.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

using namespace stsense;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
        .count();
}

struct PolicyRun {
    std::string name;
    double wall_s = 0.0;
    std::size_t points = 0;
    std::size_t ok = 0;
    std::size_t recovered = 0;
    std::size_t skipped = 0;
    std::size_t failed = 0;
    bool threw = false;

    std::size_t completed() const { return ok + recovered; }
    double completion_rate() const {
        return points == 0 ? 0.0
                           : static_cast<double>(completed()) /
                                 static_cast<double>(points);
    }
};

} // namespace

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    bench::banner("FAULT",
                  "fault-tolerant runtime: Fig. 2 SPICE sweep under injected "
                  "point faults + recovery-ladder hard solves");

    const auto tech = phys::technology_by_name(cli.get("tech", std::string("cmos350")));
    const std::uint64_t seed = exec::FaultInjector::seed_from_env(
        static_cast<std::uint64_t>(cli.get("seed", 1)));
    const double p_point = cli.get("p", 0.1);
    const auto grid = ring::paper_temperature_grid_c();

    // Coarser transients than the figure benches: this bench measures
    // the fault machinery, not the physics.
    ring::SpiceRingOptions opt;
    opt.skip_cycles = 2;
    opt.measure_cycles = 4;
    opt.steps_per_period = cli.get("steps", 150);

    std::vector<ring::RingConfig> configs;
    for (double r : sensor::presets::kFig2Ratios) {
        configs.push_back(ring::RingConfig::uniform(cells::CellKind::Inv, 5, r));
    }
    const std::size_t total_points = configs.size() * grid.size();

    auto run_policy = [&](const std::string& name, ring::FaultPolicy policy,
                          bool inject) {
        PolicyRun run;
        run.name = name;
        ring::SweepRuntime rt;
        rt.use_cache = false;
        rt.fault.policy = policy;
        exec::FaultInjector::Config cfg;
        cfg.seed = seed;
        cfg.p_point = inject ? p_point : 0.0;
        exec::FaultInjector injector(cfg);
        const auto t0 = std::chrono::steady_clock::now();
        try {
            exec::FaultInjector::Scope scope(injector);
            for (const auto& c : configs) {
                const auto sweep =
                    ring::temperature_sweep(tech, c, grid, ring::Engine::Spice,
                                            opt, rt);
                run.points += sweep.temps_c.size();
                run.ok += sweep.count(ring::PointStatus::Ok);
                run.recovered += sweep.recovered_points();
                run.skipped += sweep.count(ring::PointStatus::Skipped);
                run.failed += sweep.count(ring::PointStatus::Failed);
            }
        } catch (const spice::SimException&) {
            run.threw = true;
        }
        run.wall_s = seconds_since(t0);
        return run;
    };

    std::cout << "workload: " << configs.size() << " ratios x " << grid.size()
              << " temperatures = " << total_points
              << " SPICE points, p(point fault) = " << p_point
              << ", seed = " << seed << " (STSENSE_FAULT_SEED overrides)\n\n";

    const PolicyRun clean = run_policy("fault-free", ring::FaultPolicy::Propagate,
                                       /*inject=*/false);
    const PolicyRun propagate =
        run_policy("propagate", ring::FaultPolicy::Propagate, true);
    const PolicyRun skip = run_policy("skip", ring::FaultPolicy::Skip, true);
    const PolicyRun retry = run_policy("retry", ring::FaultPolicy::Retry, true);
    const PolicyRun fallback =
        run_policy("fallback", ring::FaultPolicy::FallbackToAnalytic, true);

    util::Table table({"policy", "wall (s)", "overhead", "completed", "recovered",
                       "skipped", "failed", "recovery rate"});
    auto add_run = [&](const PolicyRun& r) {
        const double overhead =
            clean.wall_s > 0.0 ? r.wall_s / clean.wall_s - 1.0 : 0.0;
        table.add_row({r.name, util::fixed(r.wall_s, 3),
                       r.threw ? "-" : util::fixed(100.0 * overhead, 1) + " %",
                       r.threw ? "aborted"
                               : std::to_string(r.completed()) + "/" +
                                     std::to_string(r.points),
                       std::to_string(r.recovered), std::to_string(r.skipped),
                       std::to_string(r.failed),
                       r.threw ? "-"
                               : util::fixed(100.0 * r.completion_rate(), 1) + " %"});
    };
    add_run(clean);
    add_run(propagate);
    add_run(skip);
    add_run(retry);
    add_run(fallback);
    std::cout << table.render() << "\n";

    // --- seeded known-hard solves ------------------------------------------
    // Every base Newton attempt of every point is sabotaged down to the
    // given rung; the ladder must rescue 100% of the points. These are
    // the solves the pre-ladder engine could never complete.
    const auto& hard_config = configs.front();
    struct HardCase {
        std::string name;
        int rungs;
        std::size_t rescued = 0;
        std::size_t points = 0;
    };
    std::vector<HardCase> hard_cases{
        {"damped-newton rescue (rungs=1)", 1},
        {"gmin-stepping rescue (rungs=2)", 2},
    };
    for (auto& hc : hard_cases) {
        exec::FaultInjector::Config cfg;
        cfg.seed = seed;
        cfg.p_newton_fail = 1.0;
        cfg.newton_fail_rungs = hc.rungs;
        exec::FaultInjector injector(cfg);
        exec::FaultInjector::Scope scope(injector);
        ring::SweepRuntime rt = ring::SweepRuntime::serial();
        rt.fault.policy = ring::FaultPolicy::Skip; // Count, don't abort.
        const auto sweep = ring::temperature_sweep(tech, hard_config, grid,
                                                   ring::Engine::Spice, opt, rt);
        hc.points = sweep.temps_c.size();
        hc.rescued = sweep.recovered_points();
        std::cout << hc.name << ": " << hc.rescued << "/" << hc.points
                  << " points rescued\n";
    }

    // --- JSON snapshot ------------------------------------------------------
    const std::string json_path =
        cli.get("json", std::string("BENCH_fault_recovery.json"));
    {
        std::ofstream json(json_path);
        json << "{\n"
             << "  \"workload\": \"fig2_spice_ratio_sweep\",\n"
             << "  \"points\": " << total_points << ",\n"
             << "  \"seed\": " << seed << ",\n"
             << "  \"p_point\": " << p_point << ",\n"
             << "  \"clean_s\": " << clean.wall_s << ",\n"
             << "  \"skip_s\": " << skip.wall_s << ",\n"
             << "  \"retry_s\": " << retry.wall_s << ",\n"
             << "  \"fallback_s\": " << fallback.wall_s << ",\n"
             << "  \"retry_completion_rate\": " << retry.completion_rate() << ",\n"
             << "  \"fallback_completion_rate\": " << fallback.completion_rate()
             << ",\n"
             << "  \"metrics\": " << exec::MetricsRegistry::global().to_json() << "\n"
             << "}\n";
    }
    std::cout << "fault snapshot: " << json_path << "\n";

    bench::ShapeChecks checks;
    checks.expect("fault-free reference completes every point",
                  !clean.threw && clean.completed() == total_points &&
                      clean.recovered == 0);
    checks.expect("propagate reproduces legacy abort-on-first-failure",
                  propagate.threw);
    checks.expect("skip yields a partial series (some points skipped, none fake)",
                  !skip.threw && skip.skipped > 0 &&
                      skip.completed() + skip.skipped == skip.points);
    checks.expect("retry completes the full sweep despite injected faults",
                  !retry.threw && retry.completed() == retry.points &&
                      retry.recovered > 0);
    checks.expect("fallback completes the full sweep despite injected faults",
                  !fallback.threw && fallback.completed() == fallback.points);
    for (const auto& hc : hard_cases) {
        checks.expect("ladder rescues all seeded hard solves: " + hc.name,
                      hc.points > 0 && hc.rescued == hc.points);
    }
    return checks.report();
}
