// EXEC — the parallel execution runtime on the paper's heaviest
// workload: the Fig. 2 ratio family swept with the SPICE engine
// (4 ratios x 17 temperatures = 68 independent transistor-level
// transient simulations). Measures serial vs parallel wall clock,
// verifies the parallel periods are BITWISE identical to the serial
// ones (the determinism contract that keeps the paper figures
// unchanged), exercises the content-addressed sweep cache, and writes
// the numbers to a JSON snapshot (BENCH_exec.json).
#include "bench_common.hpp"

#include "exec/exec.hpp"
#include "obs/export.hpp"
#include "ring/sweep.hpp"
#include "sensor/presets.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

using namespace stsense;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
        .count();
}

bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
    return a.size() == b.size() &&
           (a.empty() ||
            std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

} // namespace

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    bench::banner("EXEC",
                  "parallel runtime: Fig. 2 SPICE ratio sweep, serial vs pool, "
                  "+ sweep cache");

    const auto tech = phys::technology_by_name(cli.get("tech", std::string("cmos350")));
    // threads=0 means auto; either way the pool is clamped to the
    // hardware thread count (oversubscription only measured scheduler
    // overhead — BENCH_exec.json once recorded 4 threads on 1 core at
    // 0.92x "speedup").
    const int threads_configured = cli.get("threads", 0);

    // Tracing: armed by --trace=PATH or STSENSE_TRACE, inert otherwise
    // (same contract as the figure benches).
    obs::TraceSession trace(cli.get("trace", std::string()));
    const int threads = exec::ThreadPool::clamp_to_hardware(threads_configured);
    const auto grid = ring::paper_temperature_grid_c();

    // Coarser transient settings than the figure benches: this bench
    // measures the runtime, not the physics, and 68 full-resolution
    // transients would dominate CI time.
    ring::SpiceRingOptions opt;
    opt.skip_cycles = 2;
    opt.measure_cycles = 4;
    opt.steps_per_period = cli.get("steps", 150);

    std::vector<ring::RingConfig> configs;
    for (double r : sensor::presets::kFig2Ratios) {
        configs.push_back(ring::RingConfig::uniform(cells::CellKind::Inv, 5, r));
    }

    // --- serial reference -------------------------------------------------
    std::vector<ring::SweepResult> serial(configs.size());
    const auto t_serial = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < configs.size(); ++i) {
        serial[i] = ring::temperature_sweep(tech, configs[i], grid,
                                            ring::Engine::Spice, opt,
                                            ring::SweepRuntime::serial());
    }
    const double serial_s = seconds_since(t_serial);

    // --- parallel: every SPICE point fanned out to the pool ---------------
    exec::ThreadPool pool(threads);
    ring::SweepRuntime parallel_rt;
    parallel_rt.pool = &pool;
    parallel_rt.use_cache = false;
    std::vector<ring::SweepResult> parallel(configs.size());
    const auto t_parallel = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < configs.size(); ++i) {
        parallel[i] = ring::temperature_sweep(tech, configs[i], grid,
                                              ring::Engine::Spice, opt, parallel_rt);
    }
    const double parallel_s = seconds_since(t_parallel);
    const double speedup = parallel_s > 0.0 ? serial_s / parallel_s : 0.0;

    bool identical = true;
    for (std::size_t i = 0; i < configs.size(); ++i) {
        identical = identical &&
                    bitwise_equal(serial[i].period_s, parallel[i].period_s) &&
                    bitwise_equal(serial[i].frequency_hz, parallel[i].frequency_hz);
    }

    // --- cache: cold pass populates, warm pass must be pure hits ----------
    exec::ResultCache cache;
    ring::SweepRuntime cached_rt;
    cached_rt.pool = &pool;
    cached_rt.cache = &cache;
    const auto t_cold = std::chrono::steady_clock::now();
    for (const auto& cfg : configs) {
        (void)ring::temperature_sweep(tech, cfg, grid, ring::Engine::Spice, opt,
                                      cached_rt);
    }
    const double cold_s = seconds_since(t_cold);
    const auto t_warm = std::chrono::steady_clock::now();
    std::vector<ring::SweepResult> warm(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        warm[i] = ring::temperature_sweep(tech, configs[i], grid,
                                          ring::Engine::Spice, opt, cached_rt);
    }
    const double warm_s = seconds_since(t_warm);
    const auto cache_stats = cache.stats();
    bool warm_identical = true;
    for (std::size_t i = 0; i < configs.size(); ++i) {
        warm_identical =
            warm_identical && bitwise_equal(serial[i].period_s, warm[i].period_s);
    }

    const unsigned hw = std::thread::hardware_concurrency();
    util::Table table({"path", "wall (s)", "vs serial"});
    table.add_row({"serial", util::fixed(serial_s, 3), "1.00x"});
    table.add_row({"pool x" + std::to_string(threads), util::fixed(parallel_s, 3),
                   util::fixed(speedup, 2) + "x"});
    table.add_row({"cache cold", util::fixed(cold_s, 3),
                   util::fixed(cold_s > 0.0 ? serial_s / cold_s : 0.0, 2) + "x"});
    table.add_row({"cache warm", util::fixed(warm_s, 3),
                   util::fixed(warm_s > 0.0 ? serial_s / warm_s : 0.0, 2) + "x"});
    std::cout << table.render();
    std::cout << "\nhardware threads: " << hw << ", threads configured: "
              << (threads_configured < 1 ? std::string("auto")
                                         : std::to_string(threads_configured))
              << ", pool size (effective): " << pool.size()
              << ", tasks executed: " << pool.tasks_executed()
              << ", stolen: " << pool.tasks_stolen() << "\n";
    std::cout << "cache: " << cache_stats.hits << " hits / " << cache_stats.misses
              << " misses (hit rate " << util::fixed(100.0 * cache_stats.hit_rate(), 1)
              << " %), " << cache_stats.bytes << " bytes resident\n";

    // --- JSON snapshot ----------------------------------------------------
    const bool traced = trace.active();
    if (traced) {
        if (!trace.finish()) {
            std::cerr << "trace write failed: " << trace.path() << "\n";
            return 1;
        }
        std::cout << "chrome trace: " << trace.path() << "\n";
    }
    const std::string json_path = cli.get("json", std::string("BENCH_exec.json"));
    {
        const std::string metrics =
            traced ? exec::MetricsRegistry::global().to_json_with(
                         "spans", obs::spans_json(obs::Tracer::global()))
                   : exec::MetricsRegistry::global().to_json();
        std::ofstream json(json_path);
        json << "{\n"
             << "  \"workload\": \"fig2_spice_ratio_sweep\",\n"
             << "  \"points\": " << configs.size() * grid.size() << ",\n"
             << "  \"hardware_threads\": " << hw << ",\n"
             << "  \"pool_threads_configured\": " << threads_configured << ",\n"
             << "  \"pool_threads_effective\": " << pool.size() << ",\n"
             << "  \"serial_s\": " << serial_s << ",\n"
             << "  \"parallel_s\": " << parallel_s << ",\n"
             << "  \"speedup\": " << speedup << ",\n"
             << "  \"bitwise_identical\": " << (identical ? "true" : "false") << ",\n"
             << "  \"cache_cold_s\": " << cold_s << ",\n"
             << "  \"cache_warm_s\": " << warm_s << ",\n"
             << "  \"cache_hits\": " << cache_stats.hits << ",\n"
             << "  \"cache_misses\": " << cache_stats.misses << ",\n"
             << "  \"cache_hit_rate\": " << cache_stats.hit_rate() << ",\n"
             << "  \"metrics\": " << metrics << "\n"
             << "}\n";
    }
    std::cout << "runtime snapshot: " << json_path << "\n";

    bench::ShapeChecks checks;
    checks.expect("parallel periods bitwise identical to serial (determinism contract)",
                  identical);
    checks.expect("warm cached sweeps bitwise identical to serial", warm_identical);
    checks.expect("warm pass is pure cache hits (one per sweep)",
                  cache_stats.hits == configs.size() &&
                      cache_stats.misses == configs.size());
    checks.expect("warm cached pass at least 100x faster than serial",
                  warm_s > 0.0 && serial_s / warm_s > 100.0);
    if (hw >= 4) {
        checks.expect("parallel speedup >= 2x at 4 threads (acceptance criterion)",
                      speedup >= 2.0);
    } else {
        // A speedup gate is unfalsifiable without the cores to run on;
        // report the measurement instead of faking a PASS/FAIL.
        std::cout << "note: only " << hw << " hardware thread(s) — the >= 2x "
                  << "speedup gate needs >= 4 and is reported unchecked "
                  << "(measured " << util::fixed(speedup, 2) << "x)\n";
    }
    return checks.report();
}
