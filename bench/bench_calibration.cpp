// CAL — sensor calibration robustness (the paper names "sensor
// calibration" as a design goal of the standard-cell style): one-point
// vs two-point calibration across process corners and Monte-Carlo
// die-to-die variation.
#include "bench_common.hpp"

#include "analysis/statistics.hpp"
#include "phys/corners.hpp"
#include "sensor/presets.hpp"
#include "sensor/smart_sensor.hpp"
#include "util/cli.hpp"

#include <cmath>
#include <iostream>

using namespace stsense;

namespace {

double worst_error(const sensor::SmartTemperatureSensor& s) {
    double worst = 0.0;
    for (double t = -50.0; t <= 150.0; t += 20.0) {
        worst = std::max(worst, std::abs(s.measure(t).temperature_c - t));
    }
    return worst;
}

} // namespace

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    bench::banner("CAL",
                  "one-point vs two-point calibration across corners and "
                  "Monte-Carlo variation");

    const auto base = phys::technology_by_name(cli.get("tech", std::string("cmos350")));
    const auto cfg = ring::RingConfig::uniform(cells::CellKind::Inv, 5, 2.75);

    // Golden-die characterization for the one-point scheme.
    sensor::SmartTemperatureSensor golden(base, cfg);
    const double nominal_gain = golden.nominal_gain_c_per_code(0.0, 100.0);
    std::cout << "golden-die gain: " << util::sci(nominal_gain, 4)
              << " degC/code\n\n";

    // --- Corners ------------------------------------------------------
    std::cout << "process corners (worst |error| over -50..150 degC):\n";
    util::Table ct({"corner", "raw code @27C", "uncal err (degC)",
                    "1-pt err (degC)", "2-pt err (degC)"});
    bool corners_ok = true;
    for (phys::Corner corner : phys::kAllCorners) {
        const auto tech = phys::apply_corner(base, corner);

        sensor::SmartTemperatureSensor uncal_probe(tech, cfg);
        // "Uncalibrated": golden die's converter applied to this die.
        sensor::SmartTemperatureSensor golden_cal(base, cfg);
        golden_cal.calibrate_two_point(0.0, 100.0);
        double uncal = 0.0;
        for (double t = -50.0; t <= 150.0; t += 20.0) {
            uncal = std::max(uncal, std::abs(golden_cal.convert(
                                        uncal_probe.raw_code(t)) - t));
        }

        sensor::SmartTemperatureSensor one(tech, cfg);
        one.calibrate_one_point(27.0, nominal_gain);
        sensor::SmartTemperatureSensor two(tech, cfg);
        two.calibrate_two_point(0.0, 100.0);

        const double e1 = worst_error(one);
        const double e2 = worst_error(two);
        corners_ok = corners_ok && e2 < 1.0 && e2 <= e1 + 0.05;
        ct.add_row({phys::to_string(corner),
                    std::to_string(uncal_probe.raw_code(27.0)),
                    util::fixed(uncal, 2), util::fixed(e1, 3), util::fixed(e2, 3)});
    }
    std::cout << ct.render();

    // --- Monte-Carlo --------------------------------------------------
    const int n_dies = cli.get("dies", 50);
    std::cout << "\nMonte-Carlo over " << n_dies
              << " dies (vth sigma 15 mV, kp sigma 4 %):\n";
    phys::VariationSpec spec;
    util::Rng rng(static_cast<std::uint64_t>(cli.get("seed", 12345)));
    std::vector<double> err_uncal;
    std::vector<double> err_one;
    std::vector<double> err_two;
    sensor::SmartTemperatureSensor golden_cal(base, cfg);
    golden_cal.calibrate_two_point(0.0, 100.0);
    for (int die = 0; die < n_dies; ++die) {
        const auto tech = phys::sample_variation(base, spec, rng);
        sensor::SmartTemperatureSensor probe(tech, cfg);
        double uncal = 0.0;
        for (double t = -50.0; t <= 150.0; t += 20.0) {
            uncal = std::max(uncal,
                             std::abs(golden_cal.convert(probe.raw_code(t)) - t));
        }
        err_uncal.push_back(uncal);

        sensor::SmartTemperatureSensor one(tech, cfg);
        one.calibrate_one_point(27.0, nominal_gain);
        err_one.push_back(worst_error(one));

        sensor::SmartTemperatureSensor two(tech, cfg);
        two.calibrate_two_point(0.0, 100.0);
        err_two.push_back(worst_error(two));
    }

    util::Table mt({"scheme", "mean err (degC)", "p95 err (degC)", "max err (degC)"});
    auto add = [&](const char* name, const std::vector<double>& e) {
        const auto s = analysis::summarize(e);
        mt.add_row({name, util::fixed(s.mean, 3),
                    util::fixed(analysis::percentile(e, 95.0), 3),
                    util::fixed(s.max, 3)});
    };
    add("uncalibrated (golden converter)", err_uncal);
    add("one-point (offset trim)", err_one);
    add("two-point", err_two);
    std::cout << mt.render();

    const auto su = analysis::summarize(err_uncal);
    const auto s1 = analysis::summarize(err_one);
    const auto s2 = analysis::summarize(err_two);

    bench::ShapeChecks checks;
    checks.expect("uncalibrated readout is unusable across corners/variation (>2 degC)",
                  su.max > 2.0);
    checks.expect("one-point offset trim removes most of the spread",
                  s1.mean < 0.5 * su.mean);
    checks.expect("two-point calibration beats one-point",
                  s2.mean < s1.mean && s2.max <= s1.max + 0.05);
    checks.expect("two-point keeps every corner within 1 degC", corners_ok);
    return checks.report();
}
