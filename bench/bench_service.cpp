// SERVICE — the telemetry daemon's dispatch cost and sustained request
// throughput. Three measurements over the in-process loopback transport
// (the same protocol stack a socket client exercises, minus OS socket
// noise):
//
//   1. inline dispatch: parse -> registry -> render for a light method
//      (ping) and an object-model query, via Server::handle_inline.
//   2. throughput matrix: C concurrent clients x S sessions pushing a
//      mixed light/heavy request stream end-to-end through the fair
//      queue and the pool; requests/sec plus p50/p95 round-trip latency
//      per cell.
//   3. admission sanity: every request in the matrix is answered ok —
//      fairness must not cost correctness.
//   4. cancel latency: a long transistor-level sweep is cancelled
//      mid-flight; the gate is a typed `cancelled` answer within 50 ms
//      (median) and a fully drained pool after every round — cancelled
//      work must reclaim its workers, not leak them.
//   5. cancel chaos: a seeded CancelStorm matrix fires sweep tokens at
//      deterministic dispatch indices; every cancelled run must leave a
//      loadable (never torn) checkpoint that resumes bitwise.
//
// `--quick 1` trims the matrix and the per-client request count (the
// tier-1 smoke budget); the full run writes BENCH_service.json.
#include "bench_common.hpp"

#include "exec/cancel.hpp"
#include "exec/checkpoint.hpp"
#include "exec/fault_injector.hpp"
#include "exec/metrics.hpp"
#include "exec/thread_pool.hpp"
#include "ring/sweep.hpp"
#include "service/server.hpp"
#include "service/transport.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace stsense;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
        .count();
}

/// Small die so the heavy requests stay inside the smoke budget.
service::SessionSpec small_session(const std::string& name) {
    service::SessionSpec spec;
    spec.name = name;
    spec.monitor.grid_nx = 12;
    spec.monitor.grid_ny = 12;
    spec.sites_nx = 2;
    spec.sites_ny = 2;
    return spec;
}

std::vector<service::SessionSpec> make_sessions(int n) {
    std::vector<service::SessionSpec> specs;
    for (int i = 0; i < n; ++i)
        specs.push_back(small_session("die-" + std::to_string(i)));
    return specs;
}

struct Quantiles {
    double p50_us = 0.0;
    double p95_us = 0.0;
    double max_us = 0.0;
};

Quantiles quantiles_us(std::vector<double>& lat_us) {
    Quantiles q;
    if (lat_us.empty()) return q;
    std::sort(lat_us.begin(), lat_us.end());
    q.p50_us = lat_us[lat_us.size() / 2];
    q.p95_us = lat_us[(lat_us.size() * 95) / 100];
    q.max_us = lat_us.back();
    return q;
}

struct CellResult {
    int clients = 0;
    int sessions = 0;
    long requests = 0;
    long ok = 0;
    long errors = 0;
    double wall_s = 0.0;
    double req_per_s = 0.0;
    Quantiles light;
    Quantiles heavy;
};

/// One matrix cell: a fresh server with `n_sessions` dies, `n_clients`
/// loopback clients each sending `reqs_per_client` requests (one heavy
/// request per `heavy_every` light ones), every round-trip timed.
CellResult run_cell(int n_clients, int n_sessions, int reqs_per_client,
                    int heavy_every) {
    service::ServerConfig cfg;
    cfg.threads = 2;
    service::Server server(cfg, make_sessions(n_sessions));
    service::LoopbackTransport loopback;
    server.start(loopback);

    CellResult cell;
    cell.clients = n_clients;
    cell.sessions = n_sessions;

    std::vector<std::vector<double>> light_us(
        static_cast<std::size_t>(n_clients));
    std::vector<std::vector<double>> heavy_us(
        static_cast<std::size_t>(n_clients));
    std::vector<long> ok_counts(static_cast<std::size_t>(n_clients), 0);
    std::vector<long> err_counts(static_cast<std::size_t>(n_clients), 0);

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int c = 0; c < n_clients; ++c) {
        threads.emplace_back([&, c] {
            const auto ci = static_cast<std::size_t>(c);
            auto conn = loopback.connect();
            std::string line;
            for (int i = 0; i < reqs_per_client; ++i) {
                const bool heavy = (i % heavy_every) == heavy_every - 1;
                const int session = (c + i) % n_sessions;
                std::ostringstream req;
                if (heavy) {
                    // measure_site reuses the session's cached map after
                    // the first scan: heavy enough to cross the fair
                    // queue + pool, cheap enough for the smoke budget.
                    req << R"({"id":)" << i
                        << R"(,"method":"measure_site","params":{"session":)"
                        << session << R"(,"site":)" << (i % 4) << "}}";
                } else if (i % 3 == 0) {
                    req << R"({"id":)" << i
                        << R"(,"method":"query","params":{"path":"pool.queue_depth"}})";
                } else {
                    req << R"({"id":)" << i << R"(,"method":"ping"})";
                }
                const auto r0 = std::chrono::steady_clock::now();
                if (!conn->write_line(req.str()) || !conn->read_line(line)) {
                    ++err_counts[ci];
                    break;
                }
                const double us = 1e6 * seconds_since(r0);
                (heavy ? heavy_us : light_us)[ci].push_back(us);
                auto parsed = service::Json::parse(line);
                const bool ok = parsed.value &&
                                parsed.value->at("ok").as_bool(false);
                ++(ok ? ok_counts : err_counts)[ci];
            }
            conn->close();
        });
    }
    for (auto& t : threads) t.join();
    cell.wall_s = seconds_since(t0);

    server.request_shutdown();
    server.wait();

    std::vector<double> all_light;
    std::vector<double> all_heavy;
    for (int c = 0; c < n_clients; ++c) {
        const auto ci = static_cast<std::size_t>(c);
        all_light.insert(all_light.end(), light_us[ci].begin(), light_us[ci].end());
        all_heavy.insert(all_heavy.end(), heavy_us[ci].begin(), heavy_us[ci].end());
        cell.ok += ok_counts[ci];
        cell.errors += err_counts[ci];
    }
    cell.requests = cell.ok + cell.errors;
    cell.req_per_s =
        cell.wall_s > 0.0 ? static_cast<double>(cell.requests) / cell.wall_s : 0.0;
    cell.light = quantiles_us(all_light);
    cell.heavy = quantiles_us(all_heavy);
    return cell;
}

/// Blocks for the response line carrying `id` (events skipped).
bool await_response(service::Connection& conn, std::int64_t id,
                    service::Json& out) {
    std::string line;
    while (conn.read_line(line)) {
        auto parsed = service::Json::parse(line);
        if (!parsed.value || !parsed.value->is_object()) continue;
        if (parsed.value->contains("event")) continue;
        if (parsed.value->at("id").as_int64(-1) != id) continue;
        out = std::move(*parsed.value);
        return true;
    }
    return false;
}

/// Spins until the server's scheduler and pool fully drained.
bool wait_drained(service::Server& server, std::chrono::seconds budget) {
    const auto give_up = std::chrono::steady_clock::now() + budget;
    while (std::chrono::steady_clock::now() < give_up) {
        if (server.scheduler().queued() == 0 &&
            server.scheduler().executing() == 0 &&
            server.pool().queue_depth() == 0 && server.pool().inflight() == 0) {
            return true;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return false;
}

struct CancelLatencyResult {
    std::vector<double> latency_ms; ///< cancel send -> typed answer.
    int rounds = 0;
    int cancelled_ok = 0; ///< Rounds answered with the typed `cancelled`.
    int drained_ok = 0;   ///< Rounds after which the pool fully drained.
};

/// Round-trips `rounds` cancellations of a long transistor-level sweep:
/// admit the sweep, wait until it executes, then time cancel -> typed
/// answer. After each round the pool must drain to zero.
CancelLatencyResult run_cancel_latency(int rounds) {
    service::ServerConfig cfg;
    cfg.threads = 2;
    service::Server server(cfg, make_sessions(1));
    service::LoopbackTransport loopback;
    server.start(loopback);

    CancelLatencyResult result;
    result.rounds = rounds;
    auto conn = loopback.connect();
    for (int r = 0; r < rounds; ++r) {
        const std::int64_t sweep_id = 100 + 2 * r;
        const std::int64_t cancel_id = sweep_id + 1;
        std::ostringstream sweep;
        sweep << R"({"id":)" << sweep_id
              << R"(,"method":"sweep","params":{"t_min_c":-40,"t_max_c":140,)"
              << R"("points":400,"engine":"spice"}})";
        if (!conn->write_line(sweep.str())) break;

        // Admitted and dispatched: a worker is inside the sweep now.
        const auto admit_deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(10);
        while (server.scheduler().executing() == 0 &&
               std::chrono::steady_clock::now() < admit_deadline) {
            std::this_thread::sleep_for(std::chrono::microseconds(100));
        }

        std::ostringstream cancel;
        cancel << R"({"id":)" << cancel_id
               << R"(,"method":"cancel","params":{"request":)" << sweep_id
               << "}}";
        const auto c0 = std::chrono::steady_clock::now();
        if (!conn->write_line(cancel.str())) break;

        service::Json sweep_resp;
        service::Json cancel_resp;
        if (!await_response(*conn, cancel_id, cancel_resp) ||
            !await_response(*conn, sweep_id, sweep_resp)) {
            break;
        }
        result.latency_ms.push_back(1e3 * seconds_since(c0));
        const bool typed =
            !sweep_resp.at("ok").as_bool(true) &&
            sweep_resp.at("error").at("code").as_string() == "cancelled";
        result.cancelled_ok += typed ? 1 : 0;
        result.drained_ok +=
            wait_drained(server, std::chrono::seconds(10)) ? 1 : 0;
    }
    conn->close();
    server.request_shutdown();
    server.wait();
    return result;
}

struct CancelChaosResult {
    int rounds = 0;
    int cancelled = 0;       ///< Rounds the storm actually cancelled.
    int torn_checkpoints = 0;///< Checkpoint rows dropped at resume.
    int resume_mismatches = 0;///< Resumed series != uninterrupted series.
    int leaked_rounds = 0;   ///< Rounds whose pool failed to drain.
};

/// The seeded cancel-chaos matrix: for every (seed, p) cell a
/// checkpointed parallel sweep runs under a CancelStorm that fires the
/// sweep token at deterministic dispatch indices. Whatever the storm
/// does, the checkpoint must stay loadable (zero corrupt rows) and the
/// re-issued sweep must finish bitwise identical to an uninterrupted
/// run.
CancelChaosResult run_cancel_chaos(const std::vector<std::uint64_t>& seeds,
                                   const std::vector<double>& storm_ps) {
    const auto tech = phys::cmos350();
    const auto config = ring::RingConfig::uniform(cells::CellKind::Inv, 5, 2.75);
    const auto grid = ring::paper_temperature_grid_c();
    const auto baseline =
        ring::temperature_sweep(tech, config, grid, ring::Engine::Analytic, {},
                                ring::SweepRuntime::serial());
    auto& corrupt =
        exec::MetricsRegistry::global().counter("exec.checkpoint.corrupt_rows");

    CancelChaosResult result;
    for (const std::uint64_t seed : seeds) {
        for (const double p : storm_ps) {
            ++result.rounds;
            const std::string ckpt_path = "bench_cancel_chaos_" +
                                          std::to_string(seed) + ".ckpt";
            std::remove(ckpt_path.c_str());

            exec::ThreadPool pool(2);
            {
                exec::FaultInjector::Config fc;
                fc.seed = seed;
                fc.p_cancel_storm = p;
                exec::FaultInjector injector(fc);
                exec::FaultInjector::Scope scope(injector);

                ring::SweepRuntime rt;
                rt.pool = &pool;
                rt.use_cache = false;
                rt.checkpoint_path = ckpt_path;
                rt.checkpoint_every = 1;
                rt.keep_checkpoint = true;
                rt.cancel = exec::CancelToken::make();
                try {
                    ring::temperature_sweep(tech, config, grid,
                                            ring::Engine::Analytic, {}, rt);
                } catch (const exec::CancelledError&) {
                    ++result.cancelled;
                }
            }
            const auto drain_deadline =
                std::chrono::steady_clock::now() + std::chrono::seconds(5);
            while ((pool.queue_depth() != 0 || pool.inflight() != 0) &&
                   std::chrono::steady_clock::now() < drain_deadline) {
                std::this_thread::yield();
            }
            if (pool.queue_depth() != 0 || pool.inflight() != 0) {
                ++result.leaked_rounds;
            }

            // Resume without the injector: corrupt checkpoint rows would
            // be dropped (and counted) here, a value drift shows up in
            // the bitwise compare.
            const std::uint64_t corrupt_before = corrupt.value();
            ring::SweepRuntime resume = ring::SweepRuntime::serial();
            resume.checkpoint_path = ckpt_path;
            const auto resumed = ring::temperature_sweep(
                tech, config, grid, ring::Engine::Analytic, {}, resume);
            if (corrupt.value() != corrupt_before) ++result.torn_checkpoints;
            bool mismatch = resumed.period_s.size() != baseline.period_s.size();
            for (std::size_t i = 0; !mismatch && i < baseline.period_s.size();
                 ++i) {
                mismatch = std::bit_cast<std::uint64_t>(resumed.period_s[i]) !=
                           std::bit_cast<std::uint64_t>(baseline.period_s[i]);
            }
            if (mismatch) ++result.resume_mismatches;
            std::remove(ckpt_path.c_str());
        }
    }
    return result;
}

} // namespace

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    const bool quick = cli.has("quick");
    bench::banner("SERVICE",
                  std::string("telemetry daemon: dispatch cost and loopback "
                              "throughput") +
                      (quick ? " (quick)" : ""));

    // --- 1. inline dispatch cost (no transport, no scheduler) -------------
    const int inline_iters = quick ? 2000 : 20000;
    service::ServerConfig icfg;
    icfg.threads = 2;
    service::Server inline_server(icfg, make_sessions(1));
    std::vector<double> ping_us;
    std::vector<double> query_us;
    long inline_ok = 0;
    for (int i = 0; i < inline_iters; ++i) {
        const bool query = (i % 2) == 1;
        const std::string req =
            query
                ? R"({"id":1,"method":"query","params":{"path":"cache.hit_rate"}})"
                : R"({"id":1,"method":"ping"})";
        const auto r0 = std::chrono::steady_clock::now();
        const std::string resp = inline_server.handle_inline(req);
        const double us = 1e6 * seconds_since(r0);
        (query ? query_us : ping_us).push_back(us);
        auto parsed = service::Json::parse(resp);
        if (parsed.value && parsed.value->at("ok").as_bool(false)) ++inline_ok;
    }
    const Quantiles ping_q = quantiles_us(ping_us);
    const Quantiles query_q = quantiles_us(query_us);

    util::Table inline_table({"inline request", "p50 (us)", "p95 (us)", "max (us)"});
    inline_table.add_row({"ping", util::fixed(ping_q.p50_us, 1),
                          util::fixed(ping_q.p95_us, 1),
                          util::fixed(ping_q.max_us, 1)});
    inline_table.add_row({"query cache.hit_rate", util::fixed(query_q.p50_us, 1),
                          util::fixed(query_q.p95_us, 1),
                          util::fixed(query_q.max_us, 1)});
    std::cout << "inline dispatch (" << inline_iters << " requests, no transport):\n"
              << inline_table.render() << "\n";

    // --- 2. loopback throughput matrix ------------------------------------
    const std::vector<int> client_counts = quick ? std::vector<int>{1, 2}
                                                 : std::vector<int>{1, 2, 4};
    const std::vector<int> session_counts = quick ? std::vector<int>{1}
                                                  : std::vector<int>{1, 4};
    const int reqs_per_client = cli.get("requests", quick ? 60 : 400);
    const int heavy_every = 10;

    std::vector<CellResult> cells;
    util::Table matrix({"clients", "sessions", "requests", "req/s",
                        "light p50 (us)", "light p95 (us)", "heavy p95 (us)",
                        "errors"});
    for (int s : session_counts) {
        for (int c : client_counts) {
            const CellResult cell = run_cell(c, s, reqs_per_client, heavy_every);
            matrix.add_row({std::to_string(cell.clients),
                            std::to_string(cell.sessions),
                            std::to_string(cell.requests),
                            util::fixed(cell.req_per_s, 0),
                            util::fixed(cell.light.p50_us, 1),
                            util::fixed(cell.light.p95_us, 1),
                            util::fixed(cell.heavy.p95_us, 1),
                            std::to_string(cell.errors)});
            cells.push_back(cell);
        }
    }
    std::cout << "loopback matrix (" << reqs_per_client
              << " requests per client, 1 heavy per " << heavy_every << "):\n"
              << matrix.render();

    long total_requests = 0;
    long total_errors = 0;
    for (const auto& cell : cells) {
        total_requests += cell.requests;
        total_errors += cell.errors;
    }

    // --- 3. cancel latency -------------------------------------------------
    const int cancel_rounds = cli.get("cancel-rounds", quick ? 3 : 10);
    CancelLatencyResult cancel = run_cancel_latency(cancel_rounds);
    std::vector<double> cancel_us;
    for (double ms : cancel.latency_ms) cancel_us.push_back(ms * 1e3);
    const Quantiles cancel_q = quantiles_us(cancel_us);
    util::Table cancel_table(
        {"cancel rounds", "typed answers", "drained", "p50 (ms)", "max (ms)"});
    cancel_table.add_row({std::to_string(cancel.rounds),
                          std::to_string(cancel.cancelled_ok),
                          std::to_string(cancel.drained_ok),
                          util::fixed(cancel_q.p50_us / 1e3, 2),
                          util::fixed(cancel_q.max_us / 1e3, 2)});
    std::cout << "\nmid-flight sweep cancellation (spice, 400 points):\n"
              << cancel_table.render();

    // --- 4. seeded cancel-chaos matrix -------------------------------------
    const std::vector<std::uint64_t> chaos_seeds =
        quick ? std::vector<std::uint64_t>{1, 2}
              : std::vector<std::uint64_t>{1, 2, 3, 4, 5};
    const std::vector<double> chaos_ps =
        quick ? std::vector<double>{0.05} : std::vector<double>{0.02, 0.1};
    const CancelChaosResult chaos = run_cancel_chaos(chaos_seeds, chaos_ps);
    util::Table chaos_table({"chaos rounds", "cancelled", "torn ckpts",
                             "resume mismatches", "leaked rounds"});
    chaos_table.add_row({std::to_string(chaos.rounds),
                         std::to_string(chaos.cancelled),
                         std::to_string(chaos.torn_checkpoints),
                         std::to_string(chaos.resume_mismatches),
                         std::to_string(chaos.leaked_rounds)});
    std::cout << "\nseeded cancel-chaos matrix (CancelStorm x checkpoints):\n"
              << chaos_table.render();

    // --- JSON snapshot -----------------------------------------------------
    const std::string json_path =
        cli.get("json", std::string("BENCH_service.json"));
    {
        std::ofstream json(json_path);
        json << "{\n"
             << "  \"workload\": \"telemetry_service_loopback\",\n"
             << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
             << "  \"inline_requests\": " << inline_iters << ",\n"
             << "  \"inline_ping_p50_us\": " << ping_q.p50_us << ",\n"
             << "  \"inline_ping_p95_us\": " << ping_q.p95_us << ",\n"
             << "  \"inline_query_p50_us\": " << query_q.p50_us << ",\n"
             << "  \"inline_query_p95_us\": " << query_q.p95_us << ",\n"
             << "  \"requests_per_client\": " << reqs_per_client << ",\n"
             << "  \"matrix\": [\n";
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const auto& cell = cells[i];
            json << "    {\"clients\": " << cell.clients
                 << ", \"sessions\": " << cell.sessions
                 << ", \"requests\": " << cell.requests
                 << ", \"req_per_s\": " << cell.req_per_s
                 << ", \"light_p50_us\": " << cell.light.p50_us
                 << ", \"light_p95_us\": " << cell.light.p95_us
                 << ", \"heavy_p50_us\": " << cell.heavy.p50_us
                 << ", \"heavy_p95_us\": " << cell.heavy.p95_us
                 << ", \"errors\": " << cell.errors << "}"
                 << (i + 1 < cells.size() ? "," : "") << "\n";
        }
        json << "  ],\n"
             << "  \"cancel_rounds\": " << cancel.rounds << ",\n"
             << "  \"cancel_typed_answers\": " << cancel.cancelled_ok << ",\n"
             << "  \"cancel_drained_rounds\": " << cancel.drained_ok << ",\n"
             << "  \"cancel_latency_p50_ms\": " << cancel_q.p50_us / 1e3 << ",\n"
             << "  \"cancel_latency_max_ms\": " << cancel_q.max_us / 1e3 << ",\n"
             << "  \"chaos_rounds\": " << chaos.rounds << ",\n"
             << "  \"chaos_cancelled\": " << chaos.cancelled << ",\n"
             << "  \"chaos_torn_checkpoints\": " << chaos.torn_checkpoints << ",\n"
             << "  \"chaos_resume_mismatches\": " << chaos.resume_mismatches << ",\n"
             << "  \"chaos_leaked_rounds\": " << chaos.leaked_rounds << "\n"
             << "}\n";
    }
    std::cout << "service snapshot: " << json_path << "\n";

    // --- shape checks ------------------------------------------------------
    bench::ShapeChecks checks;
    checks.expect("every inline request answered ok",
                  inline_ok == inline_iters);
    checks.expect("every matrix request answered ok (no drops, no errors)",
                  total_errors == 0);
    checks.expect("matrix request count matches what the clients sent",
                  [&] {
                      long expected = 0;
                      for (const auto& cell : cells)
                          expected += static_cast<long>(cell.clients) *
                                      reqs_per_client;
                      return total_requests == expected;
                  }());
    checks.expect("inline ping p50 under 1 ms (dispatch is cheap)",
                  ping_q.p50_us < 1000.0);
    checks.expect("light-request p95 stays under 250 ms in every cell "
                  "(no starvation behind heavy work)",
                  [&] {
                      for (const auto& cell : cells)
                          if (cell.light.p95_us >= 250000.0) return false;
                      return true;
                  }());
    checks.expect("every cancel round answered with the typed `cancelled`",
                  cancel.cancelled_ok == cancel.rounds);
    checks.expect("mid-flight sweep cancels within 50 ms (median)",
                  !cancel.latency_ms.empty() && cancel_q.p50_us / 1e3 <= 50.0);
    checks.expect("zero leaked pool tasks after every cancel "
                  "(queue_depth and inflight drain to 0)",
                  cancel.drained_ok == cancel.rounds);
    checks.expect("cancel chaos: the storm cancelled at least one round",
                  chaos.cancelled > 0);
    checks.expect("cancel chaos: no torn checkpoints across the matrix",
                  chaos.torn_checkpoints == 0);
    checks.expect("cancel chaos: every cancelled run resumed bitwise",
                  chaos.resume_mismatches == 0);
    checks.expect("cancel chaos: every round drained its pool",
                  chaos.leaked_rounds == 0);
    return checks.report();
}
