// SERVICE — the telemetry daemon's dispatch cost and sustained request
// throughput. Three measurements over the in-process loopback transport
// (the same protocol stack a socket client exercises, minus OS socket
// noise):
//
//   1. inline dispatch: parse -> registry -> render for a light method
//      (ping) and an object-model query, via Server::handle_inline.
//   2. throughput matrix: C concurrent clients x S sessions pushing a
//      mixed light/heavy request stream end-to-end through the fair
//      queue and the pool; requests/sec plus p50/p95 round-trip latency
//      per cell.
//   3. admission sanity: every request in the matrix is answered ok —
//      fairness must not cost correctness.
//
// `--quick 1` trims the matrix and the per-client request count (the
// tier-1 smoke budget); the full run writes BENCH_service.json.
#include "bench_common.hpp"

#include "service/server.hpp"
#include "service/transport.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace stsense;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
        .count();
}

/// Small die so the heavy requests stay inside the smoke budget.
service::SessionSpec small_session(const std::string& name) {
    service::SessionSpec spec;
    spec.name = name;
    spec.monitor.grid_nx = 12;
    spec.monitor.grid_ny = 12;
    spec.sites_nx = 2;
    spec.sites_ny = 2;
    return spec;
}

std::vector<service::SessionSpec> make_sessions(int n) {
    std::vector<service::SessionSpec> specs;
    for (int i = 0; i < n; ++i)
        specs.push_back(small_session("die-" + std::to_string(i)));
    return specs;
}

struct Quantiles {
    double p50_us = 0.0;
    double p95_us = 0.0;
    double max_us = 0.0;
};

Quantiles quantiles_us(std::vector<double>& lat_us) {
    Quantiles q;
    if (lat_us.empty()) return q;
    std::sort(lat_us.begin(), lat_us.end());
    q.p50_us = lat_us[lat_us.size() / 2];
    q.p95_us = lat_us[(lat_us.size() * 95) / 100];
    q.max_us = lat_us.back();
    return q;
}

struct CellResult {
    int clients = 0;
    int sessions = 0;
    long requests = 0;
    long ok = 0;
    long errors = 0;
    double wall_s = 0.0;
    double req_per_s = 0.0;
    Quantiles light;
    Quantiles heavy;
};

/// One matrix cell: a fresh server with `n_sessions` dies, `n_clients`
/// loopback clients each sending `reqs_per_client` requests (one heavy
/// request per `heavy_every` light ones), every round-trip timed.
CellResult run_cell(int n_clients, int n_sessions, int reqs_per_client,
                    int heavy_every) {
    service::ServerConfig cfg;
    cfg.threads = 2;
    service::Server server(cfg, make_sessions(n_sessions));
    service::LoopbackTransport loopback;
    server.start(loopback);

    CellResult cell;
    cell.clients = n_clients;
    cell.sessions = n_sessions;

    std::vector<std::vector<double>> light_us(
        static_cast<std::size_t>(n_clients));
    std::vector<std::vector<double>> heavy_us(
        static_cast<std::size_t>(n_clients));
    std::vector<long> ok_counts(static_cast<std::size_t>(n_clients), 0);
    std::vector<long> err_counts(static_cast<std::size_t>(n_clients), 0);

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int c = 0; c < n_clients; ++c) {
        threads.emplace_back([&, c] {
            const auto ci = static_cast<std::size_t>(c);
            auto conn = loopback.connect();
            std::string line;
            for (int i = 0; i < reqs_per_client; ++i) {
                const bool heavy = (i % heavy_every) == heavy_every - 1;
                const int session = (c + i) % n_sessions;
                std::ostringstream req;
                if (heavy) {
                    // measure_site reuses the session's cached map after
                    // the first scan: heavy enough to cross the fair
                    // queue + pool, cheap enough for the smoke budget.
                    req << R"({"id":)" << i
                        << R"(,"method":"measure_site","params":{"session":)"
                        << session << R"(,"site":)" << (i % 4) << "}}";
                } else if (i % 3 == 0) {
                    req << R"({"id":)" << i
                        << R"(,"method":"query","params":{"path":"pool.queue_depth"}})";
                } else {
                    req << R"({"id":)" << i << R"(,"method":"ping"})";
                }
                const auto r0 = std::chrono::steady_clock::now();
                if (!conn->write_line(req.str()) || !conn->read_line(line)) {
                    ++err_counts[ci];
                    break;
                }
                const double us = 1e6 * seconds_since(r0);
                (heavy ? heavy_us : light_us)[ci].push_back(us);
                auto parsed = service::Json::parse(line);
                const bool ok = parsed.value &&
                                parsed.value->at("ok").as_bool(false);
                ++(ok ? ok_counts : err_counts)[ci];
            }
            conn->close();
        });
    }
    for (auto& t : threads) t.join();
    cell.wall_s = seconds_since(t0);

    server.request_shutdown();
    server.wait();

    std::vector<double> all_light;
    std::vector<double> all_heavy;
    for (int c = 0; c < n_clients; ++c) {
        const auto ci = static_cast<std::size_t>(c);
        all_light.insert(all_light.end(), light_us[ci].begin(), light_us[ci].end());
        all_heavy.insert(all_heavy.end(), heavy_us[ci].begin(), heavy_us[ci].end());
        cell.ok += ok_counts[ci];
        cell.errors += err_counts[ci];
    }
    cell.requests = cell.ok + cell.errors;
    cell.req_per_s =
        cell.wall_s > 0.0 ? static_cast<double>(cell.requests) / cell.wall_s : 0.0;
    cell.light = quantiles_us(all_light);
    cell.heavy = quantiles_us(all_heavy);
    return cell;
}

} // namespace

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    const bool quick = cli.has("quick");
    bench::banner("SERVICE",
                  std::string("telemetry daemon: dispatch cost and loopback "
                              "throughput") +
                      (quick ? " (quick)" : ""));

    // --- 1. inline dispatch cost (no transport, no scheduler) -------------
    const int inline_iters = quick ? 2000 : 20000;
    service::ServerConfig icfg;
    icfg.threads = 2;
    service::Server inline_server(icfg, make_sessions(1));
    std::vector<double> ping_us;
    std::vector<double> query_us;
    long inline_ok = 0;
    for (int i = 0; i < inline_iters; ++i) {
        const bool query = (i % 2) == 1;
        const std::string req =
            query
                ? R"({"id":1,"method":"query","params":{"path":"cache.hit_rate"}})"
                : R"({"id":1,"method":"ping"})";
        const auto r0 = std::chrono::steady_clock::now();
        const std::string resp = inline_server.handle_inline(req);
        const double us = 1e6 * seconds_since(r0);
        (query ? query_us : ping_us).push_back(us);
        auto parsed = service::Json::parse(resp);
        if (parsed.value && parsed.value->at("ok").as_bool(false)) ++inline_ok;
    }
    const Quantiles ping_q = quantiles_us(ping_us);
    const Quantiles query_q = quantiles_us(query_us);

    util::Table inline_table({"inline request", "p50 (us)", "p95 (us)", "max (us)"});
    inline_table.add_row({"ping", util::fixed(ping_q.p50_us, 1),
                          util::fixed(ping_q.p95_us, 1),
                          util::fixed(ping_q.max_us, 1)});
    inline_table.add_row({"query cache.hit_rate", util::fixed(query_q.p50_us, 1),
                          util::fixed(query_q.p95_us, 1),
                          util::fixed(query_q.max_us, 1)});
    std::cout << "inline dispatch (" << inline_iters << " requests, no transport):\n"
              << inline_table.render() << "\n";

    // --- 2. loopback throughput matrix ------------------------------------
    const std::vector<int> client_counts = quick ? std::vector<int>{1, 2}
                                                 : std::vector<int>{1, 2, 4};
    const std::vector<int> session_counts = quick ? std::vector<int>{1}
                                                  : std::vector<int>{1, 4};
    const int reqs_per_client = cli.get("requests", quick ? 60 : 400);
    const int heavy_every = 10;

    std::vector<CellResult> cells;
    util::Table matrix({"clients", "sessions", "requests", "req/s",
                        "light p50 (us)", "light p95 (us)", "heavy p95 (us)",
                        "errors"});
    for (int s : session_counts) {
        for (int c : client_counts) {
            const CellResult cell = run_cell(c, s, reqs_per_client, heavy_every);
            matrix.add_row({std::to_string(cell.clients),
                            std::to_string(cell.sessions),
                            std::to_string(cell.requests),
                            util::fixed(cell.req_per_s, 0),
                            util::fixed(cell.light.p50_us, 1),
                            util::fixed(cell.light.p95_us, 1),
                            util::fixed(cell.heavy.p95_us, 1),
                            std::to_string(cell.errors)});
            cells.push_back(cell);
        }
    }
    std::cout << "loopback matrix (" << reqs_per_client
              << " requests per client, 1 heavy per " << heavy_every << "):\n"
              << matrix.render();

    long total_requests = 0;
    long total_errors = 0;
    for (const auto& cell : cells) {
        total_requests += cell.requests;
        total_errors += cell.errors;
    }

    // --- JSON snapshot -----------------------------------------------------
    const std::string json_path =
        cli.get("json", std::string("BENCH_service.json"));
    {
        std::ofstream json(json_path);
        json << "{\n"
             << "  \"workload\": \"telemetry_service_loopback\",\n"
             << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
             << "  \"inline_requests\": " << inline_iters << ",\n"
             << "  \"inline_ping_p50_us\": " << ping_q.p50_us << ",\n"
             << "  \"inline_ping_p95_us\": " << ping_q.p95_us << ",\n"
             << "  \"inline_query_p50_us\": " << query_q.p50_us << ",\n"
             << "  \"inline_query_p95_us\": " << query_q.p95_us << ",\n"
             << "  \"requests_per_client\": " << reqs_per_client << ",\n"
             << "  \"matrix\": [\n";
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const auto& cell = cells[i];
            json << "    {\"clients\": " << cell.clients
                 << ", \"sessions\": " << cell.sessions
                 << ", \"requests\": " << cell.requests
                 << ", \"req_per_s\": " << cell.req_per_s
                 << ", \"light_p50_us\": " << cell.light.p50_us
                 << ", \"light_p95_us\": " << cell.light.p95_us
                 << ", \"heavy_p50_us\": " << cell.heavy.p50_us
                 << ", \"heavy_p95_us\": " << cell.heavy.p95_us
                 << ", \"errors\": " << cell.errors << "}"
                 << (i + 1 < cells.size() ? "," : "") << "\n";
        }
        json << "  ]\n}\n";
    }
    std::cout << "service snapshot: " << json_path << "\n";

    // --- shape checks ------------------------------------------------------
    bench::ShapeChecks checks;
    checks.expect("every inline request answered ok",
                  inline_ok == inline_iters);
    checks.expect("every matrix request answered ok (no drops, no errors)",
                  total_errors == 0);
    checks.expect("matrix request count matches what the clients sent",
                  [&] {
                      long expected = 0;
                      for (const auto& cell : cells)
                          expected += static_cast<long>(cell.clients) *
                                      reqs_per_client;
                      return total_requests == expected;
                  }());
    checks.expect("inline ping p50 under 1 ms (dispatch is cheap)",
                  ping_q.p50_us < 1000.0);
    checks.expect("light-request p95 stays under 250 ms in every cell "
                  "(no starvation behind heavy work)",
                  [&] {
                      for (const auto& cell : cells)
                          if (cell.light.p95_us >= 250000.0) return false;
                      return true;
                  }());
    return checks.report();
}
