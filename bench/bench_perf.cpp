// PERF — google-benchmark microbenchmarks of the simulation kernels:
// MOSFET evaluation, Newton DC solves, transient steps, full ring
// simulations vs stage count, analytic sweeps (serial vs pool vs
// cached), and the thermal solver.
#include <benchmark/benchmark.h>

#include "analysis/nonlinearity.hpp"
#include "cells/cell_netlist.hpp"
#include "exec/exec.hpp"
#include "obs/trace.hpp"
#include "phys/technology.hpp"
#include "ring/analytic.hpp"
#include "ring/spice_ring.hpp"
#include "ring/sweep.hpp"
#include "spice/simulator.hpp"
#include "thermal/floorplan.hpp"
#include "thermal/grid.hpp"

using namespace stsense;

namespace {

void BM_MosfetEvaluate(benchmark::State& state) {
    const auto tech = phys::cmos350();
    const phys::MosGeometry g{1e-6, tech.lmin};
    double vds = 0.0;
    for (auto _ : state) {
        vds += 1e-3;
        if (vds > 3.3) vds = 0.0;
        benchmark::DoNotOptimize(phys::evaluate(tech.nmos, g, 3.3, vds, 350.0));
    }
}
BENCHMARK(BM_MosfetEvaluate);

void BM_InverterDcOp(benchmark::State& state) {
    const auto tech = phys::cmos350();
    spice::Circuit c;
    const auto vdd = c.add_driven_node("vdd", spice::Source::dc(tech.vdd));
    const auto in = c.add_driven_node("in", spice::Source::dc(0.5 * tech.vdd));
    const auto out = c.add_node("out");
    cells::CellSpec spec;
    emit_cell(c, tech, spec, vdd, in, out, "dut");
    for (auto _ : state) {
        spice::Simulator sim(c);
        benchmark::DoNotOptimize(sim.dc_operating_point());
    }
}
BENCHMARK(BM_InverterDcOp);

void BM_RingTransient(benchmark::State& state) {
    const auto n = static_cast<int>(state.range(0));
    const auto tech = phys::cmos350();
    const ring::SpiceRingModel model(
        tech, ring::RingConfig::uniform(cells::CellKind::Inv, n, 2.5));
    ring::SpiceRingOptions opt;
    opt.skip_cycles = 2;
    opt.measure_cycles = 4;
    opt.steps_per_period = 200;
    opt.record_waveform = false;
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.simulate(300.0, opt));
    }
    state.SetLabel(std::to_string(n) + " stages");
}
BENCHMARK(BM_RingTransient)->Arg(5)->Arg(9)->Arg(21);

void BM_AnalyticPeriod(benchmark::State& state) {
    const auto tech = phys::cmos350();
    const ring::AnalyticRingModel model(
        tech, ring::RingConfig::uniform(cells::CellKind::Inv, 5, 2.5));
    double t = 250.0;
    for (auto _ : state) {
        t += 1.0;
        if (t > 420.0) t = 250.0;
        benchmark::DoNotOptimize(model.period(t));
    }
}
BENCHMARK(BM_AnalyticPeriod);

void BM_PaperSweepAnalytic(benchmark::State& state) {
    const auto tech = phys::cmos350();
    const auto cfg = ring::RingConfig::uniform(cells::CellKind::Inv, 5, 2.5);
    for (auto _ : state) {
        const auto sw = ring::paper_sweep(tech, cfg, ring::Engine::Analytic, {},
                                          ring::SweepRuntime::serial());
        benchmark::DoNotOptimize(
            analysis::max_nonlinearity_percent(sw.temps_c, sw.period_s));
    }
}
BENCHMARK(BM_PaperSweepAnalytic);

void BM_PaperSweepAnalyticCached(benchmark::State& state) {
    // Same sweep through a memoizing runtime: after the first iteration
    // every call is a cache hit — the speedup over BM_PaperSweepAnalytic
    // is the cache's win on repeated sweeps.
    const auto tech = phys::cmos350();
    const auto cfg = ring::RingConfig::uniform(cells::CellKind::Inv, 5, 2.5);
    exec::ResultCache cache;
    ring::SweepRuntime rt;
    rt.cache = &cache;
    rt.parallel = false;
    for (auto _ : state) {
        const auto sw = ring::paper_sweep(tech, cfg, ring::Engine::Analytic, {}, rt);
        benchmark::DoNotOptimize(sw.period_s.data());
    }
    state.SetLabel("hit rate " +
                   std::to_string(100.0 * cache.stats().hit_rate()).substr(0, 5) + "%");
}
BENCHMARK(BM_PaperSweepAnalyticCached);

void BM_SpiceSweepSerial(benchmark::State& state) {
    const auto tech = phys::cmos350();
    const auto cfg = ring::RingConfig::uniform(cells::CellKind::Inv, 3, 2.5);
    const std::vector<double> grid{-50.0, 0.0, 50.0, 100.0, 150.0};
    ring::SpiceRingOptions opt;
    opt.skip_cycles = 1;
    opt.measure_cycles = 2;
    opt.steps_per_period = 80;
    for (auto _ : state) {
        benchmark::DoNotOptimize(ring::temperature_sweep(
            tech, cfg, grid, ring::Engine::Spice, opt, ring::SweepRuntime::serial()));
    }
}
BENCHMARK(BM_SpiceSweepSerial);

void BM_SpiceSweepParallel(benchmark::State& state) {
    // Identical work fanned out point-per-task; compare against
    // BM_SpiceSweepSerial for the pool's speedup at this thread count.
    const auto threads = static_cast<int>(state.range(0));
    const auto tech = phys::cmos350();
    const auto cfg = ring::RingConfig::uniform(cells::CellKind::Inv, 3, 2.5);
    const std::vector<double> grid{-50.0, 0.0, 50.0, 100.0, 150.0};
    ring::SpiceRingOptions opt;
    opt.skip_cycles = 1;
    opt.measure_cycles = 2;
    opt.steps_per_period = 80;
    exec::ThreadPool pool(threads);
    ring::SweepRuntime rt;
    rt.pool = &pool;
    rt.use_cache = false;
    for (auto _ : state) {
        benchmark::DoNotOptimize(ring::temperature_sweep(
            tech, cfg, grid, ring::Engine::Spice, opt, rt));
    }
    state.SetLabel(std::to_string(threads) + " threads");
}
BENCHMARK(BM_SpiceSweepParallel)->Arg(2)->Arg(4);

void BM_SpanDisabled(benchmark::State& state) {
    // The cost the instrumentation adds to an untraced hot loop: one
    // relaxed atomic load and a branch per span. This is the number
    // behind the "< 2 % disabled overhead" claim — compare against
    // BM_MosfetEvaluate, the cheapest real operation a span wraps.
    obs::Tracer::global().disable();
    for (auto _ : state) {
        OBS_SPAN("bench.disabled");
    }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
    // The traced cost: two clock reads plus a lock-free buffer push.
    obs::Tracer::global().set_capacity_per_thread(1u << 20);
    obs::Tracer::global().enable();
    std::uint64_t n = 0;
    for (auto _ : state) {
        OBS_SPAN("bench.enabled");
        // Keep the fixed-capacity buffer from saturating mid-run (a
        // full buffer drops, which would benchmark the cheaper path).
        if (++n % (1u << 19) == 0) {
            obs::Tracer::global().disable();
            obs::Tracer::global().enable();
        }
    }
    obs::Tracer::global().disable();
    obs::Tracer::global().reset();
    obs::Tracer::global().set_capacity_per_thread(1u << 17);
}
BENCHMARK(BM_SpanEnabled);

void BM_PaperSweepAnalyticTracingOff(benchmark::State& state) {
    // The full instrumented sweep with the gate closed. Compare against
    // BM_PaperSweepAnalytic (identical workload, same binary): any gap
    // beyond noise is the disabled-instrumentation overhead, gated
    // < 2 % by the acceptance criteria.
    obs::Tracer::global().disable();
    const auto tech = phys::cmos350();
    const auto cfg = ring::RingConfig::uniform(cells::CellKind::Inv, 5, 2.5);
    for (auto _ : state) {
        const auto sw = ring::paper_sweep(tech, cfg, ring::Engine::Analytic, {},
                                          ring::SweepRuntime::serial());
        benchmark::DoNotOptimize(
            analysis::max_nonlinearity_percent(sw.temps_c, sw.period_s));
    }
}
BENCHMARK(BM_PaperSweepAnalyticTracingOff);

void BM_PaperSweepAnalyticTracingOn(benchmark::State& state) {
    // The same sweep recorded: 17 point spans + 1 sweep span + cache
    // span per iteration. The gap vs BM_PaperSweepAnalyticTracingOff is
    // the *enabled* tracing cost (diagnostics runs only).
    obs::Tracer::global().set_capacity_per_thread(1u << 20);
    const auto tech = phys::cmos350();
    const auto cfg = ring::RingConfig::uniform(cells::CellKind::Inv, 5, 2.5);
    obs::Tracer::global().enable();
    std::uint64_t n = 0;
    for (auto _ : state) {
        if (++n % 1024 == 0) { // drain the fixed-capacity buffer
            obs::Tracer::global().disable();
            obs::Tracer::global().enable();
        }
        const auto sw = ring::paper_sweep(tech, cfg, ring::Engine::Analytic, {},
                                          ring::SweepRuntime::serial());
        benchmark::DoNotOptimize(
            analysis::max_nonlinearity_percent(sw.temps_c, sw.period_s));
    }
    obs::Tracer::global().disable();
    obs::Tracer::global().reset();
    obs::Tracer::global().set_capacity_per_thread(1u << 17);
}
BENCHMARK(BM_PaperSweepAnalyticTracingOn);

void BM_ThermalSteadyState(benchmark::State& state) {
    const auto n = static_cast<int>(state.range(0));
    const thermal::Floorplan fp = thermal::demo_floorplan();
    const thermal::ThermalGrid grid(n, n, fp.die_width(), fp.die_height());
    const auto power = fp.power_map(n, n);
    for (auto _ : state) {
        benchmark::DoNotOptimize(grid.steady_state(power));
    }
    state.SetLabel(std::to_string(n) + "x" + std::to_string(n));
}
BENCHMARK(BM_ThermalSteadyState)->Arg(16)->Arg(32)->Arg(64);

} // namespace

BENCHMARK_MAIN();
