// CLAIM-STAGES — reproduces the Section 2 text claim: "ring-oscillators
// with 5, 9 or 21 stages have similar characteristics in terms of
// linearity" (and quantifies what *does* change: period, power, area).
#include "bench_common.hpp"

#include "analysis/nonlinearity.hpp"
#include "ring/analytic.hpp"
#include "ring/sweep.hpp"
#include "sensor/presets.hpp"
#include "thermal/self_heating.hpp"
#include "util/cli.hpp"

#include <iostream>

using namespace stsense;

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    bench::banner("CLAIM-STAGES",
                  "linearity vs number of ring stages (paper: 5, 9, 21 are alike)");

    const auto tech = phys::technology_by_name(cli.get("tech", std::string("cmos350")));
    const double ratio = cli.get("ratio", 2.5);

    util::Table table({"stages", "max |NL| (%)", "period @27C (ps)",
                       "sensitivity (ps/K)", "power @27C (mW)"});
    std::vector<double> nls;
    // Extend the paper's {5, 9, 21} family with more odd counts.
    const std::vector<int> family{3, 5, 7, 9, 13, 21, 31, 51};
    for (int n : family) {
        const auto cfg = ring::RingConfig::uniform(cells::CellKind::Inv, n, ratio);
        const auto sw = ring::paper_sweep(tech, cfg);
        const double nl = analysis::max_nonlinearity_percent(sw.temps_c, sw.period_s);
        const ring::AnalyticRingModel m(tech, cfg);
        table.add_row({std::to_string(n), util::fixed(nl, 4),
                       util::fixed(m.period(300.15) * 1e12, 1),
                       util::fixed(m.sensitivity(300.15) * 1e12, 4),
                       util::fixed(thermal::ring_dynamic_power(tech, cfg, 300.15) * 1e3, 3)});
        nls.push_back(nl);
    }
    std::cout << table.render();

    // The paper family specifically.
    double nl5 = 0.0;
    double nl9 = 0.0;
    double nl21 = 0.0;
    for (std::size_t i = 0; i < family.size(); ++i) {
        if (family[i] == 5) nl5 = nls[i];
        if (family[i] == 9) nl9 = nls[i];
        if (family[i] == 21) nl21 = nls[i];
    }

    bench::ShapeChecks checks;
    checks.expect("5/9/21-stage rings agree in max |NL| to within 0.02 % abs",
                  std::abs(nl5 - nl9) < 0.02 && std::abs(nl5 - nl21) < 0.02);
    checks.expect("linearity is stage-count independent across the whole family",
                  [&] {
                      double lo = nls[0];
                      double hi = nls[0];
                      for (double v : nls) {
                          lo = std::min(lo, v);
                          hi = std::max(hi, v);
                      }
                      return hi - lo < 0.05;
                  }());
    checks.expect("period scales ~linearly with stage count (21/5 within 10 %)",
                  [&] {
                      const auto p = [&](int n) {
                          return ring::AnalyticRingModel(
                                     tech, ring::RingConfig::uniform(
                                               cells::CellKind::Inv, n, ratio))
                              .period(300.15);
                      };
                      const double r = p(21) / p(5);
                      return r > 0.9 * 21.0 / 5.0 && r < 1.1 * 21.0 / 5.0;
                  }());
    return checks.report();
}
