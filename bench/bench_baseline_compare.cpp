// BASE — the paper's motivation (Secs. 1-2): classical diode/PTAT
// sensors (Pentium 4, PowerPC TAU) vs the cell-based ring sensor.
// Runs both sensor styles over the same sweep and tabulates the
// quantitative and methodological comparison.
#include "bench_common.hpp"

#include "analysis/nonlinearity.hpp"
#include "baseline/diode_sensor.hpp"
#include "phys/units.hpp"
#include "ring/sweep.hpp"
#include "sensor/presets.hpp"
#include "sensor/smart_sensor.hpp"
#include "util/cli.hpp"

#include <cmath>
#include <iostream>

using namespace stsense;

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    bench::banner("BASE", "diode/PTAT baseline vs cell-based ring sensor");

    const auto tech = phys::technology_by_name(cli.get("tech", std::string("cmos350")));

    // Ring sensor (optimized ratio, default smart unit).
    sensor::SmartTemperatureSensor ringsens(
        tech, ring::RingConfig::uniform(cells::CellKind::Inv, 5, 2.75));
    ringsens.calibrate_two_point(0.0, 100.0);

    // Diode baseline.
    baseline::DiodeTemperatureSensor diode;
    diode.calibrate(0.0, 100.0);

    util::Table table({"T (degC)", "ring est (degC)", "ring err", "diode est (degC)",
                       "diode err"});
    double ring_worst = 0.0;
    double diode_worst = 0.0;
    for (double t = -50.0; t <= 150.0; t += 25.0) {
        const auto mr = ringsens.measure(t);
        const auto md = diode.measure(t);
        ring_worst = std::max(ring_worst, std::abs(mr.temperature_c - t));
        diode_worst = std::max(diode_worst, std::abs(md.temperature_c - t));
        table.add_row({util::fixed(t, 1), util::fixed(mr.temperature_c, 3),
                       util::fixed(mr.temperature_c - t, 3),
                       util::fixed(md.temperature_c, 3),
                       util::fixed(md.temperature_c - t, 3)});
    }
    std::cout << table.render();

    // Transducer linearity before any calibration.
    const auto sw = ring::paper_sweep(
        tech, ring::RingConfig::uniform(cells::CellKind::Inv, 5, 2.75));
    const double ring_nl =
        analysis::max_nonlinearity_percent(sw.temps_c, sw.period_s);
    std::vector<double> tt;
    std::vector<double> vv;
    for (double t = -50.0; t <= 150.0; t += 12.5) {
        tt.push_back(t);
        vv.push_back(baseline::ptat_voltage(baseline::DiodeParams{}, 10e-6, 1e-6,
                                            phys::celsius_to_kelvin(t)));
    }
    const double diode_nl = analysis::max_nonlinearity_percent(tt, vv);

    std::cout << "\ntransducer non-linearity over -50..150 degC: ring "
              << util::fixed(ring_nl, 4) << " % | PTAT " << util::sci(diode_nl, 2)
              << " %\n";

    std::cout << "\nmethodology comparison (the paper's actual argument):\n";
    util::Table mt({"criterion", "diode/PTAT sensor", "ring-oscillator sensor"});
    mt.add_row({"design style", "full-custom analogue", "standard cells only"});
    mt.add_row({"extra conversion", "needs ADC (analogue voltage)",
                "digital counter (native)"});
    mt.add_row({"synthesizable / portable", "no", "yes"});
    mt.add_row({"multi-site thermal mapping", "one ADC per site or analogue mux",
                "digital mux of N rings"});
    mt.add_row({"worst error after 2-pt cal",
                util::fixed(diode_worst, 3) + " degC",
                util::fixed(ring_worst, 3) + " degC"});
    std::cout << mt.render();

    bench::ShapeChecks checks;
    checks.expect("both sensors stay within 1 degC after two-point calibration",
                  ring_worst < 1.0 && diode_worst < 1.0);
    checks.expect("ideal PTAT transducer is (near) perfectly linear",
                  diode_nl < 1e-6);
    checks.expect("optimized ring transducer is < 0.2 % non-linear "
                  "(close enough for thermal testing, with no analogue design)",
                  ring_nl < 0.2);
    checks.expect("ring sensor accuracy is competitive (within 3x of diode)",
                  ring_worst < 3.0 * std::max(diode_worst, 0.1));
    return checks.report();
}
