// MISMATCH — within-die mismatch between the distributed rings and the
// calibration-flow trade-off: shared (one trim for all sensors) vs
// individual (per-sensor trim). Also demonstrates the width-vs-Vth
// mismatch asymmetry the model predicts: width mismatch cancels to first
// order around a ring, Vth mismatch does not.
#include "bench_common.hpp"

#include "ring/analytic.hpp"
#include "sensor/monitor.hpp"
#include "util/cli.hpp"

#include <cmath>
#include <iostream>

using namespace stsense;

namespace {

double period_spread_rel(const phys::Technology& tech,
                         const ring::RingConfig& base,
                         const ring::MismatchSpec& spec, int n,
                         std::uint64_t seed) {
    const double p0 = ring::AnalyticRingModel(tech, base).period(300.0);
    util::Rng rng(seed);
    double sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const auto varied = ring::sample_stage_mismatch(base, spec, rng);
        const double p = ring::AnalyticRingModel(tech, varied).period(300.0);
        sum_sq += (p - p0) * (p - p0);
    }
    return std::sqrt(sum_sq / n) / p0;
}

} // namespace

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    bench::banner("MISMATCH",
                  "within-die mismatch: period spread sources and the shared- "
                  "vs individual-calibration trade");

    const auto tech = phys::technology_by_name(cli.get("tech", std::string("cmos350")));
    const auto base = ring::RingConfig::uniform(cells::CellKind::Inv, 5, 2.75);

    std::cout << "period spread by mismatch source (100 rings each):\n";
    util::Table st({"source", "sigma", "rel period spread (%)"});
    double w_small = 0.0;
    double w_big = 0.0;
    double v_small = 0.0;
    double v_big = 0.0;
    {
        ring::MismatchSpec s;
        s.vth_sigma_v = 0.0;
        s.drive_sigma = 0.02;
        w_small = period_spread_rel(tech, base, s, 100, 1);
        st.add_row({"width/drive", "2 %", util::fixed(100.0 * w_small, 4)});
        s.drive_sigma = 0.08;
        w_big = period_spread_rel(tech, base, s, 100, 1);
        st.add_row({"width/drive", "8 %", util::fixed(100.0 * w_big, 4)});
        s.drive_sigma = 0.0;
        s.vth_sigma_v = 0.004;
        v_small = period_spread_rel(tech, base, s, 100, 2);
        st.add_row({"Vth", "4 mV", util::fixed(100.0 * v_small, 4)});
        s.vth_sigma_v = 0.016;
        v_big = period_spread_rel(tech, base, s, 100, 2);
        st.add_row({"Vth", "16 mV", util::fixed(100.0 * v_big, 4)});
    }
    std::cout << st.render();
    std::cout << "\n(4x the width sigma multiplies the spread ~16x — quadratic, "
                 "the first-order term cancels around the loop. 4x the Vth "
                 "sigma multiplies it ~4x — linear.)\n\n";

    // Calibration flows on a 3x3 monitored die with realistic mismatch.
    const auto fp = thermal::demo_floorplan();
    const auto sites = sensor::uniform_sites(fp, 3, 3);
    auto run = [&](bool mismatch, bool individual) {
        sensor::MonitorConfig cfg;
        cfg.grid_nx = 32;
        cfg.grid_ny = 32;
        cfg.enable_mismatch = mismatch;
        cfg.individual_calibration = individual;
        return sensor::ThermalMonitor(tech, base, fp, sites, cfg).scan();
    };
    const auto matched = run(false, false);
    const auto shared = run(true, false);
    const auto individual = run(true, true);

    util::Table ct({"flow", "max |err| (degC)", "rms err (degC)"});
    ct.add_row({"no mismatch (ideal)", util::fixed(matched.max_abs_error_c, 3),
                util::fixed(matched.rms_error_c, 3)});
    ct.add_row({"mismatch + shared calibration",
                util::fixed(shared.max_abs_error_c, 3),
                util::fixed(shared.rms_error_c, 3)});
    ct.add_row({"mismatch + individual calibration",
                util::fixed(individual.max_abs_error_c, 3),
                util::fixed(individual.rms_error_c, 3)});
    std::cout << "thermal-map accuracy (3x3 sensors, 2 mV/8 mV realistic "
                 "mismatch):\n"
              << ct.render();

    bench::ShapeChecks checks;
    checks.expect("width mismatch is quadratic (4x sigma -> >8x spread)",
                  w_big / w_small > 8.0);
    checks.expect("Vth mismatch is linear (4x sigma -> ~4x spread)",
                  std::abs(v_big / v_small - 4.0) < 1.5);
    checks.expect("Vth dominates width mismatch at realistic magnitudes",
                  v_small > w_small);
    checks.expect("shared calibration leaves a visible residual",
                  shared.max_abs_error_c > 3.0 * matched.max_abs_error_c);
    checks.expect("individual calibration recovers sub-0.5 degC maps",
                  individual.max_abs_error_c < 0.5);
    return checks.report();
}
