// PERF — the fast transient kernel on the paper's heaviest workload:
// the Fig. 2 ratio family simulated point by point with the SPICE
// engine. The ablation ladder stacks the kernel features one at a time
// on top of the PR 3 fast kernel (device bypass + early exit over a
// dense per-iteration LU):
//
//   seed     fixed-step full Newton, every device evaluated, dense LU
//   pr3      + 0.5 mV device bypass + settled-period early exit
//   soa      + batched SoA device evaluation (scalar lane kernel)
//   simd     + runtime-dispatched AVX2 lane kernel (bitwise == soa)
//   banded   + bordered-band LU on the ring's MNA pattern
//   reuse    + contraction-gated modified Newton (LU reuse)
//   lockstep + lock-step multi-point driver (try_simulate_batch)
//
// The ladder's last rung is exactly SpiceRingOptions::fast(). Accuracy
// is gated, not assumed: the pr3 rung must agree with the seed kernel
// within the legacy 0.05 % / 0.01 pp gates, and every later rung within
// 0.00005 % / 0.00005 pp — i.e. 0.0000 at the Fig. 2 reporting
// precision. The scalar and SIMD rungs must agree bitwise.
//
// Walls are the minimum over --repeat runs (default 3 full / 1 quick) —
// the grid is small enough that scheduler noise otherwise dominates.
// Single-threaded by design: the speedup measured here is algorithmic,
// not parallel, and composes with the PR 1 pool. `--quick 1` runs a
// reduced grid (the tier-1 perf-smoke stage) with a 2x speedup gate;
// the full run gates at 3x and writes BENCH_transient.json.
#include "bench_common.hpp"

#include "analysis/nonlinearity.hpp"
#include "exec/metrics.hpp"
#include "ring/config.hpp"
#include "ring/spice_ring.hpp"
#include "sensor/presets.hpp"
#include "util/cli.hpp"
#include "util/simd.hpp"
#include "util/table.hpp"

#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

using namespace stsense;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
        .count();
}

/// Kernel-counter snapshot (cumulative registry values).
struct Counters {
    std::uint64_t refactors = 0;
    std::uint64_t reuses = 0;
    std::uint64_t bypass_hits = 0;
    std::uint64_t batch_lanes = 0;
    std::uint64_t simd_groups = 0;
    std::uint64_t banded_factors = 0;
    std::uint64_t exit_cycles = 0;

    static Counters snap() {
        auto& m = exec::MetricsRegistry::global();
        Counters c;
        c.refactors = m.counter("spice.newton.refactor").value();
        c.reuses = m.counter("spice.newton.reuse").value();
        c.bypass_hits = m.counter("spice.eval.bypass_hits").value();
        c.batch_lanes = m.counter("spice.eval.batch_lanes").value();
        c.simd_groups = m.counter("spice.eval.simd_groups").value();
        c.banded_factors = m.counter("spice.lu.banded_factors").value();
        c.exit_cycles = m.counter("ring.transient.early_exit_cycles").value();
        return c;
    }
    Counters operator-(const Counters& o) const {
        return {refactors - o.refactors,       reuses - o.reuses,
                bypass_hits - o.bypass_hits,   batch_lanes - o.batch_lanes,
                simd_groups - o.simd_groups,   banded_factors - o.banded_factors,
                exit_cycles - o.exit_cycles};
    }
};

struct Row {
    std::string name;  ///< JSON key.
    std::string label; ///< Table label.
    double wall_s = 0.0; ///< Min over repeats.
    /// periods[ratio][temp] in seconds (identical across repeats — the
    /// kernels are deterministic; the repeats only de-noise the wall).
    std::vector<std::vector<double>> periods;
    long early_exits = 0;
    bool all_ok = true;
    Counters c; ///< First-repeat deltas.
    double max_period_dev_pct = 0.0; ///< vs the seed rung.
    double max_nl_dev_pp = 0.0;      ///< vs the seed rung.
};

bool periods_bitwise_equal(const std::vector<std::vector<double>>& a,
                           const std::vector<std::vector<double>>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].size() != b[i].size()) return false;
        for (std::size_t j = 0; j < a[i].size(); ++j) {
            if (std::memcmp(&a[i][j], &b[i][j], sizeof(double)) != 0) return false;
        }
    }
    return true;
}

} // namespace

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    const bool quick = cli.has("quick");
    const int repeat = std::max(1, cli.get("repeat", quick ? 1 : 3));
    bench::banner("PERF",
                  std::string("fast transient kernel ablation vs seed kernel, "
                              "Fig. 2 SPICE ratio sweep") +
                      (quick ? " (quick)" : ""));

    const auto& caps = util::simd_caps();
    const util::SimdLevel level = util::resolve_simd(util::SimdMode::Auto);
    std::cout << "simd probe: sse4.2=" << caps.sse42 << " avx2=" << caps.avx2
              << " fma=" << caps.fma << " avx512f=" << caps.avx512f
              << " -> lane kernel dispatch: " << util::simd_level_name(level)
              << "\n\n";

    const auto tech = phys::technology_by_name(cli.get("tech", std::string("cmos350")));

    // The Fig. 2 workload: the Wp/Wn family over the paper temperature
    // grid. Quick mode trims both axes (2 ratios x 5 temperatures) and
    // the time resolution so the smoke stage stays in CI budget.
    std::vector<double> ratios;
    for (double r : sensor::presets::kFig2Ratios) ratios.push_back(r);
    std::vector<double> temps_c = ring::paper_temperature_grid_c();
    if (quick) {
        ratios = {1.75, 3.0};
        std::vector<double> coarse;
        for (std::size_t i = 0; i < temps_c.size(); i += 4) coarse.push_back(temps_c[i]);
        temps_c = coarse;
    }

    const auto trim = [&](ring::SpiceRingOptions opt) {
        opt.record_waveform = false;
        if (quick) {
            opt.steps_per_period = 150;
            opt.skip_cycles = 2;
            opt.measure_cycles = 5;
        }
        return opt;
    };

    // --- the ablation ladder ----------------------------------------------
    const ring::SpiceRingOptions seed_opt = trim({});

    ring::SpiceRingOptions pr3_opt = seed_opt;
    pr3_opt.early_exit = true;
    pr3_opt.kernel.bypass_tol_v = 5e-4;

    ring::SpiceRingOptions soa_opt = pr3_opt;
    soa_opt.kernel.batch_eval = true;
    soa_opt.kernel.simd = util::SimdMode::ForceScalar;

    ring::SpiceRingOptions simd_opt = soa_opt;
    simd_opt.kernel.simd = util::SimdMode::Auto;

    ring::SpiceRingOptions banded_opt = simd_opt;
    banded_opt.kernel.banded_lu = true;

    // The last two rungs come straight from the shipped preset so the
    // bench measures exactly what SpiceRingOptions::fast() ships.
    ring::SpiceRingOptions reuse_opt = trim(ring::SpiceRingOptions::fast());
    reuse_opt.kernel.lockstep_width = 1;
    ring::SpiceRingOptions lockstep_opt = trim(ring::SpiceRingOptions::fast());

    // --- pass runners ------------------------------------------------------
    const auto run_solo = [&](const ring::SpiceRingOptions& opt, Row& out) {
        for (std::size_t ri = 0; ri < ratios.size(); ++ri) {
            const auto cfg =
                ring::RingConfig::uniform(cells::CellKind::Inv, 5, ratios[ri]);
            const ring::SpiceRingModel model(tech, cfg);
            for (double tc : temps_c) {
                const auto res = model.simulate(tc + 273.15, opt);
                out.periods[ri].push_back(res.period);
                if (res.early_exit) ++out.early_exits;
            }
        }
    };
    const auto run_grouped = [&](const ring::SpiceRingOptions& opt, Row& out) {
        const auto w = static_cast<std::size_t>(opt.kernel.lockstep_width);
        for (std::size_t ri = 0; ri < ratios.size(); ++ri) {
            const auto cfg =
                ring::RingConfig::uniform(cells::CellKind::Inv, 5, ratios[ri]);
            const ring::SpiceRingModel model(tech, cfg);
            for (std::size_t lo = 0; lo < temps_c.size(); lo += w) {
                const std::size_t hi = std::min(lo + w, temps_c.size());
                std::vector<double> temps_k;
                for (std::size_t j = lo; j < hi; ++j) {
                    temps_k.push_back(temps_c[j] + 273.15);
                }
                const auto rs = model.try_simulate_batch(temps_k, opt);
                for (const auto& r : rs) {
                    if (!r.ok()) {
                        out.all_ok = false;
                        out.periods[ri].push_back(0.0);
                        continue;
                    }
                    out.periods[ri].push_back(r.value().period);
                    if (r.value().early_exit) ++out.early_exits;
                }
            }
        }
    };

    const auto measure = [&](std::string name, std::string label,
                             const ring::SpiceRingOptions& opt, bool grouped) {
        Row row;
        row.name = std::move(name);
        row.label = std::move(label);
        for (int rep = 0; rep < repeat; ++rep) {
            Row scratch;
            scratch.periods.assign(ratios.size(), {});
            const Counters before = Counters::snap();
            const auto t0 = std::chrono::steady_clock::now();
            if (grouped) {
                run_grouped(opt, scratch);
            } else {
                run_solo(opt, scratch);
            }
            const double wall = seconds_since(t0);
            if (rep == 0) {
                row.periods = std::move(scratch.periods);
                row.early_exits = scratch.early_exits;
                row.all_ok = scratch.all_ok;
                row.c = Counters::snap() - before;
                row.wall_s = wall;
            } else {
                row.wall_s = std::min(row.wall_s, wall);
            }
        }
        return row;
    };

    Row seed = measure("seed", "seed (fixed, full Newton)", seed_opt, false);
    std::vector<Row> rows;
    rows.push_back(measure("pr3", "pr3 (+bypass +early-exit)", pr3_opt, false));
    rows.push_back(measure("soa", " +SoA batch (scalar)", soa_opt, false));
    rows.push_back(measure("simd", std::string(" +SIMD (") +
                                       util::simd_level_name(level) + ")",
                           simd_opt, false));
    rows.push_back(measure("banded", " +banded LU", banded_opt, false));
    rows.push_back(measure("reuse", " +LU reuse (modified Newton)", reuse_opt,
                           false));
    rows.push_back(measure("lockstep",
                           " +lock-step x" +
                               std::to_string(lockstep_opt.kernel.lockstep_width) +
                               " (= fast())",
                           lockstep_opt, true));

    // --- accuracy: periods point by point, NL curves ratio by ratio -------
    std::vector<analysis::NonlinearityResult> nl_seed;
    for (std::size_t ri = 0; ri < ratios.size(); ++ri) {
        nl_seed.push_back(analysis::nonlinearity(temps_c, seed.periods[ri]));
    }
    for (Row& row : rows) {
        for (std::size_t ri = 0; ri < ratios.size(); ++ri) {
            for (std::size_t ti = 0; ti < temps_c.size(); ++ti) {
                const double ref = seed.periods[ri][ti];
                const double dev =
                    ref != 0.0 ? 100.0 * std::abs(row.periods[ri][ti] - ref) /
                                     std::abs(ref)
                               : 0.0;
                row.max_period_dev_pct = std::max(row.max_period_dev_pct, dev);
            }
            const auto nl = analysis::nonlinearity(temps_c, row.periods[ri]);
            for (std::size_t ti = 0; ti < temps_c.size(); ++ti) {
                row.max_nl_dev_pp = std::max(
                    row.max_nl_dev_pp, std::abs(nl.error_percent[ti] -
                                                nl_seed[ri].error_percent[ti]));
            }
        }
    }

    const std::size_t points = ratios.size() * temps_c.size();
    const Row& pr3 = rows.front();
    const Row& fast = rows.back();
    const auto speedup_vs = [](const Row& num, const Row& den) {
        return den.wall_s > 0.0 ? num.wall_s / den.wall_s : 0.0;
    };
    const double speedup = speedup_vs(seed, fast);
    const double speedup_vs_pr3 = speedup_vs(pr3, fast);

    util::Table table(
        {"kernel", "wall (s)", "ms/point", "vs seed", "dev (%)", "reuses"});
    const auto add_row = [&](const Row& r) {
        table.add_row({r.label, util::fixed(r.wall_s, 3),
                       util::fixed(1e3 * r.wall_s / static_cast<double>(points), 2),
                       util::fixed(speedup_vs(seed, r), 2) + "x",
                       util::fixed(r.max_period_dev_pct, 4),
                       std::to_string(r.c.reuses)});
    };
    table.add_row({seed.label, util::fixed(seed.wall_s, 3),
                   util::fixed(1e3 * seed.wall_s / static_cast<double>(points), 2),
                   "1.00x", "-", "0"});
    for (const Row& r : rows) add_row(r);
    std::cout << table.render();
    std::cout << "\npoints: " << points << " (" << ratios.size() << " ratios x "
              << temps_c.size() << " temps), walls are min of " << repeat
              << " repeat(s)\n"
              << "fast() vs seed: " << util::fixed(speedup, 2)
              << "x; vs pr3 kernel: " << util::fixed(speedup_vs_pr3, 2) << "x\n"
              << "fast(): " << fast.c.refactors << " refactors ("
              << fast.c.banded_factors << " banded), " << fast.c.reuses
              << " LU reuses, " << fast.c.bypass_hits << " bypass hits, "
              << fast.c.batch_lanes << " batch lanes in " << fast.c.simd_groups
              << " simd groups, " << fast.c.exit_cycles
              << " cycles saved by early exit (" << fast.early_exits << "/"
              << points << " runs exited early)\n"
              << "seed kernel: " << seed.c.refactors << " factorizations\n";

    // --- JSON snapshot ----------------------------------------------------
    auto& metrics = exec::MetricsRegistry::global();
    const std::string json_path = cli.get("json", std::string("BENCH_transient.json"));
    {
        std::ofstream json(json_path);
        json << "{\n"
             << "  \"workload\": \"fig2_spice_ratio_sweep\",\n"
             << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
             << "  \"points\": " << points << ",\n"
             << "  \"repeat\": " << repeat << ",\n"
             << "  \"simd_level\": \"" << util::simd_level_name(level) << "\",\n"
             << "  \"seed_wall_s\": " << seed.wall_s << ",\n"
             << "  \"pr3_wall_s\": " << pr3.wall_s << ",\n"
             << "  \"fast_wall_s\": " << fast.wall_s << ",\n"
             << "  \"speedup\": " << speedup << ",\n"
             << "  \"speedup_vs_pr3\": " << speedup_vs_pr3 << ",\n"
             << "  \"max_period_dev_pct\": " << fast.max_period_dev_pct << ",\n"
             << "  \"max_nl_dev_pp\": " << fast.max_nl_dev_pp << ",\n"
             << "  \"seed_refactors\": " << seed.c.refactors << ",\n"
             << "  \"fast_refactors\": " << fast.c.refactors << ",\n"
             << "  \"fast_lu_reuses\": " << fast.c.reuses << ",\n"
             << "  \"fast_bypass_hits\": " << fast.c.bypass_hits << ",\n"
             << "  \"fast_batch_lanes\": " << fast.c.batch_lanes << ",\n"
             << "  \"fast_simd_groups\": " << fast.c.simd_groups << ",\n"
             << "  \"fast_banded_factors\": " << fast.c.banded_factors << ",\n"
             << "  \"early_exit_cycles_saved\": " << fast.c.exit_cycles << ",\n"
             << "  \"early_exit_runs\": " << fast.early_exits << ",\n"
             << "  \"ablation\": [\n";
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const Row& r = rows[i];
            json << "    {\"name\": \"" << r.name << "\", \"wall_s\": " << r.wall_s
                 << ", \"speedup_vs_seed\": " << speedup_vs(seed, r)
                 << ", \"max_period_dev_pct\": " << r.max_period_dev_pct
                 << ", \"max_nl_dev_pp\": " << r.max_nl_dev_pp
                 << ", \"refactors\": " << r.c.refactors
                 << ", \"reuses\": " << r.c.reuses
                 << ", \"bypass_hits\": " << r.c.bypass_hits
                 << ", \"batch_lanes\": " << r.c.batch_lanes
                 << ", \"simd_groups\": " << r.c.simd_groups
                 << ", \"banded_factors\": " << r.c.banded_factors << "}"
                 << (i + 1 < rows.size() ? "," : "") << "\n";
        }
        json << "  ],\n"
             << "  \"metrics\": " << metrics.to_json() << "\n"
             << "}\n";
    }
    std::cout << "kernel snapshot: " << json_path << "\n";

    const double speedup_gate = quick ? 2.0 : 3.0;
    bench::ShapeChecks checks;
    checks.expect("every lock-step point simulated cleanly", fast.all_ok);
    checks.expect("fast kernel speedup >= " + util::fixed(speedup_gate, 1) +
                      "x over seed kernel (acceptance criterion)",
                  speedup >= speedup_gate);
    if (!quick) {
        checks.expect("fast kernel beats the PR 3 kernel (>= 1.2x)",
                      speedup_vs_pr3 >= 1.2);
    }
    checks.expect("pr3 rung within legacy gates (0.05 % / 0.01 pp)",
                  pr3.max_period_dev_pct <= 0.05 && pr3.max_nl_dev_pp <= 0.01);
    for (const Row& r : rows) {
        if (r.name == "pr3") continue;
        if (quick) {
            // The quick grid's coarse timestep (spp=150) inflates the
            // bypass linearization error past the reporting-precision
            // bar; the smoke stage gates at the legacy thresholds and
            // leaves the strict claim to the full grid.
            checks.expect(r.name + " rung within legacy gates (quick grid)",
                          r.max_period_dev_pct <= 0.05 && r.max_nl_dev_pp <= 0.01);
        } else {
            checks.expect(r.name + " rung at 0.0000 % / 0.0000 pp vs seed "
                                   "(reporting precision)",
                          r.max_period_dev_pct < 5e-5 && r.max_nl_dev_pp < 5e-5);
        }
    }
    checks.expect("scalar and SIMD lane kernels agree bitwise",
                  periods_bitwise_equal(rows[1].periods, rows[2].periods));
    checks.expect("lock-step rung bitwise-matches the solo reuse rung",
                  periods_bitwise_equal(rows[4].periods, rows[5].periods));
    checks.expect("every fast run banked its cycles and exited early",
                  fast.early_exits == static_cast<long>(points));
    checks.expect("the fast pass served device evaluations from the bypass cache",
                  fast.c.bypass_hits > 0);
    checks.expect("the fast pass actually reused factorizations",
                  fast.c.reuses > 0 && rows[4].c.reuses > 0);
    checks.expect("the fast pass factored through the banded kernel",
                  fast.c.banded_factors > 0);
    checks.expect("the fast pass evaluated devices through the SoA batch",
                  fast.c.batch_lanes > 0);
    if (level == util::SimdLevel::Avx2) {
        checks.expect("the fast pass dispatched AVX2 lane groups",
                      fast.c.simd_groups > 0);
    }
    return checks.report();
}
