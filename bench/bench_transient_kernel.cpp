// PERF — the fast transient kernel on the paper's heaviest workload:
// the Fig. 2 ratio family simulated point by point with the SPICE
// engine, seed kernel (fixed-step full Newton) vs fast kernel (LU
// reuse + device bypass + adaptive stepping + settled-period early
// exit). Single-threaded by design: the speedup measured here is
// algorithmic, not parallel, and composes with the PR 1 pool.
//
// Accuracy is gated, not assumed: every point's period must agree with
// the seed kernel within 0.05 % and the per-ratio non-linearity error
// curves within 0.01 percentage points. `--quick 1` runs a reduced grid
// (the tier-1 perf-smoke stage) with a 1.5x speedup gate; the full run
// gates at 2x and writes BENCH_transient.json.
#include "bench_common.hpp"

#include "analysis/nonlinearity.hpp"
#include "exec/metrics.hpp"
#include "ring/config.hpp"
#include "ring/spice_ring.hpp"
#include "sensor/presets.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

using namespace stsense;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
        .count();
}

struct PassResult {
    double wall_s = 0.0;
    /// periods[ratio][temp] in seconds.
    std::vector<std::vector<double>> periods;
    long early_exits = 0;
    long total_newton_iters = 0;
};

} // namespace

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    const bool quick = cli.has("quick");
    bench::banner("PERF",
                  std::string("fast transient kernel vs seed kernel, Fig. 2 "
                              "SPICE ratio sweep") +
                      (quick ? " (quick)" : ""));

    const auto tech = phys::technology_by_name(cli.get("tech", std::string("cmos350")));

    // The Fig. 2 workload: the Wp/Wn family over the paper temperature
    // grid. Quick mode trims both axes (2 ratios x 5 temperatures) and
    // the time resolution so the smoke stage stays in CI budget.
    std::vector<double> ratios;
    for (double r : sensor::presets::kFig2Ratios) ratios.push_back(r);
    std::vector<double> temps_c = ring::paper_temperature_grid_c();
    if (quick) {
        ratios = {1.75, 3.0};
        std::vector<double> coarse;
        for (std::size_t i = 0; i < temps_c.size(); i += 4) coarse.push_back(temps_c[i]);
        temps_c = coarse;
    }

    ring::SpiceRingOptions seed_opt;
    seed_opt.record_waveform = false;
    ring::SpiceRingOptions fast_opt = ring::SpiceRingOptions::fast();
    fast_opt.record_waveform = false;
    // Ablation switches (e.g. --no-bypass) isolate each feature's
    // contribution when tuning the fast() preset.
    if (cli.has("no-reuse")) fast_opt.kernel.reuse_lu = false;
    if (cli.has("no-bypass")) fast_opt.kernel.bypass_tol_v = 0.0;
    if (cli.has("no-adaptive")) fast_opt.kernel.adaptive = false;
    if (cli.has("no-exit")) fast_opt.early_exit = false;
    if (quick) {
        seed_opt.steps_per_period = 150;
        fast_opt.steps_per_period = 150;
        seed_opt.skip_cycles = fast_opt.skip_cycles = 2;
        seed_opt.measure_cycles = fast_opt.measure_cycles = 5;
    }

    auto run_pass = [&](const ring::SpiceRingOptions& opt) {
        PassResult out;
        out.periods.resize(ratios.size());
        const auto t0 = std::chrono::steady_clock::now();
        for (std::size_t ri = 0; ri < ratios.size(); ++ri) {
            const auto cfg =
                ring::RingConfig::uniform(cells::CellKind::Inv, 5, ratios[ri]);
            const ring::SpiceRingModel model(tech, cfg);
            for (double tc : temps_c) {
                const auto res = model.simulate(tc + 273.15, opt);
                out.periods[ri].push_back(res.period);
                if (res.early_exit) ++out.early_exits;
            }
        }
        out.wall_s = seconds_since(t0);
        return out;
    };

    auto& metrics = exec::MetricsRegistry::global();
    const std::uint64_t refactor0 = metrics.counter("spice.newton.refactor").value();
    const std::uint64_t reuse0 = metrics.counter("spice.newton.reuse").value();
    const std::uint64_t bypass0 = metrics.counter("spice.eval.bypass_hits").value();
    const std::uint64_t exit0 =
        metrics.counter("ring.transient.early_exit_cycles").value();

    const PassResult seed = run_pass(seed_opt);
    const std::uint64_t seed_refactors =
        metrics.counter("spice.newton.refactor").value() - refactor0;

    const PassResult fast = run_pass(fast_opt);
    const std::uint64_t fast_refactors =
        metrics.counter("spice.newton.refactor").value() - refactor0 - seed_refactors;
    const std::uint64_t fast_reuses =
        metrics.counter("spice.newton.reuse").value() - reuse0;
    const std::uint64_t fast_bypass =
        metrics.counter("spice.eval.bypass_hits").value() - bypass0;
    const std::uint64_t exit_cycles =
        metrics.counter("ring.transient.early_exit_cycles").value() - exit0;

    const double speedup = fast.wall_s > 0.0 ? seed.wall_s / fast.wall_s : 0.0;

    // --- accuracy: periods point by point, NL curves ratio by ratio -------
    double max_period_dev_pct = 0.0;
    for (std::size_t ri = 0; ri < ratios.size(); ++ri) {
        for (std::size_t ti = 0; ti < temps_c.size(); ++ti) {
            const double ref = seed.periods[ri][ti];
            const double dev =
                ref != 0.0
                    ? 100.0 * std::abs(fast.periods[ri][ti] - ref) / std::abs(ref)
                    : 0.0;
            max_period_dev_pct = std::max(max_period_dev_pct, dev);
        }
    }
    double max_nl_dev_pp = 0.0;
    for (std::size_t ri = 0; ri < ratios.size(); ++ri) {
        const auto nl_seed = analysis::nonlinearity(temps_c, seed.periods[ri]);
        const auto nl_fast = analysis::nonlinearity(temps_c, fast.periods[ri]);
        for (std::size_t ti = 0; ti < temps_c.size(); ++ti) {
            max_nl_dev_pp = std::max(
                max_nl_dev_pp, std::abs(nl_fast.error_percent[ti] -
                                        nl_seed.error_percent[ti]));
        }
    }

    const std::size_t points = ratios.size() * temps_c.size();
    std::string fast_label = "fast (";
    if (fast_opt.kernel.bypass_tol_v > 0.0) fast_label += "bypass+";
    if (fast_opt.kernel.reuse_lu) fast_label += "reuse+";
    if (fast_opt.kernel.adaptive) fast_label += "adaptive+";
    if (fast_opt.early_exit) fast_label += "exit+";
    fast_label.back() = ')';
    util::Table table({"kernel", "wall (s)", "ms/point", "vs seed"});
    table.add_row({"seed (fixed, full Newton)", util::fixed(seed.wall_s, 3),
                   util::fixed(1e3 * seed.wall_s / static_cast<double>(points), 2),
                   "1.00x"});
    table.add_row({fast_label, util::fixed(fast.wall_s, 3),
                   util::fixed(1e3 * fast.wall_s / static_cast<double>(points), 2),
                   util::fixed(speedup, 2) + "x"});
    std::cout << table.render();
    std::cout << "\npoints: " << points << " (" << ratios.size() << " ratios x "
              << temps_c.size() << " temps)\n"
              << "accuracy: max period deviation "
              << util::fixed(max_period_dev_pct, 4) << " % (gate 0.05), max NL "
              << "deviation " << util::fixed(max_nl_dev_pp, 4)
              << " pp (gate 0.01)\n"
              << "fast kernel: " << fast_refactors << " refactors, " << fast_reuses
              << " LU reuses, " << fast_bypass << " bypass hits, " << exit_cycles
              << " cycles saved by early exit (" << fast.early_exits << "/"
              << points << " runs exited early)\n"
              << "seed kernel: " << seed_refactors << " factorizations\n";

    // --- JSON snapshot ----------------------------------------------------
    const std::string json_path = cli.get("json", std::string("BENCH_transient.json"));
    {
        std::ofstream json(json_path);
        json << "{\n"
             << "  \"workload\": \"fig2_spice_ratio_sweep\",\n"
             << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
             << "  \"points\": " << points << ",\n"
             << "  \"seed_wall_s\": " << seed.wall_s << ",\n"
             << "  \"fast_wall_s\": " << fast.wall_s << ",\n"
             << "  \"speedup\": " << speedup << ",\n"
             << "  \"max_period_dev_pct\": " << max_period_dev_pct << ",\n"
             << "  \"max_nl_dev_pp\": " << max_nl_dev_pp << ",\n"
             << "  \"seed_refactors\": " << seed_refactors << ",\n"
             << "  \"fast_refactors\": " << fast_refactors << ",\n"
             << "  \"fast_lu_reuses\": " << fast_reuses << ",\n"
             << "  \"fast_bypass_hits\": " << fast_bypass << ",\n"
             << "  \"early_exit_cycles_saved\": " << exit_cycles << ",\n"
             << "  \"early_exit_runs\": " << fast.early_exits << ",\n"
             << "  \"metrics\": " << metrics.to_json() << "\n"
             << "}\n";
    }
    std::cout << "kernel snapshot: " << json_path << "\n";

    const double speedup_gate = quick ? 1.5 : 2.0;
    bench::ShapeChecks checks;
    checks.expect("fast kernel speedup >= " + util::fixed(speedup_gate, 1) +
                      "x over seed kernel (acceptance criterion)",
                  speedup >= speedup_gate);
    checks.expect("max period deviation <= 0.05 % (accuracy gate)",
                  max_period_dev_pct <= 0.05);
    checks.expect("max NL-curve deviation <= 0.01 pp (accuracy gate)",
                  max_nl_dev_pp <= 0.01);
    if (fast_opt.early_exit) {
        checks.expect("every fast run banked its cycles and exited early",
                      fast.early_exits == static_cast<long>(points));
    }
    if (fast_opt.kernel.bypass_tol_v > 0.0) {
        checks.expect("the fast pass served device evaluations from the bypass cache",
                      fast_bypass > 0);
    }
    if (fast_opt.kernel.reuse_lu) {
        checks.expect("the fast pass actually reused factorizations",
                      fast_reuses > 0);
    }
    return checks.report();
}
