#!/usr/bin/env python3
"""Validate telemetry-service protocol lines against the wire contract.

Input is newline-delimited JSON as a client sees it: responses and
subscription events, one object per line. Lines prefixed "<- " (the
demo/client transcript format) are unwrapped; "-> " request lines and
anything that is not JSON are ignored unless --strict is given.

The contract (src/service/protocol.cpp):
  response: {"id": int, "ok": bool, ...}
            ok=true  -> carries "result", never "error"
            ok=false -> carries "error": {"code": <enum>, "message": str}
  event:    {"event": "update", "seq": int >= 0, "path": str, "value": any}
            and never an "id" key
  error codes: malformed-request unknown-method bad-params unknown-session
               unknown-path overloaded shutting-down internal

Checks, in order:
  1. every protocol line parses as a JSON object of one of the two shapes;
  2. responses and events carry exactly the required keys/types above;
  3. error codes come from the enum, error messages are non-empty;
  4. event seq values are strictly increasing within the stream;
  5. with --expect-responses N, exactly N responses were seen.

Exit status 0 when every check passes; 1 with a diagnostic otherwise.

Usage:
  examples/telemetry_service --demo | scripts/check_service.py -
  scripts/check_service.py transcript.txt --expect-responses 10
"""

import argparse
import json
import sys

ERROR_CODES = {
    "malformed-request",
    "unknown-method",
    "bad-params",
    "unknown-session",
    "unknown-path",
    "overloaded",
    "shutting-down",
    "internal",
}

RESPONSE_KEYS = {"id", "ok", "result", "error"}
EVENT_KEYS = {"event", "seq", "path", "value"}


def check_response(doc: dict, where: str) -> str | None:
    if not isinstance(doc.get("id"), int) or isinstance(doc.get("id"), bool):
        return f"{where}: response 'id' must be an integer"
    if not isinstance(doc.get("ok"), bool):
        return f"{where}: response 'ok' must be a boolean"
    extra = set(doc) - RESPONSE_KEYS
    if extra:
        return f"{where}: unexpected response keys {sorted(extra)}"
    if doc["ok"]:
        if "result" not in doc:
            return f"{where}: ok response without 'result'"
        if "error" in doc:
            return f"{where}: ok response carries 'error'"
        return None
    err = doc.get("error")
    if not isinstance(err, dict):
        return f"{where}: error response without 'error' object"
    if "result" in doc:
        return f"{where}: error response carries 'result'"
    if err.get("code") not in ERROR_CODES:
        return f"{where}: unknown error code {err.get('code')!r}"
    if not isinstance(err.get("message"), str) or not err["message"]:
        return f"{where}: error 'message' must be a non-empty string"
    if set(err) - {"code", "message"}:
        return f"{where}: unexpected error keys {sorted(set(err) - {'code', 'message'})}"
    return None


def check_event(doc: dict, where: str, last_seq: int | None) -> str | None:
    if "id" in doc:
        return f"{where}: event must not carry an 'id'"
    if doc.get("event") != "update":
        return f"{where}: unknown event kind {doc.get('event')!r}"
    seq = doc.get("seq")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
        return f"{where}: event 'seq' must be a non-negative integer"
    if last_seq is not None and seq <= last_seq:
        return f"{where}: event seq {seq} not increasing (previous {last_seq})"
    if not isinstance(doc.get("path"), str) or not doc["path"]:
        return f"{where}: event 'path' must be a non-empty string"
    if "value" not in doc:
        return f"{where}: event without 'value'"
    if set(doc) - EVENT_KEYS:
        return f"{where}: unexpected event keys {sorted(set(doc) - EVENT_KEYS)}"
    return None


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("transcript", help="protocol transcript file, or - for stdin")
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on non-JSON lines instead of skipping them",
    )
    parser.add_argument(
        "--expect-responses",
        type=int,
        metavar="N",
        help="require exactly N response lines",
    )
    args = parser.parse_args()

    def fail(message: str) -> int:
        print(f"check_service: FAIL: {message}", file=sys.stderr)
        return 1

    try:
        stream = sys.stdin if args.transcript == "-" else open(
            args.transcript, encoding="utf-8")
    except OSError as exc:
        return fail(str(exc))

    responses = 0
    events = 0
    last_seq: int | None = None
    with stream:
        for lineno, raw in enumerate(stream, start=1):
            line = raw.strip()
            where = f"line {lineno}"
            if line.startswith("<- "):
                line = line[3:]
            elif line.startswith("-> ") or not line:
                continue
            if not line.startswith("{"):
                if args.strict:
                    return fail(f"{where}: not a JSON object: {line[:60]}")
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                return fail(f"{where}: invalid JSON: {exc}")
            if not isinstance(doc, dict):
                return fail(f"{where}: protocol lines are JSON objects")
            if "event" in doc:
                error = check_event(doc, where, last_seq)
                if error:
                    return fail(error)
                last_seq = doc["seq"]
                events += 1
            else:
                error = check_response(doc, where)
                if error:
                    return fail(error)
                responses += 1

    if responses + events == 0:
        return fail("no protocol lines found in the transcript")
    if args.expect_responses is not None and responses != args.expect_responses:
        return fail(
            f"expected {args.expect_responses} responses, saw {responses}")
    print(f"check_service: OK: {responses} responses, {events} events "
          "conform to the wire contract")
    return 0


if __name__ == "__main__":
    sys.exit(main())
