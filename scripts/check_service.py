#!/usr/bin/env python3
"""Validate telemetry-service protocol lines against the wire contract.

Input is newline-delimited JSON as a client sees it: responses and
subscription events, one object per line. Lines prefixed "<- " (the
demo/client transcript format) are unwrapped; "-> " request lines and
anything that is not JSON are ignored unless --strict is given.

The contract (src/service/protocol.cpp):
  response: {"id": int, "ok": bool, ...}
            ok=true  -> carries "result", never "error"
            ok=false -> carries "error": {"code": <enum>, "message": str}
  event:    {"event": "update", "seq": int >= 0, "path": str, "value": any}
            and never an "id" key
  error codes: malformed-request unknown-method bad-params unknown-session
               unknown-path overloaded shutting-down internal
               cancelled deadline-unmet

Checks, in order:
  1. every protocol line parses as a JSON object of one of the two shapes;
  2. responses and events carry exactly the required keys/types above;
  3. error codes come from the enum, error messages are non-empty;
  4. event seq values are strictly increasing within the stream;
  5. with --expect-responses N, exactly N responses were seen;
  6. each --require-metric NAME[>=MIN] names a key that must appear
     somewhere in an ok-response result with a numeric value (>= MIN
     when given) — how tier 1 asserts the exec.cancel.* and
     service.shed.* counters surfaced by `query path:"metrics"`.

Exit status 0 when every check passes; 1 with a diagnostic otherwise.

Usage:
  examples/telemetry_service --demo | scripts/check_service.py -
  scripts/check_service.py transcript.txt --expect-responses 10
  scripts/check_service.py transcript.txt \
      --require-metric exec.cancel.fired>=1 \
      --require-metric service.shed.deadline>=1
"""

import argparse
import json
import sys

ERROR_CODES = {
    "malformed-request",
    "unknown-method",
    "bad-params",
    "unknown-session",
    "unknown-path",
    "overloaded",
    "shutting-down",
    "internal",
    "cancelled",
    "deadline-unmet",
}

RESPONSE_KEYS = {"id", "ok", "result", "error"}
EVENT_KEYS = {"event", "seq", "path", "value"}


def check_response(doc: dict, where: str) -> str | None:
    if not isinstance(doc.get("id"), int) or isinstance(doc.get("id"), bool):
        return f"{where}: response 'id' must be an integer"
    if not isinstance(doc.get("ok"), bool):
        return f"{where}: response 'ok' must be a boolean"
    extra = set(doc) - RESPONSE_KEYS
    if extra:
        return f"{where}: unexpected response keys {sorted(extra)}"
    if doc["ok"]:
        if "result" not in doc:
            return f"{where}: ok response without 'result'"
        if "error" in doc:
            return f"{where}: ok response carries 'error'"
        return None
    err = doc.get("error")
    if not isinstance(err, dict):
        return f"{where}: error response without 'error' object"
    if "result" in doc:
        return f"{where}: error response carries 'result'"
    if err.get("code") not in ERROR_CODES:
        return f"{where}: unknown error code {err.get('code')!r}"
    if not isinstance(err.get("message"), str) or not err["message"]:
        return f"{where}: error 'message' must be a non-empty string"
    if set(err) - {"code", "message"}:
        return f"{where}: unexpected error keys {sorted(set(err) - {'code', 'message'})}"
    return None


def check_event(doc: dict, where: str, last_seq: int | None) -> str | None:
    if "id" in doc:
        return f"{where}: event must not carry an 'id'"
    if doc.get("event") != "update":
        return f"{where}: unknown event kind {doc.get('event')!r}"
    seq = doc.get("seq")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
        return f"{where}: event 'seq' must be a non-negative integer"
    if last_seq is not None and seq <= last_seq:
        return f"{where}: event seq {seq} not increasing (previous {last_seq})"
    if not isinstance(doc.get("path"), str) or not doc["path"]:
        return f"{where}: event 'path' must be a non-empty string"
    if "value" not in doc:
        return f"{where}: event without 'value'"
    if set(doc) - EVENT_KEYS:
        return f"{where}: unexpected event keys {sorted(set(doc) - EVENT_KEYS)}"
    return None


def collect_numeric_leaves(doc, out: dict[str, float]) -> None:
    """Record every numeric dict value in `doc`, keyed by its own name.

    Later occurrences win; the metrics node reads counters live, so the
    last snapshot in the transcript is the one worth asserting against.
    """
    if isinstance(doc, dict):
        for key, value in doc.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                out[key] = value
            else:
                collect_numeric_leaves(value, out)
    elif isinstance(doc, list):
        for item in doc:
            collect_numeric_leaves(item, out)


def parse_metric_requirement(spec: str) -> tuple[str, float]:
    """Split 'name>=min' into (name, min); bare 'name' means min 0."""
    if ">=" in spec:
        name, _, minimum = spec.partition(">=")
        return name, float(minimum)
    return spec, 0.0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("transcript", help="protocol transcript file, or - for stdin")
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on non-JSON lines instead of skipping them",
    )
    parser.add_argument(
        "--expect-responses",
        type=int,
        metavar="N",
        help="require exactly N response lines",
    )
    parser.add_argument(
        "--require-metric",
        action="append",
        default=[],
        metavar="NAME[>=MIN]",
        help="require a numeric key NAME in some ok-response result, "
        "with value >= MIN when given (repeatable)",
    )
    args = parser.parse_args()

    def fail(message: str) -> int:
        print(f"check_service: FAIL: {message}", file=sys.stderr)
        return 1

    try:
        stream = sys.stdin if args.transcript == "-" else open(
            args.transcript, encoding="utf-8")
    except OSError as exc:
        return fail(str(exc))

    responses = 0
    events = 0
    last_seq: int | None = None
    metric_values: dict[str, float] = {}
    with stream:
        for lineno, raw in enumerate(stream, start=1):
            line = raw.strip()
            where = f"line {lineno}"
            if line.startswith("<- "):
                line = line[3:]
            elif line.startswith("-> ") or not line:
                continue
            if not line.startswith("{"):
                if args.strict:
                    return fail(f"{where}: not a JSON object: {line[:60]}")
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                return fail(f"{where}: invalid JSON: {exc}")
            if not isinstance(doc, dict):
                return fail(f"{where}: protocol lines are JSON objects")
            if "event" in doc:
                error = check_event(doc, where, last_seq)
                if error:
                    return fail(error)
                last_seq = doc["seq"]
                events += 1
            else:
                error = check_response(doc, where)
                if error:
                    return fail(error)
                responses += 1
                if doc["ok"] and args.require_metric:
                    collect_numeric_leaves(doc["result"], metric_values)

    if responses + events == 0:
        return fail("no protocol lines found in the transcript")
    if args.expect_responses is not None and responses != args.expect_responses:
        return fail(
            f"expected {args.expect_responses} responses, saw {responses}")
    for spec in args.require_metric:
        name, minimum = parse_metric_requirement(spec)
        if name not in metric_values:
            return fail(f"required metric {name!r} not found in any "
                        "ok-response result")
        if metric_values[name] < minimum:
            return fail(f"metric {name!r} is {metric_values[name]}, "
                        f"required >= {minimum}")
    print(f"check_service: OK: {responses} responses, {events} events "
          "conform to the wire contract")
    return 0


if __name__ == "__main__":
    sys.exit(main())
