#!/usr/bin/env bash
# Tier-1 gate: full build + test suite, then the concurrency-sensitive
# exec/ring tests again under ThreadSanitizer, then the fault-injection
# suite under AddressSanitizer (error recovery paths unwind through
# partially-built state — exactly where leaks and UAFs hide). Run from
# anywhere; builds live in <repo>/build, <repo>/build-tsan, and
# <repo>/build-asan.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="${JOBS:-$(nproc)}"

echo "== tier 1: build + full test suite =="
cmake -B "$repo/build" -S "$repo"
cmake --build "$repo/build" -j "$jobs"
ctest --test-dir "$repo/build" --output-on-failure -j "$jobs"

echo "== tier 1: SIMD parity — batched kernel under both lane dispatches =="
# The batched SoA evaluator ships a scalar and an AVX2 lane kernel that
# must be bitwise identical; the ablation bench proves it on the Fig. 2
# workload, and this stage proves it at the unit level under BOTH
# dispatches. First pass: the host's probed best level (AVX2 where
# available). Second pass: STSENSE_SIMD=scalar forces the scalar lane
# kernel through the same suites, so a parity break in either kernel —
# or in the env-override plumbing itself — fails tier 1.
"$repo/build/tests/stsense_tests" \
    --gtest_filter='Simd*:DeviceBatch*:BandedLu*:LockStep*'
STSENSE_SIMD=scalar "$repo/build/tests/stsense_tests" \
    --gtest_filter='Simd*:DeviceBatch*:BandedLu*:LockStep*'

echo "== tier 1: perf smoke — fast transient kernel ablation vs seed kernel =="
# bench_transient_kernel exits non-zero when the quick-grid gates fail:
# < 2x speedup over the seed kernel (raised from 1.5x now the batched
# SoA + banded-LU + lock-step kernel ships), period deviation > 0.05 %,
# NL-curve deviation > 0.01 pp, scalar-vs-SIMD bitwise mismatch, or a
# kernel counter (batch lanes, banded factors, LU reuses) reading zero.
# The top-level CMakeLists defaults to
# RelWithDebInfo, so the stage-1 build is already optimized; a Debug
# build would fail the speedup gate for the wrong reason (the bench
# CMakeLists warns when benches are configured without optimization).
build_type="$(grep -E '^CMAKE_BUILD_TYPE:' "$repo/build/CMakeCache.txt" | cut -d= -f2)"
case "$build_type" in
  Debug|"") echo "perf smoke needs an optimized build, got '${build_type:-none}'" >&2
            exit 1 ;;
esac
cmake --build "$repo/build" --target bench_transient_kernel -j "$jobs"
"$repo/build/bench/bench_transient_kernel" --quick \
    --json="$repo/build/BENCH_transient_quick.json"

echo "== tier 1: degraded-mode thermal map under injected faults =="
# A fleet with deterministically injected hardware faults (stuck
# oscillators, drifted rings; fixed seed so the run is replayable) must
# still produce a complete, flagged, bounded-error map — and the
# fault-free resilient path must stay bitwise the legacy scan. The
# bench exits non-zero when any of its shape gates fail.
cmake --build "$repo/build" --target bench_thermal_map -j "$jobs"
STSENSE_FAULT_SEED=20260806 "$repo/build/bench/bench_thermal_map" --degraded --quick \
    --json="$repo/build/BENCH_thermal_map.json"

echo "== tier 1: traced Fig. 2 sweep + trace validation =="
# The Fig. 2 bench rerun with tracing armed (STSENSE_TRACE): the run
# must still pass its own figure shape gates, and the emitted Chrome
# trace JSON must be well-formed, with balanced per-thread span nesting
# and spans from all four instrumented layers — spice (Newton/transient
# kernel), ring (sweep + per-point tasks), sensor (optimizer
# candidates), exec (cache lookups, pool fan-out).
cmake --build "$repo/build" --target bench_fig2_ratio_nonlinearity -j "$jobs"
STSENSE_TRACE="$repo/build/trace_fig2.json" \
    "$repo/build/bench/bench_fig2_ratio_nonlinearity" \
    --csv="$repo/build/fig2_ratio_nl_traced.csv" \
    --json="$repo/build/BENCH_fig2_traced.json"
python3 "$repo/scripts/check_trace.py" "$repo/build/trace_fig2.json" \
    --require ring.sweep --require ring.sweep.point \
    --require spice.transient --require spice.newton.solve \
    --require sensor.optimize.candidate \
    --require exec.cache.get --require exec.parallel_for

echo "== tier 1: supervised DTM fleet — parity gates + chaos envelope =="
# Fault-free: the supervised fleet must be bitwise the unsupervised one
# (supervision is pure observation until something breaks), regulate
# under the trip line, and settle. --chaos replays the seeded fault
# matrix (dead region, stuck actuator, drifting/NaN sensors): every
# scenario must latch FaultedSafe with the expected fault kind and no
# region may exceed trip + 5 degC. The bench exits non-zero when any
# gate fails.
cmake --build "$repo/build" --target bench_dtm -j "$jobs"
STSENSE_FAULT_SEED=20260808 "$repo/build/bench/bench_dtm" --chaos --quick \
    --json="$repo/build/BENCH_dtm.json"

echo "== tier 1: population study — streaming stats + kill/resume parity =="
# The sharded Monte Carlo population engine on the quick grid (10^4
# dice): shard-size and serial-vs-parallel bitwise invariance, a seeded
# mid-population shard kill whose resume must reproduce the reference
# statistics bitwise, streaming Welford/P^2 summaries within 0.5% of an
# exact two-pass on every gated quantile, and the yield-vs-calibration-
# budget ordering (per-die two-point < one-point < golden on the error
# distributions). The bench exits non-zero when any shape check fails.
cmake --build "$repo/build" --target bench_population -j "$jobs"
STSENSE_FAULT_SEED=20260808 "$repo/build/bench/bench_population" --quick \
    --json="$repo/build/BENCH_population.json"

echo "== tier 1: telemetry-service loopback smoke + seeded cancel chaos =="
# The resident daemon's full protocol stack over the in-process
# loopback: the --demo tour (serve -> scripted requests -> deadline
# shed -> mid-burn deadline expiry -> drain) must answer every request,
# the transcript must conform to the wire contract (check_service.py)
# including the typed deadline-unmet verdicts, and the exec.cancel.* /
# service.shed.* counters surfaced by `query path:"metrics"` must show
# the shed and the mid-run cancellation. The service bench's quick
# matrix then gates admission control, cancel latency (typed answer
# within 50 ms, pool drained to zero), and the seeded CancelStorm
# chaos matrix (no torn checkpoints, bitwise resume) — the bench exits
# non-zero when any shape check fails.
cmake --build "$repo/build" --target telemetry_service bench_service -j "$jobs"
"$repo/build/examples/telemetry_service" --demo \
    | python3 "$repo/scripts/check_service.py" - --expect-responses 16 \
        --require-metric 'exec.cancel.fired>=1' \
        --require-metric 'service.cancelled>=1' \
        --require-metric 'service.shed.deadline>=1' \
        --require-metric 'service.shed.queued' \
        --require-metric 'exec.cancel.tasks_skipped' \
        --require-metric 'exec.cancel.sweeps' \
        --require-metric 'exec.cancel.optimizes'
"$repo/build/bench/bench_service" --quick \
    --json="$repo/build/BENCH_service_quick.json"

echo "== tier 1: exec/ring concurrency tests under ThreadSanitizer =="
cmake -B "$repo/build-tsan" -S "$repo" -DSTSENSE_SANITIZE=thread
cmake --build "$repo/build-tsan" --target stsense_tests -j "$jobs"
# The filter covers the pool, cache, metrics, determinism suite, the
# sweep driver, the fault-injection machinery (the code paths that
# actually run concurrently — including worker exception propagation and
# per-point fault policies under the pool), the tracer's lock-free
# multi-thread record/merge path, the service layer (reader threads,
# fair-queue dispatch, concurrent loopback clients, drain/shutdown),
# and the cancellation layer (token latch/poll races, ambient-scope
# hand-off across the thread hop, cancel-vs-complete races, optimizer
# unwind) — ThreadPool*/TemperatureSweep*/FaultInjector*/Service*
# already pick up the matching *Cancel/*Retry suites. Population* adds
# the sharded Monte Carlo engine (parallel shard eval + serial fold,
# live snapshot publication raced against object-model readers).
"$repo/build-tsan/tests/stsense_tests" \
    --gtest_filter='ThreadPool*:TaskGroup*:ResultCache*:Metrics*:Fingerprint*:ExecDeterminism*:TemperatureSweep*:PaperSweep*:Variation*:FaultInjector*:SweepFaultPolicy*:Tracer*:TraceParity*:Service*:DtmService*:CancelToken*:CancelScope*:OptimizerCancel*:Population*:VariationStream*'

echo "== tier 1: fault-injection suite under AddressSanitizer =="
cmake -B "$repo/build-asan" -S "$repo" -DSTSENSE_SANITIZE=address
cmake --build "$repo/build-asan" --target stsense_tests -j "$jobs"
# Recovery and policy code paths unwind through exceptions and partial
# results; ASan gates them for leaks, overflows, and use-after-free —
# including the service's kill-mid-request and drain/resume paths, the
# DTM supervisor's latch/probe/backoff ladder plus the chaos matrix
# (fault scenarios exercise the injector scopes end to end), and every
# cancellation unwind path: skipped pool tasks, mid-sweep teardown with
# a checkpoint flush in flight, CancelStorm trips, and the retrying
# client's re-submit loop.
"$repo/build-asan/tests/stsense_tests" \
    --gtest_filter='FaultInjector*:RecoveryLadder*:SweepFaultPolicy*:CacheChecksum*:ThreadPoolFault*:TaskGroupFault*:ServiceDrainResume*:ServiceRuntime*:DtmSupervisor*:DtmPid*:DtmAutotune*:DtmChaos*:CancelToken*:CancelScope*:ThreadPoolCancel*:FaultInjectorCancel*:TemperatureSweepCancel*:OptimizerCancel*:ServiceCancel*:ServiceRetry*:Population*:CheckpointProgress*'

echo "tier 1: all gates passed"
