#!/usr/bin/env bash
# Tier-1 gate: full build + test suite, then the concurrency-sensitive
# exec/ring tests again under ThreadSanitizer, then the fault-injection
# suite under AddressSanitizer (error recovery paths unwind through
# partially-built state — exactly where leaks and UAFs hide). Run from
# anywhere; builds live in <repo>/build, <repo>/build-tsan, and
# <repo>/build-asan.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="${JOBS:-$(nproc)}"

echo "== tier 1: build + full test suite =="
cmake -B "$repo/build" -S "$repo"
cmake --build "$repo/build" -j "$jobs"
ctest --test-dir "$repo/build" --output-on-failure -j "$jobs"

echo "== tier 1: exec/ring concurrency tests under ThreadSanitizer =="
cmake -B "$repo/build-tsan" -S "$repo" -DSTSENSE_SANITIZE=thread
cmake --build "$repo/build-tsan" --target stsense_tests -j "$jobs"
# The filter covers the pool, cache, metrics, determinism suite, the
# sweep driver, and the fault-injection machinery (the code paths that
# actually run concurrently — including worker exception propagation and
# per-point fault policies under the pool).
"$repo/build-tsan/tests/stsense_tests" \
    --gtest_filter='ThreadPool*:TaskGroup*:ResultCache*:Metrics*:Fingerprint*:ExecDeterminism*:TemperatureSweep*:PaperSweep*:Variation*:FaultInjector*:SweepFaultPolicy*'

echo "== tier 1: fault-injection suite under AddressSanitizer =="
cmake -B "$repo/build-asan" -S "$repo" -DSTSENSE_SANITIZE=address
cmake --build "$repo/build-asan" --target stsense_tests -j "$jobs"
# Recovery and policy code paths unwind through exceptions and partial
# results; ASan gates them for leaks, overflows, and use-after-free.
"$repo/build-asan/tests/stsense_tests" \
    --gtest_filter='FaultInjector*:RecoveryLadder*:SweepFaultPolicy*:CacheChecksum*:ThreadPoolFault*:TaskGroupFault*'

echo "tier 1: all gates passed"
