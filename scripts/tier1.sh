#!/usr/bin/env bash
# Tier-1 gate: full build + test suite, then the concurrency-sensitive
# exec/ring tests again under ThreadSanitizer. Run from anywhere; builds
# live in <repo>/build and <repo>/build-tsan.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="${JOBS:-$(nproc)}"

echo "== tier 1: build + full test suite =="
cmake -B "$repo/build" -S "$repo"
cmake --build "$repo/build" -j "$jobs"
ctest --test-dir "$repo/build" --output-on-failure -j "$jobs"

echo "== tier 1: exec/ring concurrency tests under ThreadSanitizer =="
cmake -B "$repo/build-tsan" -S "$repo" -DSTSENSE_SANITIZE=thread
cmake --build "$repo/build-tsan" --target stsense_tests -j "$jobs"
# The filter covers the pool, cache, metrics, determinism suite, and the
# sweep driver (the code paths that actually run concurrently).
"$repo/build-tsan/tests/stsense_tests" \
    --gtest_filter='ThreadPool*:TaskGroup*:ResultCache*:Metrics*:Fingerprint*:ExecDeterminism*:TemperatureSweep*:PaperSweep*:Variation*'

echo "tier 1: all gates passed"
