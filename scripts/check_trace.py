#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON emitted by stsense's obs layer.

Checks, in order:
  1. the file parses as JSON and has a non-empty "traceEvents" array;
  2. every complete ("X") event carries name/pid/tid/ts/dur with ts and
     dur >= 0;
  3. per-tid span nesting is balanced: any two spans on one thread are
     either disjoint or one strictly contains the other (partial overlap
     means a corrupted or interleaved record);
  4. every span name passed via --require appears at least once;
  5. the exporter's drop counter is zero unless --allow-drops is given.

Timestamps are microseconds carrying exact nanosecond precision as
three decimals, so round(ts * 1000) recovers the integer nanosecond
value the tracer recorded; the nesting check runs on those integers to
dodge float fuzz.

Exit status 0 when every check passes; 1 with a diagnostic otherwise.

Usage:
  check_trace.py TRACE.json --require ring.sweep --require spice.transient
"""

import argparse
import json
import sys
from collections import defaultdict


def ns(us: float) -> int:
    return round(us * 1000)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME",
        help="span name that must appear at least once (repeatable)",
    )
    parser.add_argument(
        "--allow-drops",
        action="store_true",
        help="accept a trace whose per-thread buffers overflowed",
    )
    args = parser.parse_args()

    def fail(message: str) -> int:
        print(f"check_trace: FAIL: {message}", file=sys.stderr)
        return 1

    try:
        with open(args.trace, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        return fail(f"{args.trace}: {exc}")

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return fail("traceEvents missing or empty")

    spans = [ev for ev in events if ev.get("ph") == "X"]
    if not spans:
        return fail("no complete ('X') span events")

    by_tid = defaultdict(list)
    for i, ev in enumerate(spans):
        for key in ("name", "pid", "tid", "ts", "dur"):
            if key not in ev:
                return fail(f"span #{i} missing '{key}': {ev}")
        if ev["ts"] < 0 or ev["dur"] < 0:
            return fail(f"span #{i} has negative ts/dur: {ev}")
        by_tid[ev["tid"]].append((ns(ev["ts"]), ns(ev["dur"]), ev["name"]))

    # Balanced nesting per thread: sweep the spans in deterministic
    # (start, -dur) order with a containment stack; a span that starts
    # inside the stack top but ends outside it partially overlaps.
    for tid, tid_spans in sorted(by_tid.items()):
        tid_spans.sort(key=lambda s: (s[0], -s[1]))
        stack = []  # (start, end, name)
        for start, dur, name in tid_spans:
            end = start + dur
            while stack and start >= stack[-1][1]:
                stack.pop()
            if stack and end > stack[-1][1]:
                return fail(
                    f"tid {tid}: '{name}' [{start},{end}) partially overlaps "
                    f"'{stack[-1][2]}' [{stack[-1][0]},{stack[-1][1]})"
                )
            stack.append((start, end, name))

    names = {ev["name"] for ev in spans}
    missing = [req for req in args.require if req not in names]
    if missing:
        return fail(f"required span names absent: {', '.join(missing)}")

    dropped = doc.get("otherData", {}).get("dropped", 0)
    if dropped and not args.allow_drops:
        return fail(
            f"{dropped} events dropped (raise STSENSE_TRACE_CAP or pass "
            "--allow-drops)"
        )

    threads = len(doc.get("traceEvents", [])) - len(spans)  # "M" metadata rows
    print(
        f"check_trace: OK: {len(spans)} spans, {len(names)} names, "
        f"{len(by_tid)} threads ({threads} labelled), dropped={dropped}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
